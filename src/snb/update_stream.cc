#include "snb/update_stream.h"

#include "snb/tables.h"

namespace idf {
namespace snb {

UpdateStreamGenerator::UpdateStreamGenerator(const SnbDataset& base)
    : rng_(base.config.seed ^ 0x75706461ULL),  // "upda"
      first_person_id_(base.first_person_id),
      num_persons_(base.num_persons),
      first_post_id_(base.first_post_id),
      next_post_id_(base.first_post_id + base.num_posts),
      next_comment_id_(base.first_comment_id + base.num_comments),
      first_forum_id_(base.first_forum_id),
      num_forums_(base.num_forums) {}

int64_t UpdateStreamGenerator::RandomPersonId() {
  return first_person_id_ +
         static_cast<int64_t>(rng_.Skewed(static_cast<uint64_t>(num_persons_), 1.25));
}

RowVec UpdateStreamGenerator::NextKnowsBatch(size_t n) {
  RowVec out;
  out.reserve(2 * n);
  for (size_t i = 0; i < n; ++i) {
    int64_t p1 = RandomPersonId();
    int64_t p2 = RandomPersonId();
    if (p2 == p1) p2 = first_person_id_ + (p2 - first_person_id_ + 1) % num_persons_;
    Value created(SnbTimestamp(1095 + day_, rng_.Uniform(86400000000ULL)));
    out.push_back(Row{Value(p1), Value(p2), created});
    out.push_back(Row{Value(p2), Value(p1), created});
  }
  ++day_;
  return out;
}

RowVec UpdateStreamGenerator::NextPostBatch(size_t n) {
  RowVec out;
  out.reserve(n);
  for (size_t i = 0; i < n; ++i) {
    std::string content = "streamed post " + std::to_string(next_post_id_);
    int32_t length = static_cast<int32_t>(content.size());
    out.push_back(Row{
        Value(next_post_id_++),
        Value(RandomPersonId()),
        Value(first_forum_id_ +
              static_cast<int64_t>(rng_.Uniform(static_cast<uint64_t>(
                  std::max<int64_t>(1, num_forums_))))),
        Value(SnbTimestamp(1095 + day_, rng_.Uniform(86400000000ULL))),
        Value("10.0.0." + std::to_string(rng_.Uniform(256))),
        Value(std::string("Chrome")),
        Value(std::move(content)),
        Value(length),
    });
  }
  ++day_;
  return out;
}

RowVec UpdateStreamGenerator::NextCommentBatch(size_t n) {
  RowVec out;
  out.reserve(n);
  for (size_t i = 0; i < n; ++i) {
    int64_t parent =
        first_post_id_ +
        static_cast<int64_t>(rng_.Skewed(
            static_cast<uint64_t>(next_post_id_ - first_post_id_), 1.2));
    std::string content = "streamed reply " + std::to_string(next_comment_id_);
    int32_t length = static_cast<int32_t>(content.size());
    out.push_back(Row{
        Value(next_comment_id_++),
        Value(RandomPersonId()),
        Value(SnbTimestamp(1095 + day_, rng_.Uniform(86400000000ULL))),
        Value("10.0.0." + std::to_string(rng_.Uniform(256))),
        Value(std::string("Firefox")),
        Value(std::move(content)),
        Value(length),
        Value(parent),
    });
  }
  ++day_;
  return out;
}

}  // namespace snb
}  // namespace idf
