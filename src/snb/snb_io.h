// SNB dataset persistence: writes/reads the generated social graph as the
// per-table CSV files the real LDBC Datagen produces (and the paper stores
// on Amazon S3).
#pragma once

#include <string>

#include "common/result.h"
#include "snb/datagen.h"

namespace idf {
namespace snb {

/// Writes person.csv, person_knows_person.csv, post.csv, comment.csv,
/// forum.csv, forum_hasMember.csv under `directory` (must exist).
Status SaveDataset(const std::string& directory, const SnbDataset& dataset);

/// Reads the tables back. Metadata fields (id ranges, counts) are
/// reconstructed from the data; `config` is carried through for
/// reproducibility bookkeeping.
Result<SnbDataset> LoadDataset(const std::string& directory,
                               const SnbConfig& config = SnbConfig());

}  // namespace snb
}  // namespace idf
