#include "snb/snb_io.h"

#include <algorithm>

#include "io/csv.h"
#include "snb/tables.h"

namespace idf {
namespace snb {

namespace {
constexpr const char* kPersonFile = "person.csv";
constexpr const char* kKnowsFile = "person_knows_person.csv";
constexpr const char* kPostFile = "post.csv";
constexpr const char* kCommentFile = "comment.csv";
constexpr const char* kForumFile = "forum.csv";
constexpr const char* kMemberFile = "forum_hasMember.csv";

std::string Join(const std::string& dir, const char* file) {
  if (dir.empty() || dir.back() == '/') return dir + file;
  return dir + "/" + file;
}

/// Derives [first_id, count] for a dense id column.
void IdRange(const RowVec& rows, int col, int64_t* first, int64_t* count) {
  *first = 0;
  *count = static_cast<int64_t>(rows.size());
  if (rows.empty()) return;
  int64_t min_id = rows[0][static_cast<size_t>(col)].AsInt64();
  for (const Row& r : rows) {
    min_id = std::min(min_id, r[static_cast<size_t>(col)].AsInt64());
  }
  *first = min_id;
}
}  // namespace

Status SaveDataset(const std::string& directory, const SnbDataset& dataset) {
  IDF_RETURN_NOT_OK(
      io::WriteCsv(Join(directory, kPersonFile), *PersonSchema(), dataset.persons));
  IDF_RETURN_NOT_OK(
      io::WriteCsv(Join(directory, kKnowsFile), *KnowsSchema(), dataset.knows));
  IDF_RETURN_NOT_OK(
      io::WriteCsv(Join(directory, kPostFile), *PostSchema(), dataset.posts));
  IDF_RETURN_NOT_OK(io::WriteCsv(Join(directory, kCommentFile), *CommentSchema(),
                                 dataset.comments));
  IDF_RETURN_NOT_OK(
      io::WriteCsv(Join(directory, kForumFile), *ForumSchema(), dataset.forums));
  IDF_RETURN_NOT_OK(io::WriteCsv(Join(directory, kMemberFile),
                                 *ForumMemberSchema(), dataset.forum_members));
  return Status::OK();
}

Result<SnbDataset> LoadDataset(const std::string& directory,
                               const SnbConfig& config) {
  SnbDataset ds;
  ds.config = config;
  IDF_ASSIGN_OR_RETURN(ds.persons,
                       io::ReadCsv(Join(directory, kPersonFile), *PersonSchema()));
  IDF_ASSIGN_OR_RETURN(ds.knows,
                       io::ReadCsv(Join(directory, kKnowsFile), *KnowsSchema()));
  IDF_ASSIGN_OR_RETURN(ds.posts,
                       io::ReadCsv(Join(directory, kPostFile), *PostSchema()));
  IDF_ASSIGN_OR_RETURN(
      ds.comments, io::ReadCsv(Join(directory, kCommentFile), *CommentSchema()));
  IDF_ASSIGN_OR_RETURN(ds.forums,
                       io::ReadCsv(Join(directory, kForumFile), *ForumSchema()));
  IDF_ASSIGN_OR_RETURN(
      ds.forum_members,
      io::ReadCsv(Join(directory, kMemberFile), *ForumMemberSchema()));

  IdRange(ds.persons, person::kId, &ds.first_person_id, &ds.num_persons);
  IdRange(ds.posts, post::kId, &ds.first_post_id, &ds.num_posts);
  IdRange(ds.comments, comment::kId, &ds.first_comment_id, &ds.num_comments);
  IdRange(ds.forums, forum::kId, &ds.first_forum_id, &ds.num_forums);
  return ds;
}

}  // namespace snb
}  // namespace idf
