// Deterministic SNB-like social-network generator, standing in for the
// LDBC SNB Datagen the paper uses (DESIGN.md §2 documents the
// substitution). Reproduces the properties the queries and the index care
// about: dense person ids, power-law friendship degree with community
// locality, skewed message authorship, and non-unique foreign keys.
#pragma once

#include <cstdint>
#include <string>

#include "types/row.h"

namespace idf {
namespace snb {

struct SnbConfig {
  /// Laptop-rescaled LDBC scale factor: persons = 1000 x scale_factor,
  /// knows-edges ~ 24 x persons (both directions), posts ~ 12 x persons,
  /// comments ~ 18 x persons, forums = persons / 10.
  double scale_factor = 1.0;
  uint64_t seed = 42;

  /// Friendship degree skew (Pareto exponent; higher = flatter).
  double degree_exponent = 1.35;
};

struct SnbDataset {
  SnbConfig config;
  RowVec persons;
  RowVec knows;  // both directions
  RowVec posts;
  RowVec comments;
  RowVec forums;
  RowVec forum_members;

  int64_t first_person_id = 0;
  int64_t first_post_id = 0;
  int64_t first_comment_id = 0;
  int64_t first_forum_id = 0;
  int64_t num_persons = 0;
  int64_t num_posts = 0;
  int64_t num_comments = 0;
  int64_t num_forums = 0;

  /// Deterministic "interesting" parameters for queries.
  int64_t MidPersonId() const { return first_person_id + num_persons / 2; }
  int64_t MidPostId() const { return first_post_id + num_posts / 2; }
  int64_t MidCommentId() const { return first_comment_id + num_comments / 2; }
};

/// Generates the full dataset; deterministic in (scale_factor, seed).
SnbDataset GenerateSnb(const SnbConfig& config);

/// Epoch-microsecond timestamp inside the simulated 2010-2013 window.
int64_t SnbTimestamp(uint64_t day_offset, uint64_t micros_in_day = 0);

}  // namespace snb
}  // namespace idf
