#include "stream/streaming_driver.h"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <mutex>
#include <thread>

namespace idf {

void LatencyRecorder::Merge(const LatencyRecorder& other) {
  samples_.insert(samples_.end(), other.samples_.begin(), other.samples_.end());
}

double LatencyRecorder::Mean() const {
  if (samples_.empty()) return 0;
  double sum = 0;
  for (double s : samples_) sum += s;
  return sum / static_cast<double>(samples_.size());
}

double LatencyRecorder::Percentile(double p) const {
  if (samples_.empty()) return 0;
  std::sort(samples_.begin(), samples_.end());
  double rank = p / 100.0 * static_cast<double>(samples_.size() - 1);
  size_t lo = static_cast<size_t>(rank);
  size_t hi = std::min(lo + 1, samples_.size() - 1);
  double frac = rank - static_cast<double>(lo);
  return samples_[lo] * (1 - frac) + samples_[hi] * frac;
}

std::string StreamingReport::ToString() const {
  char buf[512];
  std::snprintf(
      buf, sizeof(buf),
      "streaming{batches=%zu rows=%zu queries=%zu final_rows=%zu wall=%.2fs "
      "append_us{mean=%.1f p50=%.1f p99=%.1f} "
      "query_us{mean=%.1f p50=%.1f p99=%.1f}}",
      batches_appended, rows_appended, queries_run, final_rows, wall_seconds,
      append_latency.Mean(), append_latency.Percentile(50),
      append_latency.Percentile(99), query_latency.Mean(),
      query_latency.Percentile(50), query_latency.Percentile(99));
  return std::string(buf);
}

Result<StreamingReport> RunStreamingWorkload(
    const IndexedDataFrame& idf,
    const std::function<RowVec(size_t batch_no)>& make_batch,
    const std::function<Status()>& query, const StreamingConfig& config) {
  using Clock = std::chrono::steady_clock;
  StreamingReport report;
  BoundedQueue<RowVec> queue(config.queue_capacity);
  std::atomic<bool> stop_queries{false};
  std::atomic<bool> failed{false};
  Status first_error;
  std::mutex error_mu;

  auto record_error = [&](const Status& st) {
    std::lock_guard<std::mutex> lock(error_mu);
    if (first_error.ok()) first_error = st;
    failed.store(true);
  };

  auto start = Clock::now();

  // Producer: the Kafka stand-in.
  std::thread producer([&] {
    for (size_t b = 0; b < config.num_batches && !failed.load(); ++b) {
      if (!queue.Push(make_batch(b))) return;
    }
    queue.Close();
  });

  // Query threads: run against snapshots while the stream flows.
  std::vector<std::thread> query_threads;
  std::vector<LatencyRecorder> query_recorders(
      static_cast<size_t>(std::max(0, config.num_query_threads)));
  std::vector<size_t> query_counts(query_recorders.size(), 0);
  for (size_t t = 0; t < query_recorders.size(); ++t) {
    query_threads.emplace_back([&, t] {
      while (!stop_queries.load(std::memory_order_acquire)) {
        auto q0 = Clock::now();
        Status st = query();
        auto q1 = Clock::now();
        if (!st.ok()) {
          record_error(st);
          return;
        }
        query_recorders[t].Add(
            std::chrono::duration<double, std::micro>(q1 - q0).count());
        ++query_counts[t];
        if (config.query_pause_micros > 0) {
          std::this_thread::sleep_for(
              std::chrono::microseconds(config.query_pause_micros));
        }
      }
    });
  }

  // Appender: drain the queue into the Indexed DataFrame (this thread).
  for (;;) {
    std::optional<RowVec> batch = queue.Pop();
    if (!batch.has_value()) break;
    auto a0 = Clock::now();
    Status st = config.append_override != nullptr
                    ? config.append_override(*batch)
                    : idf.AppendRowsDirect(*batch);
    auto a1 = Clock::now();
    if (!st.ok()) {
      record_error(st);
      queue.Close();
      break;
    }
    report.append_latency.Add(
        std::chrono::duration<double, std::micro>(a1 - a0).count());
    report.rows_appended += batch->size();
    ++report.batches_appended;
  }

  stop_queries.store(true, std::memory_order_release);
  producer.join();
  for (auto& t : query_threads) t.join();

  report.wall_seconds =
      std::chrono::duration<double>(Clock::now() - start).count();
  for (size_t t = 0; t < query_recorders.size(); ++t) {
    report.query_latency.Merge(query_recorders[t]);
    report.queries_run += query_counts[t];
  }
  report.final_rows = idf.NumRows();

  IDF_RETURN_NOT_OK(first_error);
  return report;
}

}  // namespace idf
