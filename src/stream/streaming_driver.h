// StreamingDriver: the paper's demonstration scenario (§4) — a continuous
// update stream mutating the graph while queries run concurrently against
// consistent snapshots. Producer thread(s) emit row batches into a bounded
// queue (the Kafka stand-in); an appender drains it into the Indexed
// DataFrame; query threads measure lookup latency while data grows.
#pragma once

#include <functional>
#include <vector>

#include "common/result.h"
#include "indexed/indexed_dataframe.h"
#include "stream/bounded_queue.h"

namespace idf {

/// Collects latency samples (microseconds) and reports percentiles.
class LatencyRecorder {
 public:
  void Add(double micros) { samples_.push_back(micros); }
  void Merge(const LatencyRecorder& other);

  size_t count() const { return samples_.size(); }
  double Mean() const;
  /// p in [0, 100].
  double Percentile(double p) const;

 private:
  mutable std::vector<double> samples_;
};

struct StreamingConfig {
  size_t num_batches = 200;
  size_t rows_per_batch = 10;
  size_t queue_capacity = 64;
  int num_query_threads = 1;
  /// Delay between queries per thread (0 = back-to-back).
  size_t query_pause_micros = 0;
  /// When set, the appender commits each batch through this instead of
  /// writing to the IndexedDataFrame directly. Used to route the stream
  /// through an epoch-gated path — e.g. QueryService::Append, so standing
  /// queries (src/view) see every commit as a delta.
  std::function<Status(const RowVec&)> append_override;
};

struct StreamingReport {
  size_t rows_appended = 0;
  size_t batches_appended = 0;
  size_t queries_run = 0;
  size_t final_rows = 0;
  double wall_seconds = 0;
  LatencyRecorder append_latency;   // per-batch append latency
  LatencyRecorder query_latency;    // per-query latency
  std::string ToString() const;
};

/// Runs the concurrent update+query workload:
///  * a producer generating `config.num_batches` batches via `make_batch`,
///  * an appender feeding them into `idf` (fine-grained appendRows),
///  * `config.num_query_threads` threads repeatedly running `query` (e.g.
///    an index lookup of a hot key) until the stream is drained.
Result<StreamingReport> RunStreamingWorkload(
    const IndexedDataFrame& idf,
    const std::function<RowVec(size_t batch_no)>& make_batch,
    const std::function<Status()>& query, const StreamingConfig& config);

}  // namespace idf
