// Topic: a partitioned, offset-addressed, append-only record log — the
// Kafka model (paper §4 uses "the Apache Kafka engine to handle the
// constant updating stream"). Unlike BoundedQueue (a transient pipe),
// a Topic retains records, so consumers can replay from any offset and
// several independent consumers can read at their own pace — which is how
// the demo can feed both the Indexed DataFrame and a vanilla copy from one
// stream.
#pragma once

#include <algorithm>
#include <atomic>
#include <condition_variable>
#include <mutex>
#include <vector>

#include "common/hash.h"
#include "common/macros.h"
#include "common/result.h"

namespace idf {

template <typename T>
class Topic {
 public:
  explicit Topic(int num_partitions)
      : partitions_(static_cast<size_t>(num_partitions > 0 ? num_partitions : 1)) {}
  IDF_DISALLOW_COPY_AND_ASSIGN(Topic);

  int num_partitions() const { return static_cast<int>(partitions_.size()); }

  /// Appends to an explicit partition; returns the record's offset.
  uint64_t Append(int partition, T record) {
    Partition& p = partitions_[static_cast<size_t>(partition)];
    std::lock_guard<std::mutex> lock(p.mu);
    p.records.push_back(std::move(record));
    p.cv.notify_all();
    return p.records.size() - 1;
  }

  /// Appends routed by key hash (sticky per-key ordering, like Kafka).
  uint64_t AppendKeyed(uint64_t key_hash, T record, int* partition_out = nullptr) {
    int partition =
        static_cast<int>(key_hash % static_cast<uint64_t>(partitions_.size()));
    if (partition_out != nullptr) *partition_out = partition;
    return Append(partition, std::move(record));
  }

  /// First offset past the end of `partition`.
  uint64_t EndOffset(int partition) const {
    const Partition& p = partitions_[static_cast<size_t>(partition)];
    std::lock_guard<std::mutex> lock(p.mu);
    return p.records.size();
  }

  /// Copies up to `max_records` starting at `offset`. When `block` is set
  /// and no records are available, waits until one arrives or the topic
  /// closes; otherwise returns immediately (possibly empty).
  std::vector<T> Poll(int partition, uint64_t offset, size_t max_records,
                      bool block = true) {
    Partition& p = partitions_[static_cast<size_t>(partition)];
    std::unique_lock<std::mutex> lock(p.mu);
    if (block) {
      p.cv.wait(lock, [&] { return closed_ || p.records.size() > offset; });
    }
    std::vector<T> out;
    for (uint64_t i = offset; i < p.records.size() && out.size() < max_records;
         ++i) {
      out.push_back(p.records[i]);
    }
    return out;
  }

  /// Marks end-of-stream: blocked Poll calls return what is available.
  void Close() {
    closed_ = true;
    for (Partition& p : partitions_) {
      std::lock_guard<std::mutex> lock(p.mu);
      p.cv.notify_all();
    }
  }

  bool closed() const { return closed_; }

  size_t TotalRecords() const {
    size_t n = 0;
    for (int p = 0; p < num_partitions(); ++p) n += EndOffset(p);
    return n;
  }

 private:
  struct Partition {
    mutable std::mutex mu;
    std::condition_variable cv;
    std::vector<T> records;
  };
  std::vector<Partition> partitions_;
  std::atomic<bool> closed_{false};
};

/// \brief An independent reading position over all partitions of a Topic
/// (one Kafka consumer-group member owning every partition). Each consumer
/// progresses at its own pace; creating a second consumer replays the
/// stream from the beginning.
template <typename T>
class TopicConsumer {
 public:
  explicit TopicConsumer(Topic<T>* topic)
      : topic_(topic),
        offsets_(static_cast<size_t>(topic->num_partitions()), 0) {}

  /// Round-robins over partitions; returns up to `max_records` and
  /// advances the consumed offsets. When `block` is set, waits for at
  /// least one record unless the topic is closed and drained.
  std::vector<T> Poll(size_t max_records, bool block = true) {
    std::vector<T> out;
    const int n = topic_->num_partitions();
    for (int attempt = 0; attempt < n && out.size() < max_records; ++attempt) {
      int p = next_partition_;
      next_partition_ = (next_partition_ + 1) % n;
      auto records = topic_->Poll(p, offsets_[static_cast<size_t>(p)],
                                  max_records - out.size(), /*block=*/false);
      offsets_[static_cast<size_t>(p)] += records.size();
      for (T& r : records) out.push_back(std::move(r));
    }
    if (out.empty() && block && !AtEnd()) {
      // Block on the partition with pending data expected next.
      auto records =
          topic_->Poll(next_partition_,
                       offsets_[static_cast<size_t>(next_partition_)],
                       max_records, /*block=*/true);
      offsets_[static_cast<size_t>(next_partition_)] += records.size();
      for (T& r : records) out.push_back(std::move(r));
    }
    return out;
  }

  /// True when the topic is closed and every record has been consumed.
  bool AtEnd() const {
    if (!topic_->closed()) return false;
    for (int p = 0; p < topic_->num_partitions(); ++p) {
      if (offsets_[static_cast<size_t>(p)] < topic_->EndOffset(p)) return false;
    }
    return true;
  }

  void SeekToBeginning() {
    std::fill(offsets_.begin(), offsets_.end(), 0);
  }

  uint64_t position(int partition) const {
    return offsets_[static_cast<size_t>(partition)];
  }

 private:
  Topic<T>* topic_;
  std::vector<uint64_t> offsets_;
  int next_partition_ = 0;
};

}  // namespace idf
