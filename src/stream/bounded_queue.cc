#include "stream/bounded_queue.h"

// BoundedQueue is a header-only template; this translation unit anchors the
// CMake target.
