// BoundedQueue: a blocking MPMC queue, standing in for the Kafka topic that
// carries the paper's continuous update stream into the Indexed DataFrame.
#pragma once

#include <condition_variable>
#include <deque>
#include <mutex>
#include <optional>

#include "common/macros.h"

namespace idf {

template <typename T>
class BoundedQueue {
 public:
  explicit BoundedQueue(size_t capacity) : capacity_(capacity) {}
  IDF_DISALLOW_COPY_AND_ASSIGN(BoundedQueue);

  /// Blocks while full; returns false if the queue was closed.
  bool Push(T item) {
    std::unique_lock<std::mutex> lock(mu_);
    not_full_.wait(lock, [this] { return closed_ || items_.size() < capacity_; });
    if (closed_) return false;
    items_.push_back(std::move(item));
    not_empty_.notify_one();
    return true;
  }

  /// Blocks while empty; returns nullopt once closed and drained.
  std::optional<T> Pop() {
    std::unique_lock<std::mutex> lock(mu_);
    not_empty_.wait(lock, [this] { return closed_ || !items_.empty(); });
    if (items_.empty()) return std::nullopt;
    T item = std::move(items_.front());
    items_.pop_front();
    not_full_.notify_one();
    return item;
  }

  /// Wakes all waiters; Push fails and Pop drains then returns nullopt.
  void Close() {
    std::lock_guard<std::mutex> lock(mu_);
    closed_ = true;
    not_empty_.notify_all();
    not_full_.notify_all();
  }

  size_t size() const {
    std::lock_guard<std::mutex> lock(mu_);
    return items_.size();
  }

  bool closed() const {
    std::lock_guard<std::mutex> lock(mu_);
    return closed_;
  }

 private:
  const size_t capacity_;
  mutable std::mutex mu_;
  std::condition_variable not_full_;
  std::condition_variable not_empty_;
  std::deque<T> items_;
  bool closed_ = false;
};

}  // namespace idf
