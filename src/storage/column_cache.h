// ColumnCache: the columnar in-memory representation used by the *vanilla*
// execution path, standing in for Spark's columnar RDD cache.
//
// Figure 2 of the paper shows vanilla Spark beating the Indexed DataFrame on
// projection precisely because its cache is columnar while the Indexed
// DataFrame stores rows; keeping this baseline honest requires a real
// columnar layout with tight scan loops, not a row store in disguise.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "common/result.h"
#include "types/row.h"
#include "types/schema.h"

namespace idf {

/// One cached column: a typed dense vector plus a validity mask.
class CachedColumn {
 public:
  explicit CachedColumn(TypeId type) : type_(type) {}

  TypeId type() const { return type_; }
  size_t size() const { return validity_.size(); }

  void Append(const Value& v);
  Value GetValue(size_t row) const;
  bool IsNull(size_t row) const { return !validity_[row]; }

  /// Typed raw access for scan loops. Only valid for the matching type
  /// family (integer-backed vs float64 vs string).
  const std::vector<int64_t>& ints() const { return ints_; }
  const std::vector<double>& doubles() const { return doubles_; }
  const std::vector<std::string>& strings() const { return strings_; }
  const std::vector<uint8_t>& validity() const { return validity_; }

  size_t MemoryBytes() const;

 private:
  TypeId type_;
  std::vector<uint8_t> validity_;
  std::vector<int64_t> ints_;      // kBool/kInt32/kInt64/kTimestamp
  std::vector<double> doubles_;    // kFloat64
  std::vector<std::string> strings_;  // kString
};

/// \brief A fully materialized columnar partition.
class ColumnCache {
 public:
  ColumnCache(SchemaPtr schema, size_t reserve_rows = 0);

  static Result<std::shared_ptr<ColumnCache>> FromRows(SchemaPtr schema,
                                                       const RowVec& rows);

  const SchemaPtr& schema() const { return schema_; }
  size_t num_rows() const { return num_rows_; }
  const CachedColumn& column(int i) const { return *columns_[static_cast<size_t>(i)]; }

  Status AppendRow(const Row& row);

  /// Materializes row `i` as a Row (boundary use only).
  Row GetRow(size_t i) const;

  /// Materializes rows `i` projected to `cols`.
  Row GetRowProjected(size_t i, const std::vector<int>& cols) const;

  size_t MemoryBytes() const;

 private:
  SchemaPtr schema_;
  size_t num_rows_ = 0;
  std::vector<std::unique_ptr<CachedColumn>> columns_;
};

using ColumnCachePtr = std::shared_ptr<ColumnCache>;

}  // namespace idf
