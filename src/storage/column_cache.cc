#include "storage/column_cache.h"

#include "common/logging.h"

namespace idf {

void CachedColumn::Append(const Value& v) {
  bool valid = !v.is_null();
  validity_.push_back(valid ? 1 : 0);
  switch (type_) {
    case TypeId::kBool:
    case TypeId::kInt32:
    case TypeId::kInt64:
    case TypeId::kTimestamp:
      ints_.push_back(valid ? v.AsInt64() : 0);
      break;
    case TypeId::kFloat64:
      doubles_.push_back(valid ? v.AsDouble() : 0.0);
      break;
    case TypeId::kString:
      strings_.push_back(valid ? v.string_value() : std::string());
      break;
  }
}

Value CachedColumn::GetValue(size_t row) const {
  if (!validity_[row]) return Value::Null();
  switch (type_) {
    case TypeId::kBool:
      return Value(ints_[row] != 0);
    case TypeId::kInt32:
      return Value(static_cast<int32_t>(ints_[row]));
    case TypeId::kInt64:
    case TypeId::kTimestamp:
      return Value(ints_[row]);
    case TypeId::kFloat64:
      return Value(doubles_[row]);
    case TypeId::kString:
      return Value(strings_[row]);
  }
  return Value::Null();
}

size_t CachedColumn::MemoryBytes() const {
  size_t bytes = validity_.capacity() + ints_.capacity() * sizeof(int64_t) +
                 doubles_.capacity() * sizeof(double);
  for (const std::string& s : strings_) bytes += sizeof(std::string) + s.capacity();
  return bytes;
}

ColumnCache::ColumnCache(SchemaPtr schema, size_t reserve_rows)
    : schema_(std::move(schema)) {
  columns_.reserve(static_cast<size_t>(schema_->num_fields()));
  for (int i = 0; i < schema_->num_fields(); ++i) {
    columns_.push_back(std::make_unique<CachedColumn>(schema_->field(i).type));
  }
  (void)reserve_rows;
}

Result<std::shared_ptr<ColumnCache>> ColumnCache::FromRows(SchemaPtr schema,
                                                           const RowVec& rows) {
  auto cache = std::make_shared<ColumnCache>(schema, rows.size());
  for (const Row& row : rows) {
    IDF_RETURN_NOT_OK(cache->AppendRow(row));
  }
  return cache;
}

Status ColumnCache::AppendRow(const Row& row) {
  IDF_RETURN_NOT_OK(ValidateRow(*schema_, row));
  for (int i = 0; i < schema_->num_fields(); ++i) {
    columns_[static_cast<size_t>(i)]->Append(row[static_cast<size_t>(i)]);
  }
  ++num_rows_;
  return Status::OK();
}

Row ColumnCache::GetRow(size_t i) const {
  Row out;
  out.reserve(columns_.size());
  for (const auto& c : columns_) out.push_back(c->GetValue(i));
  return out;
}

Row ColumnCache::GetRowProjected(size_t i, const std::vector<int>& cols) const {
  Row out;
  out.reserve(cols.size());
  for (int c : cols) out.push_back(columns_[static_cast<size_t>(c)]->GetValue(i));
  return out;
}

size_t ColumnCache::MemoryBytes() const {
  size_t bytes = 0;
  for (const auto& c : columns_) bytes += c->MemoryBytes();
  return bytes;
}

}  // namespace idf
