// PackedPointer: the paper's packed, dense 64-bit row pointer.
//
// "The pointers stored both in the cTrie and in the backward pointer data
//  structure are packed, dense 64-bit numbers, each containing the row batch
//  number, the offset within a row batch, and the size of the previous row
//  indexed on the given key." (paper, Section 2)
//
// Bit layout (most-significant first):
//   [ batch : 31 ][ offset : 22 ][ prev_size : 11 ]
//
// 31 bits of batch number and 22 bits of byte offset reproduce the paper's
// "2^31 row batches, each of which may have up to 4 MB"; 11 bits of
// previous-row size cover the 1 KB maximum row with headroom.
#pragma once

#include <cstdint>
#include <string>

namespace idf {

class PackedPointer {
 public:
  static constexpr int kBatchBits = 31;
  static constexpr int kOffsetBits = 22;
  static constexpr int kPrevSizeBits = 11;
  static_assert(kBatchBits + kOffsetBits + kPrevSizeBits == 64);

  static constexpr uint64_t kMaxBatch = (1ULL << kBatchBits) - 1;
  static constexpr uint64_t kMaxOffset = (1ULL << kOffsetBits) - 1;
  static constexpr uint64_t kMaxRowSize = (1ULL << kPrevSizeBits) - 1;

  /// All-ones is reserved as the null pointer (end of a backward chain).
  static constexpr uint64_t kNullBits = ~0ULL;

  constexpr PackedPointer() : bits_(kNullBits) {}
  constexpr explicit PackedPointer(uint64_t bits) : bits_(bits) {}

  static constexpr PackedPointer Null() { return PackedPointer(); }

  /// Packs the three fields. Caller must respect the field ranges; checked
  /// in debug builds by MakeChecked.
  static constexpr PackedPointer Make(uint64_t batch, uint64_t offset,
                                      uint64_t prev_size) {
    return PackedPointer((batch << (kOffsetBits + kPrevSizeBits)) |
                         (offset << kPrevSizeBits) | prev_size);
  }

  /// Packs with range validation; returns Null on out-of-range fields.
  static PackedPointer MakeChecked(uint64_t batch, uint64_t offset,
                                   uint64_t prev_size);

  constexpr bool is_null() const { return bits_ == kNullBits; }
  constexpr uint64_t bits() const { return bits_; }

  constexpr uint32_t batch() const {
    return static_cast<uint32_t>(bits_ >> (kOffsetBits + kPrevSizeBits));
  }
  constexpr uint32_t offset() const {
    return static_cast<uint32_t>((bits_ >> kPrevSizeBits) & kMaxOffset);
  }
  constexpr uint32_t prev_size() const {
    return static_cast<uint32_t>(bits_ & kMaxRowSize);
  }

  constexpr bool operator==(const PackedPointer& o) const { return bits_ == o.bits_; }
  constexpr bool operator!=(const PackedPointer& o) const { return bits_ != o.bits_; }

  std::string ToString() const;

 private:
  uint64_t bits_;
};

}  // namespace idf
