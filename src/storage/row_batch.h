// RowBatch: a fixed-capacity binary buffer of "unsafe" encoded rows,
// reproducing the paper's "row batches ... collections of binary, unsafe
// arrays (e.g., of 4 MB in size)".
//
// Row encoding (Spark UnsafeRow style):
//   [ null bitmap : ceil(num_fields/64) * 8 bytes ]
//   [ fixed section : 8 bytes per field ]
//   [ variable section : string payloads ]
// Fixed-width values live directly in their 8-byte slot; variable-width
// slots hold (offset_from_row_base << 32) | length.
//
// Inside a batch, every row is preceded by an 8-byte header carrying the
// packed backward pointer to the previous row with the same index key (the
// paper's per-key linked list; see indexed/indexed_partition.h). Rows are
// 8-byte aligned.
//
// Concurrency: one appender at a time; any number of concurrent readers.
// The appender publishes each row by storing `committed_size_` with
// release ordering after the bytes are written; readers never look past
// an acquired committed size (their snapshot watermark).
#pragma once

#include <atomic>
#include <cstdint>
#include <cstring>
#include <memory>
#include <string_view>
#include <vector>

#include "common/result.h"
#include "storage/packed_pointer.h"
#include "types/row.h"
#include "types/schema.h"

namespace idf {

// ---------------------------------------------------------------------------
// Raw encoded-payload accessors (the fixed-prefix layout above). Shared by
// DecodeColumn, the compiled-predicate VM (sql/predicate_compiler.h) and
// the indexed chain-walk fast path — these read straight from the encoded
// bytes without materializing a Value.
// ---------------------------------------------------------------------------

/// Bytes of the null bitmap for a schema with `num_fields` columns.
inline size_t EncodedBitmapBytes(int num_fields) {
  return static_cast<size_t>((num_fields + 63) / 64) * 8;
}

/// Null bit of column `col` in the payload at `base`.
inline bool RawColumnIsNull(const uint8_t* base, int col) {
  uint64_t word;
  std::memcpy(&word, base + (col / 64) * 8, 8);
  return (word >> (col % 64)) & 1;
}

/// The 8-byte fixed slot of column `col` (value bits for fixed-width types,
/// (offset << 32) | length for strings). Callers check the null bit first.
inline uint64_t RawColumnSlot(const uint8_t* base, size_t bitmap_bytes, int col) {
  uint64_t v;
  std::memcpy(&v, base + bitmap_bytes + static_cast<size_t>(col) * 8, 8);
  return v;
}

/// View over the variable-length bytes a string slot points into; valid as
/// long as the payload is.
inline std::string_view RawColumnString(const uint8_t* base, uint64_t slot) {
  return std::string_view(reinterpret_cast<const char*>(base + (slot >> 32)),
                          static_cast<size_t>(slot & 0xFFFFFFFFULL));
}

/// Encodes `key` into the 8-byte slot image it would occupy in a column of
/// integer-backed `type` (bool/int32/int64/timestamp), iff raw slot
/// equality is then exactly equivalent to the engine's Value equality
/// against a decoded column value. Returns false when no unique slot image
/// exists (string/float columns, fractional or out-of-range keys, doubles
/// beyond 2^53 where the widening comparison is not injective) — callers
/// fall back to decode-and-compare.
bool EncodeFixedKeySlot(TypeId type, const Value& key, uint64_t* slot);

/// Encodes `row` (which must validate against `schema`) into `out`,
/// replacing its contents. The encoding excludes the back-pointer header.
Status EncodeRow(const Schema& schema, const Row& row, std::vector<uint8_t>* out);

/// EncodeRow without the per-row ValidateRow pass. For engine-internal hot
/// paths (e.g. the binary shuffle) whose rows were already validated at
/// ingestion; encoding a row that does not conform to `schema` is UB.
void EncodeRowUnchecked(const Schema& schema, const Row& row,
                        std::vector<uint8_t>* out);

/// Decodes a full row from an encoded payload at `base`.
Row DecodeRow(const uint8_t* base, const Schema& schema);

/// Decodes only column `col` from an encoded payload at `base`. This is the
/// hot path for index probes and filter evaluation over row batches.
Value DecodeColumn(const uint8_t* base, const Schema& schema, int col);

/// Returns the total encoded size (header excluded) of the row at `base`.
/// Requires the schema used at encode time.
uint32_t EncodedRowSize(const uint8_t* base, const Schema& schema);

/// \brief One binary row batch with an 8-byte back-pointer header per row.
class RowBatch {
 public:
  explicit RowBatch(size_t capacity_bytes);

  size_t capacity() const { return capacity_; }

  /// Bytes committed (readable); acquire-loads the publication watermark.
  size_t committed_size() const {
    return committed_size_.load(std::memory_order_acquire);
  }

  size_t num_rows() const { return num_rows_; }

  /// Bytes still available to the appender.
  size_t remaining() const { return capacity_ - write_size_; }

  /// Appends an encoded payload with its back-pointer header.
  /// Returns the byte offset of the row header within this batch, or
  /// CapacityError when the row does not fit. Appender-only.
  Result<uint32_t> AppendEncoded(const uint8_t* payload, size_t payload_len,
                                 PackedPointer back_pointer);

  /// Back-pointer header of the row whose header starts at `offset`.
  PackedPointer back_pointer_at(uint32_t offset) const;

  /// Pointer to the encoded payload of the row at header offset `offset`.
  const uint8_t* payload_at(uint32_t offset) const { return data() + offset + 8; }

  const uint8_t* data() const { return data_.get(); }

  /// Offset of the row following the one at `offset` (walk-forward scan).
  uint32_t NextRowOffset(uint32_t offset, const Schema& schema) const;

 private:
  size_t capacity_;
  size_t write_size_ = 0;              // appender's private cursor
  std::atomic<size_t> committed_size_{0};  // readers' watermark
  size_t num_rows_ = 0;
  std::unique_ptr<uint8_t[]> data_;
};

}  // namespace idf
