#include "storage/row_batch.h"

#include <cstring>

#include "common/logging.h"

namespace idf {

Status EncodeRow(const Schema& schema, const Row& row, std::vector<uint8_t>* out) {
  IDF_RETURN_NOT_OK(ValidateRow(schema, row));
  EncodeRowUnchecked(schema, row, out);
  return Status::OK();
}

void EncodeRowUnchecked(const Schema& schema, const Row& row,
                        std::vector<uint8_t>* out) {
  const int n = schema.num_fields();
  const size_t bitmap_bytes = EncodedBitmapBytes(n);
  const size_t fixed_bytes = static_cast<size_t>(n) * 8;

  out->assign(bitmap_bytes + fixed_bytes, 0);

  for (int i = 0; i < n; ++i) {
    const Value& v = row[static_cast<size_t>(i)];
    if (v.is_null()) {
      (*out)[static_cast<size_t>(i / 64) * 8 + static_cast<size_t>((i % 64) / 8)] |=
          static_cast<uint8_t>(1u << (i % 8));
      continue;
    }
    uint64_t slot = 0;
    switch (schema.field(i).type) {
      case TypeId::kBool:
        slot = v.bool_value() ? 1 : 0;
        break;
      case TypeId::kInt32: {
        int32_t x = v.int32_value();
        uint32_t ux;
        std::memcpy(&ux, &x, 4);
        slot = ux;
        break;
      }
      case TypeId::kInt64:
      case TypeId::kTimestamp: {
        int64_t x = v.AsInt64();
        std::memcpy(&slot, &x, 8);
        break;
      }
      case TypeId::kFloat64: {
        double x = v.AsDouble();
        std::memcpy(&slot, &x, 8);
        break;
      }
      case TypeId::kString: {
        const std::string& s = v.string_value();
        uint64_t offset = out->size();
        // Variable section grows at the tail; patch the slot now since the
        // row base is offset 0 of `out`.
        slot = (offset << 32) | static_cast<uint64_t>(s.size());
        out->insert(out->end(), s.begin(), s.end());
        break;
      }
    }
    std::memcpy(out->data() + bitmap_bytes + static_cast<size_t>(i) * 8, &slot, 8);
  }
}

Value DecodeColumn(const uint8_t* base, const Schema& schema, int col) {
  const size_t bitmap_bytes = EncodedBitmapBytes(schema.num_fields());
  if (RawColumnIsNull(base, col)) return Value::Null();
  uint64_t slot = RawColumnSlot(base, bitmap_bytes, col);
  switch (schema.field(col).type) {
    case TypeId::kBool:
      return Value(slot != 0);
    case TypeId::kInt32: {
      int32_t x;
      uint32_t ux = static_cast<uint32_t>(slot);
      std::memcpy(&x, &ux, 4);
      return Value(x);
    }
    case TypeId::kInt64:
    case TypeId::kTimestamp: {
      int64_t x;
      std::memcpy(&x, &slot, 8);
      return Value(x);
    }
    case TypeId::kFloat64: {
      double x;
      std::memcpy(&x, &slot, 8);
      return Value(x);
    }
    case TypeId::kString: {
      uint64_t offset = slot >> 32;
      uint64_t len = slot & 0xFFFFFFFFULL;
      return Value(std::string(reinterpret_cast<const char*>(base + offset),
                               static_cast<size_t>(len)));
    }
  }
  return Value::Null();
}

Row DecodeRow(const uint8_t* base, const Schema& schema) {
  Row out;
  const int n = schema.num_fields();
  out.reserve(static_cast<size_t>(n));
  for (int i = 0; i < n; ++i) out.push_back(DecodeColumn(base, schema, i));
  return out;
}

uint32_t EncodedRowSize(const uint8_t* base, const Schema& schema) {
  const int n = schema.num_fields();
  const size_t bitmap_bytes = EncodedBitmapBytes(n);
  uint32_t size = static_cast<uint32_t>(bitmap_bytes + static_cast<size_t>(n) * 8);
  for (int i = 0; i < n; ++i) {
    if (schema.field(i).type != TypeId::kString || RawColumnIsNull(base, i)) continue;
    uint64_t slot = RawColumnSlot(base, bitmap_bytes, i);
    uint32_t end = static_cast<uint32_t>(slot >> 32) +
                   static_cast<uint32_t>(slot & 0xFFFFFFFFULL);
    if (end > size) size = end;
  }
  return size;
}

bool EncodeFixedKeySlot(TypeId type, const Value& key, uint64_t* slot) {
  if (key.is_null() || key.is_string()) return false;
  switch (type) {
    case TypeId::kBool: {
      // A decoded bool compares to a numeric key via widening (false=0,
      // true=1), so only keys equal to exactly 0 or 1 have a slot image.
      const double d = key.AsDouble();
      if (d != 0.0 && d != 1.0) return false;
      *slot = d == 1.0 ? 1 : 0;
      return true;
    }
    case TypeId::kInt32: {
      int64_t i;
      if (key.is_double()) {
        const double d = key.double_value();
        if (!(d >= -2147483648.0 && d <= 2147483647.0)) return false;
        i = static_cast<int64_t>(d);
        if (static_cast<double>(i) != d) return false;  // fractional key
      } else {
        i = key.AsInt64();
        if (i < INT32_MIN || i > INT32_MAX) return false;
      }
      const int32_t x = static_cast<int32_t>(i);
      uint32_t ux;
      std::memcpy(&ux, &x, 4);
      *slot = ux;
      return true;
    }
    case TypeId::kInt64:
    case TypeId::kTimestamp: {
      int64_t i;
      if (key.is_double()) {
        const double d = key.double_value();
        // Beyond 2^53 the int->double widening is not injective: one double
        // compares equal to several int64s, so no single slot image exists.
        if (!(d >= -9007199254740992.0 && d <= 9007199254740992.0)) return false;
        i = static_cast<int64_t>(d);
        if (static_cast<double>(i) != d) return false;  // fractional key
      } else {
        i = key.AsInt64();
      }
      std::memcpy(slot, &i, 8);
      return true;
    }
    case TypeId::kFloat64:  // 0.0 == -0.0 but their bit patterns differ
    case TypeId::kString:
      return false;
  }
  return false;
}

RowBatch::RowBatch(size_t capacity_bytes)
    : capacity_(capacity_bytes), data_(new uint8_t[capacity_bytes]) {}

Result<uint32_t> RowBatch::AppendEncoded(const uint8_t* payload, size_t payload_len,
                                         PackedPointer back_pointer) {
  // Align the 8-byte header (and therefore the payload) to 8 bytes.
  size_t start = (write_size_ + 7) & ~size_t{7};
  size_t total = 8 + payload_len;
  if (start + total > capacity_) {
    return Status::CapacityError("row batch full");
  }
  uint64_t header = back_pointer.bits();
  std::memcpy(data_.get() + start, &header, 8);
  std::memcpy(data_.get() + start + 8, payload, payload_len);
  write_size_ = start + total;
  ++num_rows_;
  // Publish: readers holding a watermark >= write_size_ may now decode
  // this row.
  committed_size_.store(write_size_, std::memory_order_release);
  return static_cast<uint32_t>(start);
}

uint32_t RowBatch::NextRowOffset(uint32_t offset, const Schema& schema) const {
  uint32_t end = offset + 8 + EncodedRowSize(payload_at(offset), schema);
  return (end + 7) & ~uint32_t{7};
}

PackedPointer RowBatch::back_pointer_at(uint32_t offset) const {
  uint64_t header;
  std::memcpy(&header, data_.get() + offset, 8);
  return PackedPointer(header);
}

}  // namespace idf
