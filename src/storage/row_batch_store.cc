#include "storage/row_batch_store.h"

namespace idf {

RowBatchStore::RowBatchStore(size_t batch_bytes, size_t max_row_bytes,
                             size_t max_batches)
    : batch_bytes_(batch_bytes),
      max_row_bytes_(max_row_bytes),
      max_batches_(max_batches),
      slots_(new std::atomic<RowBatch*>[max_batches]) {
  for (size_t i = 0; i < max_batches_; ++i) {
    slots_[i].store(nullptr, std::memory_order_relaxed);
  }
}

RowBatchStore::~RowBatchStore() {
  size_t n = num_batches_.load(std::memory_order_acquire);
  for (size_t i = 0; i < n; ++i) {
    delete slots_[i].load(std::memory_order_relaxed);
  }
}

Result<PackedPointer> RowBatchStore::AppendRow(const Schema& schema, const Row& row,
                                               PackedPointer back_pointer,
                                               uint32_t prev_size) {
  IDF_RETURN_NOT_OK(EncodeRow(schema, row, &scratch_));
  if (scratch_.size() > max_row_bytes_) {
    return Status::CapacityError("encoded row of " +
                                 std::to_string(scratch_.size()) +
                                 " bytes exceeds max_row_bytes=" +
                                 std::to_string(max_row_bytes_));
  }
  return AppendEncoded(scratch_.data(), scratch_.size(), back_pointer, prev_size);
}

Result<PackedPointer> RowBatchStore::AppendEncoded(const uint8_t* payload, size_t len,
                                                   PackedPointer back_pointer,
                                                   uint32_t prev_size) {
  size_t n = num_batches_.load(std::memory_order_relaxed);
  RowBatch* current = n == 0 ? nullptr : slots_[n - 1].load(std::memory_order_relaxed);
  if (current == nullptr || current->remaining() < len + 16) {
    if (n >= max_batches_) {
      return Status::CapacityError(
          "row batch directory full (" + std::to_string(max_batches_) +
          " batches); raise max_batches");
    }
    current = new RowBatch(batch_bytes_);
    slots_[n].store(current, std::memory_order_release);
    num_batches_.store(n + 1, std::memory_order_release);
    n = n + 1;
  }
  auto offset_res = current->AppendEncoded(payload, len, back_pointer);
  if (!offset_res.ok()) return offset_res.status();
  num_rows_.fetch_add(1, std::memory_order_release);
  PackedPointer ptr =
      PackedPointer::MakeChecked(n - 1, offset_res.ValueUnsafe(), prev_size);
  if (ptr.is_null()) {
    return Status::Internal("packed pointer overflow");
  }
  return ptr;
}

StoreWatermark RowBatchStore::Watermark() const {
  StoreWatermark wm;
  // Read row count first: the rows it covers are fully published by the
  // time we read the batch sizes below (appends publish size before count).
  wm.num_rows = num_rows_.load(std::memory_order_acquire);
  wm.num_batches = static_cast<uint32_t>(num_batches_.load(std::memory_order_acquire));
  if (wm.num_batches > 0) {
    wm.last_batch_bytes =
        slots_[wm.num_batches - 1].load(std::memory_order_acquire)->committed_size();
  }
  return wm;
}

size_t RowBatchStore::used_bytes() const {
  size_t total = 0;
  size_t n = num_batches();
  for (size_t i = 0; i < n; ++i) total += BatchAt(static_cast<uint32_t>(i))->committed_size();
  return total;
}

}  // namespace idf
