// RowBatchStore: the per-partition sequence of row batches, addressed by
// PackedPointer. Appends always go to the newest batch; a new batch is
// allocated when the current one is full.
//
// Concurrency contract (matching Indexed DataFrame usage): exactly one
// appender at a time per partition (Spark executes a partition's tasks
// sequentially; IndexedRelation serializes appends per partition); readers
// run lock-free and concurrently with the appender. Batches live in a
// preallocated slot directory so the appender never relocates memory that
// readers may be traversing; a StoreWatermark captured together with a
// CTrie snapshot delimits one consistent version of the data.
#pragma once

#include <atomic>
#include <memory>
#include <vector>

#include "common/config.h"
#include "storage/row_batch.h"

namespace idf {

/// A consistent prefix of the store: everything up to (and excluding)
/// batch `num_batches-1`, plus the first `last_batch_bytes` bytes of the
/// last batch. Appends are strictly sequential, so any such prefix is a
/// version.
struct StoreWatermark {
  uint32_t num_batches = 0;
  size_t last_batch_bytes = 0;
  size_t num_rows = 0;
};

class RowBatchStore {
 public:
  /// `max_batches` bounds the slot directory (the paper allows 2^31
  /// batches per partition; we preallocate pointers for `max_batches` and
  /// fail with CapacityError beyond — configurable).
  RowBatchStore(size_t batch_bytes, size_t max_row_bytes,
                size_t max_batches = 65536);
  ~RowBatchStore();

  /// Encodes and appends `row`; `back_pointer` is written into the row
  /// header (pointer to the previous row with the same key, or Null).
  /// Returns the packed pointer addressing the new row. `prev_size` is the
  /// encoded size of the previous row in the chain (0 when none) and is
  /// packed into the pointer per the paper's layout. Appender-only.
  Result<PackedPointer> AppendRow(const Schema& schema, const Row& row,
                                  PackedPointer back_pointer, uint32_t prev_size);

  /// Appends a pre-encoded payload (bulk index build). Appender-only.
  Result<PackedPointer> AppendEncoded(const uint8_t* payload, size_t len,
                                      PackedPointer back_pointer,
                                      uint32_t prev_size);

  /// Payload address of the row `ptr` points at. `ptr` must be non-null and
  /// produced by this store. Thread-safe.
  const uint8_t* PayloadAt(PackedPointer ptr) const {
    return BatchAt(ptr.batch())->payload_at(ptr.offset());
  }

  /// Back pointer stored in the header of the row `ptr` points at.
  PackedPointer BackPointerAt(PackedPointer ptr) const {
    return BatchAt(ptr.batch())->back_pointer_at(ptr.offset());
  }

  /// Batch pointer (thread-safe for indexes below the watermark).
  const RowBatch* BatchAt(uint32_t i) const {
    return slots_[i].load(std::memory_order_acquire);
  }

  /// Captures the current consistent prefix. Thread-safe.
  StoreWatermark Watermark() const;

  size_t num_batches() const {
    return num_batches_.load(std::memory_order_acquire);
  }
  size_t num_rows() const { return num_rows_.load(std::memory_order_acquire); }
  size_t max_batches() const { return max_batches_; }

  /// Total bytes allocated in batches (capacity) and actually used.
  size_t allocated_bytes() const { return num_batches() * batch_bytes_; }
  size_t used_bytes() const;

  size_t max_row_bytes() const { return max_row_bytes_; }

 private:
  size_t batch_bytes_;
  size_t max_row_bytes_;
  size_t max_batches_;
  std::atomic<size_t> num_batches_{0};
  std::atomic<size_t> num_rows_{0};
  std::unique_ptr<std::atomic<RowBatch*>[]> slots_;
  std::vector<uint8_t> scratch_;
};

}  // namespace idf
