#include "storage/packed_pointer.h"

namespace idf {

PackedPointer PackedPointer::MakeChecked(uint64_t batch, uint64_t offset,
                                         uint64_t prev_size) {
  if (batch > kMaxBatch || offset > kMaxOffset || prev_size > kMaxRowSize) {
    return Null();
  }
  PackedPointer p = Make(batch, offset, prev_size);
  // Make() of in-range fields can never collide with the null sentinel,
  // because kNullBits requires batch == kMaxBatch AND offset == kMaxOffset
  // AND prev_size == kMaxRowSize simultaneously; that combination is
  // rejected here to keep the sentinel unambiguous.
  if (p.bits() == kNullBits) return Null();
  return p;
}

std::string PackedPointer::ToString() const {
  if (is_null()) return "ptr(null)";
  return "ptr(batch=" + std::to_string(batch()) +
         ", offset=" + std::to_string(offset()) +
         ", prev_size=" + std::to_string(prev_size()) + ")";
}

}  // namespace idf
