// API-level tests for Session and DataFrame (the vanilla engine surface).
#include "sql/dataframe.h"

#include <gtest/gtest.h>

#include "sql/session.h"

namespace idf {
namespace {

class DataFrameTest : public ::testing::Test {
 protected:
  void SetUp() override {
    EngineConfig cfg;
    cfg.num_partitions = 4;
    cfg.num_threads = 2;
    session_ = Session::Make(cfg).ValueOrDie();
    schema_ = Schema::Make({{"id", TypeId::kInt64, false},
                            {"grp", TypeId::kInt64, true},
                            {"name", TypeId::kString, true},
                            {"score", TypeId::kFloat64, true}});
    RowVec rows;
    for (int64_t i = 0; i < 100; ++i) {
      rows.push_back({Value(i), Value(i % 5), Value("n" + std::to_string(i)),
                      Value(static_cast<double>(i) / 2)});
    }
    df_ = session_->CreateDataFrame(schema_, rows, "people").ValueOrDie();
  }

  SessionPtr session_;
  SchemaPtr schema_;
  DataFrame df_;
};

TEST_F(DataFrameTest, CreateValidatesRows) {
  auto bad = session_->CreateDataFrame(schema_, {{Value(int64_t{1})}}, "bad");
  EXPECT_TRUE(bad.status().IsInvalidArgument());
  auto bad_type = session_->CreateDataFrame(
      schema_, {{Value("x"), Value(int64_t{0}), Value("n"), Value(0.0)}}, "bad2");
  EXPECT_TRUE(bad_type.status().IsTypeError());
}

TEST_F(DataFrameTest, SchemaReflectsPlan) {
  EXPECT_TRUE(df_.schema().ValueOrDie()->Equals(*schema_));
  auto projected = df_.Select({"name"}).ValueOrDie();
  auto s = projected.schema().ValueOrDie();
  ASSERT_EQ(s->num_fields(), 1);
  EXPECT_EQ(s->field(0).name, "name");
}

TEST_F(DataFrameTest, CountAndCollect) {
  EXPECT_EQ(df_.Count().ValueOrDie(), 100u);
  EXPECT_EQ(df_.Collect().ValueOrDie().size(), 100u);
}

TEST_F(DataFrameTest, FilterByEquality) {
  auto f = df_.Filter(Eq(Col("grp"), Lit(Value(int64_t{2})))).ValueOrDie();
  EXPECT_EQ(f.Count().ValueOrDie(), 20u);
  for (const Row& row : f.Collect().ValueOrDie()) {
    EXPECT_EQ(row[1], Value(int64_t{2}));
  }
}

TEST_F(DataFrameTest, FilterComposition) {
  auto f = df_.Filter(Gt(Col("id"), Lit(Value(int64_t{49}))))
               .ValueOrDie()
               .Filter(Lt(Col("id"), Lit(Value(int64_t{60}))))
               .ValueOrDie();
  EXPECT_EQ(f.Count().ValueOrDie(), 10u);
}

TEST_F(DataFrameTest, FilterUnknownColumnFailsAtAction) {
  auto f = df_.Filter(Eq(Col("nope"), Lit(Value(int64_t{1})))).ValueOrDie();
  EXPECT_TRUE(f.Collect().status().IsKeyError());
}

TEST_F(DataFrameTest, SelectAndSelectExprs) {
  auto sel =
      df_.SelectExprs({Col("id"), Mul(Col("grp"), Lit(Value(int64_t{10})))},
                      {"id", "g10"})
          .ValueOrDie();
  RowVec rows = sel.Collect().ValueOrDie();
  ASSERT_EQ(rows.size(), 100u);
  for (const Row& row : rows) {
    EXPECT_EQ(row[1].AsInt64(), (row[0].AsInt64() % 5) * 10);
  }
}

TEST_F(DataFrameTest, OrderByAndLimit) {
  auto top = df_.OrderBy("score", /*ascending=*/false)
                 .ValueOrDie()
                 .Limit(3)
                 .ValueOrDie();
  RowVec rows = top.Collect().ValueOrDie();
  ASSERT_EQ(rows.size(), 3u);
  EXPECT_EQ(rows[0][0], Value(int64_t{99}));
  EXPECT_EQ(rows[1][0], Value(int64_t{98}));
  EXPECT_EQ(rows[2][0], Value(int64_t{97}));
}

TEST_F(DataFrameTest, GroupByAgg) {
  auto agg =
      df_.GroupByAgg({"grp"}, {CountStar("cnt"), SumOf(Col("id"), "sum_id"),
                               MaxOf(Col("score"), "max_score")})
          .ValueOrDie();
  RowVec rows = agg.Collect().ValueOrDie();
  ASSERT_EQ(rows.size(), 5u);
  SortRows(&rows);
  for (int64_t g = 0; g < 5; ++g) {
    const Row& row = rows[static_cast<size_t>(g)];
    EXPECT_EQ(row[0], Value(g));
    EXPECT_EQ(row[1], Value(int64_t{20}));
    // ids for group g: g, g+5, ..., g+95 -> 20g + 5*(0+..+19)*... = 20g + 950.
    EXPECT_EQ(row[2], Value(int64_t{20 * g + 950}));
  }
}

TEST_F(DataFrameTest, GlobalAggregate) {
  auto agg = df_.Aggregate({}, {CountStar("n"), AvgOf(Col("score"), "avg")})
                 .ValueOrDie();
  RowVec rows = agg.Collect().ValueOrDie();
  ASSERT_EQ(rows.size(), 1u);
  EXPECT_EQ(rows[0][0], Value(int64_t{100}));
  EXPECT_DOUBLE_EQ(rows[0][1].AsDouble(), 24.75);
}

TEST_F(DataFrameTest, JoinByColumnNames) {
  auto dim_schema = Schema::Make({{"g", TypeId::kInt64, false},
                                  {"label", TypeId::kString, false}});
  RowVec dim_rows;
  for (int64_t g = 0; g < 5; ++g) {
    dim_rows.push_back({Value(g), Value("group" + std::to_string(g))});
  }
  auto dim = session_->CreateDataFrame(dim_schema, dim_rows, "dim").ValueOrDie();
  auto joined = df_.Join(dim, "grp", "g").ValueOrDie();
  RowVec rows = joined.Collect().ValueOrDie();
  EXPECT_EQ(rows.size(), 100u);
  for (const Row& row : rows) {
    ASSERT_EQ(row.size(), 6u);
    EXPECT_EQ(row[5].string_value(), "group" + row[1].ToString());
  }
}

TEST_F(DataFrameTest, JoinAcrossSessionsRejected) {
  auto other_session = Session::Make().ValueOrDie();
  auto other =
      other_session->CreateDataFrame(schema_, {}, "other").ValueOrDie();
  EXPECT_TRUE(df_.Join(other, "id", "id").status().IsInvalidArgument());
}

TEST_F(DataFrameTest, CacheProducesSameData) {
  auto cached = df_.Cache("people_cached").ValueOrDie();
  EXPECT_EQ(cached.plan()->kind(), PlanKind::kCacheScan);
  RowVec a = df_.Collect().ValueOrDie();
  RowVec b = cached.Collect().ValueOrDie();
  SortRows(&a);
  SortRows(&b);
  EXPECT_EQ(a, b);
}

TEST_F(DataFrameTest, CacheOfDerivedPlan) {
  auto derived = df_.Filter(Lt(Col("id"), Lit(Value(int64_t{10}))))
                     .ValueOrDie()
                     .Select({"id", "name"})
                     .ValueOrDie();
  auto cached = derived.Cache().ValueOrDie();
  EXPECT_EQ(cached.Count().ValueOrDie(), 10u);
  EXPECT_EQ(cached.schema().ValueOrDie()->num_fields(), 2);
}

TEST_F(DataFrameTest, ExplainShowsBothPlans) {
  auto f = df_.Filter(Eq(Col("id"), Lit(Value(int64_t{1})))).ValueOrDie();
  std::string e = f.Explain().ValueOrDie();
  EXPECT_NE(e.find("Optimized Logical Plan"), std::string::npos);
  EXPECT_NE(e.find("Physical Plan"), std::string::npos);
  EXPECT_NE(e.find("Filter"), std::string::npos);
}

TEST_F(DataFrameTest, ExplainAnalyzeReportsExecution) {
  auto f = df_.Filter(Lt(Col("id"), Lit(Value(int64_t{10})))).ValueOrDie();
  std::string report = f.ExplainAnalyze().ValueOrDie();
  EXPECT_NE(report.find("== Execution =="), std::string::npos);
  EXPECT_NE(report.find("result_rows: 10"), std::string::npos);
  EXPECT_NE(report.find("wall_time"), std::string::npos);
  EXPECT_NE(report.find("metrics{"), std::string::npos);
}

TEST_F(DataFrameTest, EmptyHandleFailsGracefully) {
  DataFrame empty;
  EXPECT_FALSE(empty.valid());
  EXPECT_TRUE(empty.Collect().status().IsInvalidArgument());
  EXPECT_TRUE(empty.Filter(Col("x")).status().IsInvalidArgument());
  EXPECT_TRUE(empty.Count().status().IsInvalidArgument());
}

TEST_F(DataFrameTest, ChainedPipelineEndToEnd) {
  // filter -> join -> groupby -> orderby -> limit, all composed.
  auto dim_schema = Schema::Make({{"g", TypeId::kInt64, false},
                                  {"weight", TypeId::kInt64, false}});
  RowVec dim_rows;
  for (int64_t g = 0; g < 5; ++g) dim_rows.push_back({Value(g), Value(g * 100)});
  auto dim = session_->CreateDataFrame(dim_schema, dim_rows, "dim").ValueOrDie();

  auto result = df_.Filter(Ge(Col("id"), Lit(Value(int64_t{50}))))
                    .ValueOrDie()
                    .Join(dim, "grp", "g")
                    .ValueOrDie()
                    .GroupByAgg({"weight"}, {CountStar("cnt")})
                    .ValueOrDie()
                    .OrderBy("weight")
                    .ValueOrDie()
                    .Limit(2)
                    .ValueOrDie();
  RowVec rows = result.Collect().ValueOrDie();
  ASSERT_EQ(rows.size(), 2u);
  EXPECT_EQ(rows[0][0], Value(int64_t{0}));
  EXPECT_EQ(rows[0][1], Value(int64_t{10}));
  EXPECT_EQ(rows[1][0], Value(int64_t{100}));
}

TEST_F(DataFrameTest, ColMethodMatchesFreeFunction) {
  auto a = df_.col("id");
  EXPECT_TRUE(ExprEquals(a, Col("id")));
}

}  // namespace
}  // namespace idf
