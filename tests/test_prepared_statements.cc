// Prepared statements and the parameterized plan cache: differential
// equality against ad-hoc SQL with the (coerced) literal spliced in,
// NULL-parameter semantics, type coercion, cache hit/miss/eviction
// accounting, DDL invalidation, zero recompilation across same-epoch
// re-executions, concurrent execution under a live append stream, and
// ResetStats.
#include <algorithm>
#include <atomic>
#include <random>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "indexed/indexed_dataframe.h"
#include "service/plan_cache.h"
#include "service/query_service.h"

namespace idf {
namespace {

SchemaPtr TestSchema() {
  return Schema::Make({{"id", TypeId::kInt64, false},
                       {"grp", TypeId::kInt32, false},
                       {"score", TypeId::kFloat64, false},
                       {"name", TypeId::kString, false}});
}

RowVec MakeRows(int64_t begin, int64_t end) {
  RowVec rows;
  rows.reserve(static_cast<size_t>(end - begin));
  for (int64_t i = begin; i < end; ++i) {
    rows.push_back({Value(i), Value(static_cast<int32_t>(i % 16)),
                    Value(static_cast<double>(i % 100) / 2.0),
                    Value("n" + std::to_string(i))});
  }
  return rows;
}

QueryServicePtr MakeServiceWithTable(size_t n, ServiceConfig cfg = {}) {
  cfg.engine.num_threads = 2;
  cfg.engine.num_partitions = 4;
  auto service = QueryService::Make(cfg).ValueOrDie();
  auto session = Session::Make(cfg.engine).ValueOrDie();
  auto df = session
                ->CreateDataFrame(TestSchema(),
                                  MakeRows(0, static_cast<int64_t>(n)), "people")
                .ValueOrDie();
  auto rel =
      IndexedDataFrame::CreateIndex(df, 0, "people_by_id").ValueOrDie().relation();
  EXPECT_TRUE(service->RegisterTable("people", rel).ok());
  return service;
}

/// Renders a (already coerced) parameter value as a SQL literal, so the
/// ad-hoc side of a differential check runs the exact same constant the
/// prepared side bound.
std::string ToSqlLiteral(const Value& v) {
  if (v.is_null()) return "NULL";
  if (v.is_string()) return "'" + v.string_value() + "'";
  if (v.is_double()) {
    std::ostringstream out;
    out.precision(17);
    out << v.double_value();
    std::string s = out.str();
    if (s.find('.') == std::string::npos && s.find('e') == std::string::npos) {
      s += ".0";  // keep it a float literal
    }
    return s;
  }
  return v.ToString();
}

/// Splices literals into `template_sql` at each '?' (in order).
std::string Splice(const std::string& template_sql,
                   const std::vector<Value>& params) {
  std::string out;
  size_t next = 0;
  for (char c : template_sql) {
    if (c == '?') {
      out += ToSqlLiteral(params[next++]);
    } else {
      out.push_back(c);
    }
  }
  EXPECT_EQ(next, params.size());
  return out;
}

RowVec Sorted(RowVec rows) {
  std::sort(rows.begin(), rows.end(), RowLess());
  return rows;
}

/// Runs one differential check: prepared(params) vs ad-hoc with the
/// coerced literals spliced in. Rows must match exactly (as multisets).
void ExpectPreparedMatchesAdHoc(const QueryServicePtr& service,
                                const std::string& template_sql,
                                const std::vector<Value>& params) {
  Result<PreparedInfo> prep = service->Prepare(template_sql);
  ASSERT_TRUE(prep.ok()) << template_sql << ": " << prep.status().ToString();
  ASSERT_EQ(prep->num_params, params.size());

  QueryResult prepared = service->ExecutePrepared(prep->handle, params);
  ASSERT_TRUE(prepared.ok()) << template_sql << ": "
                             << prepared.status.ToString();

  // The ad-hoc twin must see the value the prepared path actually bound,
  // i.e. after coercion to the inferred parameter type.
  std::vector<Value> coerced;
  for (size_t i = 0; i < params.size(); ++i) {
    coerced.push_back(params[i].is_null()
                          ? Value::Null()
                          : params[i].CastTo(prep->param_types[i]).ValueOrDie());
  }
  const std::string adhoc_sql = Splice(template_sql, coerced);
  QueryResult adhoc = service->Execute(adhoc_sql);
  ASSERT_TRUE(adhoc.ok()) << adhoc_sql << ": " << adhoc.status.ToString();

  EXPECT_EQ(Sorted(prepared.rows), Sorted(adhoc.rows))
      << "prepared " << template_sql << " with "
      << Splice(template_sql, coerced) << " diverged ("
      << prepared.rows.size() << " vs " << adhoc.rows.size() << " rows)";
  ASSERT_TRUE(service->ClosePrepared(prep->handle).ok());
}

TEST(PreparedStatementsTest, PointLookupMatchesAdHoc) {
  auto service = MakeServiceWithTable(1000);
  for (int64_t id : {0, 1, 499, 999, 1000, -5}) {
    ExpectPreparedMatchesAdHoc(
        service, "SELECT name FROM people WHERE id = ?", {Value(id)});
  }
}

TEST(PreparedStatementsTest, ReusedHandleRebindsWithoutRecompiling) {
  auto service = MakeServiceWithTable(500);
  auto prep =
      service->Prepare("SELECT name FROM people WHERE id = ?").ValueOrDie();
  for (int64_t id = 0; id < 50; ++id) {
    QueryResult r = service->ExecutePrepared(prep.handle, {Value(id)});
    ASSERT_TRUE(r.ok()) << r.status.ToString();
    ASSERT_EQ(r.rows.size(), 1u);
    EXPECT_EQ(r.rows[0][0].string_value(), "n" + std::to_string(id));
  }
  ServiceStats stats = service->Stats();
  EXPECT_EQ(stats.prepared_executions, 50u);
  // One lowering for the first execution; the other 49 reuse the bound
  // physical plan at the same epoch — zero re-plans, zero recompiles.
  EXPECT_EQ(stats.prepared_replans, 1u);
}

TEST(PreparedStatementsTest, EpochBumpRelowersExactlyOnce) {
  auto service = MakeServiceWithTable(100);
  auto prep =
      service->Prepare("SELECT name FROM people WHERE id = ?").ValueOrDie();
  ASSERT_TRUE(service->ExecutePrepared(prep.handle, {Value(int64_t{7})}).ok());
  ASSERT_TRUE(service->ExecutePrepared(prep.handle, {Value(int64_t{8})}).ok());
  EXPECT_EQ(service->Stats().prepared_replans, 1u);

  ASSERT_TRUE(service->Append("people", MakeRows(100, 110)).ok());
  // New epoch: one re-lowering, then reuse again.
  QueryResult r = service->ExecutePrepared(prep.handle, {Value(int64_t{105})});
  ASSERT_TRUE(r.ok());
  ASSERT_EQ(r.rows.size(), 1u);
  EXPECT_EQ(r.rows[0][0].string_value(), "n105");
  ASSERT_TRUE(service->ExecutePrepared(prep.handle, {Value(int64_t{9})}).ok());
  EXPECT_EQ(service->Stats().prepared_replans, 2u);
}

TEST(PreparedStatementsTest, DifferentialFuzzOverRandomParams) {
  auto service = MakeServiceWithTable(2000);
  const std::vector<std::pair<std::string, int>> templates = {
      {"SELECT name FROM people WHERE id = ?", 1},
      {"SELECT id, score FROM people WHERE grp = ? AND score > ?", 2},
      {"SELECT id FROM people WHERE id >= ? AND id < ?", 2},
      {"SELECT COUNT(*) FROM people WHERE score >= ? OR grp = ?", 2},
      {"SELECT name FROM people WHERE id = ? OR id = ?", 2},
      {"SELECT grp, COUNT(*) FROM people WHERE score < ? GROUP BY grp", 1},
  };
  std::mt19937_64 rng(20260808);
  std::uniform_int_distribution<int64_t> id_dist(-10, 2100);
  std::uniform_real_distribution<double> score_dist(-5.0, 55.0);
  for (int round = 0; round < 40; ++round) {
    const auto& [sql, nparams] = templates[round % templates.size()];
    // Draw values matching each ordinal's inferred type (Prepare is
    // cheap here: after round one every template is a cache hit).
    Result<PreparedInfo> sig = service->Prepare(sql);
    ASSERT_TRUE(sig.ok()) << sql << ": " << sig.status().ToString();
    ASSERT_EQ(sig->num_params, static_cast<size_t>(nparams)) << sql;
    std::vector<Value> params;
    for (int p = 0; p < nparams; ++p) {
      if (rng() % 8 == 0) {
        params.push_back(Value::Null());  // ~1 in 8 params is NULL
      } else if (sig->param_types[static_cast<size_t>(p)] ==
                 TypeId::kFloat64) {
        params.push_back(Value(score_dist(rng)));
      } else {
        params.push_back(Value(id_dist(rng)));
      }
    }
    ASSERT_TRUE(service->ClosePrepared(sig->handle).ok());
    ExpectPreparedMatchesAdHoc(service, sql, params);
  }
}

TEST(PreparedStatementsTest, CoercesIntParamForFloatColumnAndBack) {
  auto service = MakeServiceWithTable(200);
  // int literal bound against a float64 column: coerced to 4.0.
  ExpectPreparedMatchesAdHoc(
      service, "SELECT id FROM people WHERE score = ?", {Value(int64_t{4})});
  // int32 bound against the int64 key column.
  ExpectPreparedMatchesAdHoc(
      service, "SELECT name FROM people WHERE id = ?", {Value(int32_t{42})});
  // Lossy coercion fails cleanly instead of silently truncating.
  auto prep =
      service->Prepare("SELECT name FROM people WHERE id = ?").ValueOrDie();
  QueryResult bad = service->ExecutePrepared(prep.handle, {Value(3.5)});
  EXPECT_FALSE(bad.ok());
  EXPECT_TRUE(bad.status.IsInvalidArgument()) << bad.status.ToString();
}

TEST(PreparedStatementsTest, NullParameterMatchesNothingEverywhere) {
  auto service = MakeServiceWithTable(100);
  // On the indexed key path (lookup key slot)...
  auto by_key =
      service->Prepare("SELECT name FROM people WHERE id = ?").ValueOrDie();
  QueryResult r1 = service->ExecutePrepared(by_key.handle, {Value::Null()});
  ASSERT_TRUE(r1.ok()) << r1.status.ToString();
  EXPECT_TRUE(r1.rows.empty());
  // ...and on the compiled-predicate scan path: `x = NULL` is SQL
  // unknown, never true.
  auto by_scan =
      service->Prepare("SELECT id FROM people WHERE grp = ?").ValueOrDie();
  QueryResult r2 = service->ExecutePrepared(by_scan.handle, {Value::Null()});
  ASSERT_TRUE(r2.ok()) << r2.status.ToString();
  EXPECT_TRUE(r2.rows.empty());
}

TEST(PreparedStatementsTest, NonPatchableShapesFallBackToReplanning) {
  auto service = MakeServiceWithTable(300);
  // A parameter inside an aggregate argument is not a patchable slot:
  // the service substitutes it as a literal and replans per execution —
  // results must still match the ad-hoc twin.
  ExpectPreparedMatchesAdHoc(
      service, "SELECT SUM(score + ?) FROM people WHERE grp = ?",
      {Value(1.5), Value(int32_t{3})});
  EXPECT_GE(service->Stats().prepared_replans, 1u);
}

TEST(PreparedStatementsTest, CacheHitsAndMissesAreCounted) {
  auto service = MakeServiceWithTable(50);
  auto a = service->Prepare("SELECT name FROM people WHERE id = ?").ValueOrDie();
  // Same statement modulo case and whitespace: one plan, one miss.
  auto b =
      service->Prepare("select  name  FROM people\nWHERE id = ?").ValueOrDie();
  auto c = service->Prepare("SELECT id FROM people WHERE grp = ?").ValueOrDie();
  EXPECT_NE(a.handle, b.handle);  // handles are distinct even on a hit
  ServiceStats stats = service->Stats();
  EXPECT_EQ(stats.statements_prepared, 3u);
  EXPECT_EQ(stats.plan_cache_misses, 2u);
  EXPECT_EQ(stats.plan_cache_hits, 1u);
  ASSERT_TRUE(service->ClosePrepared(c.handle).ok());
}

TEST(PreparedStatementsTest, StringLiteralsKeepCaseInFingerprint) {
  auto service = MakeServiceWithTable(50);
  EXPECT_EQ(NormalizeSql("SELECT name FROM people WHERE name = 'N7'"),
            "select name from people where name = 'N7'");
  ASSERT_TRUE(service->Prepare("SELECT id FROM people WHERE name = 'n7'").ok());
  ASSERT_TRUE(service->Prepare("SELECT id FROM people WHERE name = 'N7'").ok());
  // Different literals must not share a cache entry.
  EXPECT_EQ(service->Stats().plan_cache_misses, 2u);
  EXPECT_EQ(service->Stats().plan_cache_hits, 0u);
}

TEST(PreparedStatementsTest, DdlInvalidatesCacheAndReprepares) {
  auto service = MakeServiceWithTable(100);
  auto prep =
      service->Prepare("SELECT name FROM people WHERE id = ?").ValueOrDie();
  ASSERT_TRUE(service->ExecutePrepared(prep.handle, {Value(int64_t{3})}).ok());
  EXPECT_EQ(service->Stats().plan_cache_misses, 1u);

  // DDL: register another table. Every cached plan is invalidated.
  auto session = Session::Make(service->config().engine).ValueOrDie();
  auto df = session->CreateDataFrame(TestSchema(), MakeRows(0, 10), "other")
                .ValueOrDie();
  auto rel =
      IndexedDataFrame::CreateIndex(df, 0, "other_by_id").ValueOrDie().relation();
  ASSERT_TRUE(service->RegisterTable("other", rel).ok());

  // A fresh Prepare of the same SQL misses (the stale plan was dropped).
  ASSERT_TRUE(service->Prepare("SELECT name FROM people WHERE id = ?").ok());
  EXPECT_EQ(service->Stats().plan_cache_misses, 2u);
  EXPECT_EQ(service->Stats().plan_cache_hits, 0u);

  // The old handle keeps working: the service re-prepares transparently.
  QueryResult r = service->ExecutePrepared(prep.handle, {Value(int64_t{4})});
  ASSERT_TRUE(r.ok()) << r.status.ToString();
  ASSERT_EQ(r.rows.size(), 1u);
  EXPECT_EQ(r.rows[0][0].string_value(), "n4");
}

TEST(PreparedStatementsTest, LruEvictsBeyondCapacityButHandlesSurvive) {
  ServiceConfig cfg;
  cfg.plan_cache_capacity = 2;
  auto service = MakeServiceWithTable(100, cfg);
  auto a = service->Prepare("SELECT name FROM people WHERE id = ?").ValueOrDie();
  ASSERT_TRUE(service->Prepare("SELECT id FROM people WHERE grp = ?").ok());
  ASSERT_TRUE(service->Prepare("SELECT COUNT(*) FROM people").ok());
  ServiceStats stats = service->Stats();
  EXPECT_EQ(stats.plan_cache_misses, 3u);
  EXPECT_EQ(stats.plan_cache_evictions, 1u);
  // `a` was evicted (LRU) yet its handle still executes.
  QueryResult r = service->ExecutePrepared(a.handle, {Value(int64_t{9})});
  ASSERT_TRUE(r.ok()) << r.status.ToString();
  EXPECT_EQ(r.rows[0][0].string_value(), "n9");
}

TEST(PreparedStatementsTest, ArgumentErrorsAreReported) {
  auto service = MakeServiceWithTable(10);
  auto prep =
      service->Prepare("SELECT name FROM people WHERE id = ?").ValueOrDie();
  QueryResult wrong_count = service->ExecutePrepared(prep.handle, {});
  EXPECT_TRUE(wrong_count.status.IsInvalidArgument());
  QueryResult bad_handle = service->ExecutePrepared(99999, {Value(int64_t{1})});
  EXPECT_TRUE(bad_handle.status.IsInvalidArgument());
  EXPECT_TRUE(service->ClosePrepared(prep.handle).ok());
  EXPECT_FALSE(service->ClosePrepared(prep.handle).ok());  // already closed
  QueryResult closed = service->ExecutePrepared(prep.handle, {Value(int64_t{1})});
  EXPECT_TRUE(closed.status.IsInvalidArgument());
  // Unpreparable SQL is an error, not a crash.
  EXPECT_FALSE(service->Prepare("SELECT ? FROM people").ok());
  EXPECT_FALSE(service->Prepare("SELEKT ?").ok());
}

TEST(PreparedStatementsTest, ConcurrentExecutionsUnderAppendStream) {
  auto service = MakeServiceWithTable(1000);
  auto prep =
      service->Prepare("SELECT name FROM people WHERE id = ?").ValueOrDie();
  std::atomic<bool> stop{false};
  std::atomic<uint64_t> checked{0};
  std::thread appender([&] {
    int64_t next = 1000;
    while (!stop.load(std::memory_order_acquire)) {
      ASSERT_TRUE(service->Append("people", MakeRows(next, next + 10)).ok());
      next += 10;
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
    }
  });
  std::vector<std::thread> workers;
  for (int t = 0; t < 4; ++t) {
    workers.emplace_back([&, t] {
      std::mt19937_64 rng(static_cast<uint64_t>(t) + 1);
      for (int i = 0; i < 50; ++i) {
        const int64_t id = static_cast<int64_t>(rng() % 1000);
        QueryResult r = service->ExecutePrepared(prep.handle, {Value(id)});
        ASSERT_TRUE(r.ok()) << r.status.ToString();
        ASSERT_EQ(r.rows.size(), 1u);
        ASSERT_EQ(r.rows[0][0].string_value(), "n" + std::to_string(id));
        checked.fetch_add(1, std::memory_order_relaxed);
      }
    });
  }
  for (auto& w : workers) w.join();
  stop.store(true, std::memory_order_release);
  appender.join();
  EXPECT_EQ(checked.load(), 200u);
  EXPECT_EQ(service->Stats().prepared_executions, 200u);
}

TEST(PreparedStatementsTest, ResetStatsZeroesCountersAndHistograms) {
  auto service = MakeServiceWithTable(100);
  auto prep =
      service->Prepare("SELECT name FROM people WHERE id = ?").ValueOrDie();
  ASSERT_TRUE(service->ExecutePrepared(prep.handle, {Value(int64_t{1})}).ok());
  ASSERT_TRUE(service->Execute("SELECT COUNT(*) FROM people").ok());
  ASSERT_FALSE(service->Execute("SELEKT").ok());
  ServiceStats before = service->Stats();
  EXPECT_GT(before.submitted, 0u);
  EXPECT_GT(before.statements_prepared, 0u);
  EXPECT_GT(before.total.count, 0u);

  service->ResetStats();
  ServiceStats after = service->Stats();
  EXPECT_EQ(after.submitted, 0u);
  EXPECT_EQ(after.succeeded, 0u);
  EXPECT_EQ(after.failed, 0u);
  EXPECT_EQ(after.statements_prepared, 0u);
  EXPECT_EQ(after.plan_cache_hits, 0u);
  EXPECT_EQ(after.plan_cache_misses, 0u);
  EXPECT_EQ(after.plan_cache_evictions, 0u);
  EXPECT_EQ(after.prepared_executions, 0u);
  EXPECT_EQ(after.prepared_replans, 0u);
  EXPECT_EQ(after.total.count, 0u);
  EXPECT_EQ(after.exec.count, 0u);

  // The service keeps working and counting after a reset.
  ASSERT_TRUE(service->ExecutePrepared(prep.handle, {Value(int64_t{2})}).ok());
  EXPECT_EQ(service->Stats().prepared_executions, 1u);
}

}  // namespace
}  // namespace idf
