// Unit tests for the rule-based optimizer and its built-in rules.
#include "sql/optimizer.h"

#include <gtest/gtest.h>

#include "sql/analyzer.h"
#include "sql/session.h"

namespace idf {
namespace {

LogicalPlanPtr Scan() {
  auto t = std::make_shared<RawTable>();
  t->name = "t";
  t->schema = Schema::Make({{"a", TypeId::kInt64, true},
                            {"b", TypeId::kInt64, true}});
  t->partitions.push_back({});
  return std::make_shared<ScanNode>(std::move(t));
}

LogicalPlanPtr Optimized(const LogicalPlanPtr& plan) {
  auto analyzed = Analyze(plan).ValueOrDie();
  return Optimizer::WithDefaultRules().Optimize(analyzed).ValueOrDie();
}

TEST(FoldConstantsTest, FoldsLiteralArithmetic) {
  auto folded = FoldConstants(Add(Lit(Value(int64_t{2})), Lit(Value(int64_t{3}))))
                    .ValueOrDie();
  ASSERT_EQ(folded->kind(), ExprKind::kLiteral);
  EXPECT_EQ(static_cast<const LiteralExpr*>(folded.get())->value(),
            Value(int64_t{5}));
}

TEST(FoldConstantsTest, FoldsLiteralComparisonsAndLogic) {
  auto e = And(Eq(Lit(Value(int64_t{1})), Lit(Value(int64_t{1}))),
               Lt(Lit(Value(int64_t{1})), Lit(Value(int64_t{2}))));
  auto folded = FoldConstants(e).ValueOrDie();
  ASSERT_EQ(folded->kind(), ExprKind::kLiteral);
  EXPECT_EQ(static_cast<const LiteralExpr*>(folded.get())->value(), Value(true));
}

TEST(FoldConstantsTest, FoldsSubtreesAroundColumns) {
  auto e = Gt(Col("a"), Add(Lit(Value(int64_t{1})), Lit(Value(int64_t{2}))));
  auto folded = FoldConstants(e).ValueOrDie();
  EXPECT_EQ(folded->kind(), ExprKind::kComparison);
  EXPECT_EQ(folded->children()[1]->kind(), ExprKind::kLiteral);
}

TEST(FoldConstantsTest, LeavesColumnOnlyExpressionsAlone) {
  auto e = Eq(Col("a"), Col("b"));
  EXPECT_EQ(FoldConstants(e).ValueOrDie().get(), e.get());
}

TEST(OptimizerTest, RequiresAnalyzedPlan) {
  auto plan = std::make_shared<FilterNode>(Scan(), Eq(Col("a"), Col("b")));
  EXPECT_TRUE(Optimizer::WithDefaultRules()
                  .Optimize(plan)
                  .status()
                  .IsInvalidArgument());
}

TEST(OptimizerTest, FoldsFilterPredicates) {
  auto plan = std::make_shared<FilterNode>(
      Scan(), Gt(Col("a"), Add(Lit(Value(int64_t{10})), Lit(Value(int64_t{5})))));
  auto optimized = Optimized(plan);
  ASSERT_EQ(optimized->kind(), PlanKind::kFilter);
  const auto* f = static_cast<const FilterNode*>(optimized.get());
  EXPECT_EQ(f->predicate()->children()[1]->kind(), ExprKind::kLiteral);
}

TEST(OptimizerTest, MergesStackedFilters) {
  auto inner = std::make_shared<FilterNode>(Scan(),
                                            Gt(Col("a"), Lit(Value(int64_t{1}))));
  auto outer = std::make_shared<FilterNode>(inner,
                                            Lt(Col("b"), Lit(Value(int64_t{9}))));
  auto optimized = Optimized(outer);
  ASSERT_EQ(optimized->kind(), PlanKind::kFilter);
  // One filter over the scan, with an AND of both predicates.
  EXPECT_EQ(optimized->children()[0]->kind(), PlanKind::kScan);
  const auto* f = static_cast<const FilterNode*>(optimized.get());
  EXPECT_EQ(f->predicate()->kind(), ExprKind::kLogical);
}

TEST(OptimizerTest, MergesThreeStackedFilters) {
  LogicalPlanPtr plan = Scan();
  for (int i = 0; i < 3; ++i) {
    plan = std::make_shared<FilterNode>(
        plan, Ne(Col("a"), Lit(Value(int64_t{i}))));
  }
  auto optimized = Optimized(plan);
  ASSERT_EQ(optimized->kind(), PlanKind::kFilter);
  EXPECT_EQ(optimized->children()[0]->kind(), PlanKind::kScan);
}

TEST(OptimizerTest, RemovesLiteralTrueFilter) {
  auto plan =
      std::make_shared<FilterNode>(Scan(), Eq(Lit(Value(int64_t{1})),
                                              Lit(Value(int64_t{1}))));
  auto optimized = Optimized(plan);
  EXPECT_EQ(optimized->kind(), PlanKind::kScan);
}

TEST(OptimizerTest, KeepsLiteralFalseFilter) {
  auto plan =
      std::make_shared<FilterNode>(Scan(), Eq(Lit(Value(int64_t{1})),
                                              Lit(Value(int64_t{2}))));
  auto optimized = Optimized(plan);
  EXPECT_EQ(optimized->kind(), PlanKind::kFilter);
}

TEST(OptimizerTest, IsIdempotent) {
  auto inner = std::make_shared<FilterNode>(Scan(),
                                            Gt(Col("a"), Lit(Value(int64_t{1}))));
  auto outer = std::make_shared<FilterNode>(inner,
                                            Lt(Col("b"), Lit(Value(int64_t{9}))));
  auto once = Optimized(outer);
  auto twice = Optimizer::WithDefaultRules().Optimize(once).ValueOrDie();
  EXPECT_EQ(once->TreeString(), twice->TreeString());
}

TEST(OptimizerTest, OptimizesThroughNonFilterNodes) {
  auto filter = std::make_shared<FilterNode>(
      Scan(), Eq(Lit(Value(int64_t{1})), Lit(Value(int64_t{1}))));
  auto limit = std::make_shared<LimitNode>(filter, 10);
  auto optimized = Optimized(limit);
  ASSERT_EQ(optimized->kind(), PlanKind::kLimit);
  EXPECT_EQ(optimized->children()[0]->kind(), PlanKind::kScan);
}

TEST(OptimizerTest, PushesFilterThroughColumnProjection) {
  auto project = std::make_shared<ProjectNode>(
      Scan(), std::vector<ExprPtr>{Col("b"), Col("a")},
      std::vector<std::string>{"b", "a"});
  auto filter = std::make_shared<FilterNode>(
      project, Gt(Col("a"), Lit(Value(int64_t{5}))));
  auto optimized = Optimized(filter);
  ASSERT_EQ(optimized->kind(), PlanKind::kProject);
  ASSERT_EQ(optimized->children()[0]->kind(), PlanKind::kFilter);
  EXPECT_EQ(optimized->children()[0]->children()[0]->kind(), PlanKind::kScan);
  // The pushed predicate references the scan's ordinal of `a` (0), not the
  // projection's (1).
  const auto* pushed =
      static_cast<const FilterNode*>(optimized->children()[0].get());
  std::vector<int> refs;
  CollectRefIndices(pushed->predicate(), &refs);
  ASSERT_EQ(refs.size(), 1u);
  EXPECT_EQ(refs[0], 0);
}

TEST(OptimizerTest, DoesNotDuplicateComputedProjections) {
  auto project = std::make_shared<ProjectNode>(
      Scan(), std::vector<ExprPtr>{Add(Col("a"), Col("b"))},
      std::vector<std::string>{"sum"});
  auto filter = std::make_shared<FilterNode>(
      project, Gt(Col("sum"), Lit(Value(int64_t{5}))));
  auto optimized = Optimized(filter);
  EXPECT_EQ(optimized->kind(), PlanKind::kFilter);  // not pushed
}

TEST(OptimizerTest, SplitsFilterAcrossJoinSides) {
  auto join =
      std::make_shared<JoinNode>(Scan(), Scan(), Col("a"), Col("a"));
  // Conjuncts: left-only (ordinal 0), right-only (ordinal 2 = right's a),
  // and mixed (0 vs 3).
  auto pred = And(And(Gt(Col("a"), Lit(Value(int64_t{1}))),
                      Lt(Col("b"), Lit(Value(int64_t{100})))),
                  Ne(Col("a"), Col("b")));
  auto analyzed =
      Analyze(std::make_shared<FilterNode>(join, pred)).ValueOrDie();
  // Bind: a#0 b#1 from left, a#2 b#3 from right (first match wins, so the
  // textual predicate binds to the left side; craft a right-side conjunct
  // explicitly instead).
  auto right_only =
      std::make_shared<ComparisonExpr>(CompareOp::kGt,
                                       std::make_shared<ColumnRefExpr>("a", 2),
                                       Lit(Value(int64_t{7})));
  auto mixed = std::make_shared<ComparisonExpr>(
      CompareOp::kNe, std::make_shared<ColumnRefExpr>("a", 0),
      std::make_shared<ColumnRefExpr>("b", 3));
  auto left_only = std::make_shared<ComparisonExpr>(
      CompareOp::kLt, std::make_shared<ColumnRefExpr>("b", 1),
      Lit(Value(int64_t{9})));
  auto full = And(And(ExprPtr(left_only), ExprPtr(right_only)), ExprPtr(mixed));
  auto analyzed_join = Analyze(LogicalPlanPtr(join)).ValueOrDie();
  auto filter = std::make_shared<FilterNode>(analyzed_join, full,
                                             analyzed_join->output_schema());
  auto optimized =
      Optimizer::WithDefaultRules().Optimize(filter).ValueOrDie();
  // Mixed conjunct stays above; both sides gained a filter.
  ASSERT_EQ(optimized->kind(), PlanKind::kFilter);
  const auto* join_node =
      static_cast<const JoinNode*>(optimized->children()[0].get());
  EXPECT_EQ(join_node->left()->kind(), PlanKind::kFilter);
  EXPECT_EQ(join_node->right()->kind(), PlanKind::kFilter);
  // The right-side filter's refs were shifted into the right schema.
  const auto* right_filter =
      static_cast<const FilterNode*>(join_node->right().get());
  std::vector<int> refs;
  CollectRefIndices(right_filter->predicate(), &refs);
  ASSERT_EQ(refs.size(), 1u);
  EXPECT_EQ(refs[0], 0);
  (void)analyzed;
}

TEST(OptimizerTest, PushesGroupKeyFilterThroughAggregate) {
  std::vector<AggSpec> aggs = {AggSpec{AggFn::kCountStar, nullptr, "cnt"}};
  auto agg = std::make_shared<AggregateNode>(
      Scan(), std::vector<ExprPtr>{Col("a")}, std::vector<std::string>{}, aggs);
  auto filter = std::make_shared<FilterNode>(
      agg, And(Eq(Col("a"), Lit(Value(int64_t{3}))),
               Gt(Col("cnt"), Lit(Value(int64_t{1})))));
  auto optimized = Optimized(filter);
  // Group-key conjunct pushed below; HAVING-like conjunct kept above.
  ASSERT_EQ(optimized->kind(), PlanKind::kFilter);
  ASSERT_EQ(optimized->children()[0]->kind(), PlanKind::kAggregate);
  EXPECT_EQ(optimized->children()[0]->children()[0]->kind(), PlanKind::kFilter);
  EXPECT_EQ(
      optimized->children()[0]->children()[0]->children()[0]->kind(),
      PlanKind::kScan);
}

TEST(OptimizerTest, AggregateOutputFiltersStayAbove) {
  std::vector<AggSpec> aggs = {AggSpec{AggFn::kSum, Col("b"), "s"}};
  auto agg = std::make_shared<AggregateNode>(
      Scan(), std::vector<ExprPtr>{Col("a")}, std::vector<std::string>{}, aggs);
  auto filter = std::make_shared<FilterNode>(
      agg, Gt(Col("s"), Lit(Value(int64_t{10}))));
  auto optimized = Optimized(filter);
  ASSERT_EQ(optimized->kind(), PlanKind::kFilter);
  EXPECT_EQ(optimized->children()[0]->kind(), PlanKind::kAggregate);
  EXPECT_EQ(optimized->children()[0]->children()[0]->kind(), PlanKind::kScan);
}

TEST(OptimizerTest, AggregatePushdownPreservesResults) {
  EngineConfig cfg;
  cfg.num_partitions = 3;
  auto session = Session::Make(cfg).ValueOrDie();
  auto schema = Schema::Make({{"g", TypeId::kInt64, false},
                              {"v", TypeId::kInt64, false}});
  RowVec rows;
  for (int64_t i = 0; i < 90; ++i) rows.push_back({Value(i % 9), Value(i)});
  auto df = session->CreateDataFrame(schema, rows, "t").ValueOrDie();
  auto q = df.GroupByAgg({"g"}, {CountStar("cnt"), SumOf(Col("v"), "s")})
               .ValueOrDie()
               .Filter(And(Eq(Col("g"), Lit(Value(int64_t{4}))),
                           Gt(Col("cnt"), Lit(Value(int64_t{5})))))
               .ValueOrDie();
  RowVec result = q.Collect().ValueOrDie();
  ASSERT_EQ(result.size(), 1u);
  EXPECT_EQ(result[0][0], Value(int64_t{4}));
  EXPECT_EQ(result[0][1], Value(int64_t{10}));
}

TEST(OptimizerTest, FusesLimitOverSortIntoTopK) {
  auto sort = std::make_shared<SortNode>(
      Scan(), std::vector<SortKey>{SortKey{Col("a"), false}});
  auto limit = std::make_shared<LimitNode>(sort, 5);
  auto optimized = Optimized(limit);
  ASSERT_EQ(optimized->kind(), PlanKind::kTopK);
  const auto* topk = static_cast<const TopKNode*>(optimized.get());
  EXPECT_EQ(topk->n(), 5u);
  ASSERT_EQ(topk->keys().size(), 1u);
  EXPECT_FALSE(topk->keys()[0].ascending);
  EXPECT_EQ(topk->children()[0]->kind(), PlanKind::kScan);
}

TEST(OptimizerTest, LimitWithoutSortStaysLimit) {
  auto optimized = Optimized(std::make_shared<LimitNode>(Scan(), 5));
  EXPECT_EQ(optimized->kind(), PlanKind::kLimit);
}

TEST(OptimizerTest, TopKMatchesSortLimitResults) {
  EngineConfig cfg;
  cfg.num_partitions = 4;
  auto session = Session::Make(cfg).ValueOrDie();
  auto schema = Schema::Make({{"k", TypeId::kInt64, false},
                              {"tie", TypeId::kInt64, false}});
  RowVec rows;
  for (int64_t i = 0; i < 200; ++i) rows.push_back({Value(i % 37), Value(i)});
  auto df = session->CreateDataFrame(schema, rows, "t").ValueOrDie();
  auto top = df.OrderBy("k", /*ascending=*/false)
                 .ValueOrDie()
                 .Limit(10)
                 .ValueOrDie();
  std::string plan = top.Explain().ValueOrDie();
  EXPECT_NE(plan.find("TopK"), std::string::npos);
  RowVec got = top.Collect().ValueOrDie();
  ASSERT_EQ(got.size(), 10u);
  // Verify against a straightforward global sort.
  RowVec expected = rows;
  std::stable_sort(expected.begin(), expected.end(),
                   [](const Row& a, const Row& b) { return b[0] < a[0]; });
  expected.resize(10);
  // Compare sort keys only (ties may legitimately reorder secondary cols
  // across partitions).
  for (size_t i = 0; i < 10; ++i) {
    EXPECT_EQ(got[i][0], expected[i][0]) << i;
  }
}

TEST(OptimizerTest, PushdownPreservesResults) {
  // End-to-end: a filtered join computes the same rows with and without
  // the pushdown rules.
  EngineConfig cfg;
  cfg.num_partitions = 3;
  auto session = Session::Make(cfg).ValueOrDie();
  auto schema = Schema::Make({{"k", TypeId::kInt64, false},
                              {"v", TypeId::kInt64, false}});
  RowVec rows;
  for (int64_t i = 0; i < 60; ++i) rows.push_back({Value(i % 6), Value(i)});
  auto left = session->CreateDataFrame(schema, rows, "l").ValueOrDie();
  auto right = session->CreateDataFrame(schema, rows, "r").ValueOrDie();
  auto joined = left.Join(right, "k", "k").ValueOrDie();
  auto filtered =
      joined.Filter(And(Eq(Col("k"), Lit(Value(int64_t{3}))),
                        Gt(Col("v"), Lit(Value(int64_t{30})))))
          .ValueOrDie();
  RowVec result = filtered.Collect().ValueOrDie();
  // k==3 rows: v in {3,9,...,57} (10 rows/side); left v>30: {33,39,...,57}
  // = 5 rows, each joining 10 right rows.
  EXPECT_EQ(result.size(), 50u);
  for (const Row& row : result) {
    EXPECT_EQ(row[0], Value(int64_t{3}));
    EXPECT_GT(row[1].AsInt64(), 30);
  }
}

class CountingRule : public OptimizerRule {
 public:
  explicit CountingRule(int* counter) : counter_(counter) {}
  std::string name() const override { return "Counting"; }
  Result<LogicalPlanPtr> Apply(const LogicalPlanPtr& node) const override {
    ++*counter_;
    return LogicalPlanPtr(nullptr);
  }

 private:
  int* counter_;
};

TEST(OptimizerTest, CustomRulesAreInvoked) {
  int count = 0;
  Optimizer opt = Optimizer::WithDefaultRules();
  opt.AddRule(std::make_shared<CountingRule>(&count));
  auto plan = Analyze(std::make_shared<LimitNode>(Scan(), 1)).ValueOrDie();
  opt.Optimize(plan).ValueOrDie();
  EXPECT_GE(count, 2);  // at least once per node
}

}  // namespace
}  // namespace idf
