// Unit tests for expression evaluation, binding, three-valued logic, and
// the structural matchers the optimizer rules rely on.
#include "sql/expression.h"

#include <gtest/gtest.h>

namespace idf {
namespace {

SchemaPtr TestSchema() {
  return Schema::Make({
      {"a", TypeId::kInt64, true},
      {"b", TypeId::kInt64, true},
      {"s", TypeId::kString, true},
      {"f", TypeId::kFloat64, true},
  });
}

Result<Value> EvalOn(const ExprPtr& e, const Row& row) {
  auto bound = BindExpr(e, *TestSchema());
  IDF_RETURN_NOT_OK(bound.status());
  return (*bound)->Eval(row);
}

Row SampleRow() { return {Value(int64_t{3}), Value(int64_t{4}), Value("x"), Value(2.5)}; }

TEST(ExpressionTest, ColumnRefEvaluatesAfterBinding) {
  EXPECT_EQ(EvalOn(Col("b"), SampleRow()).ValueOrDie(), Value(int64_t{4}));
}

TEST(ExpressionTest, UnboundColumnRefFails) {
  auto r = Col("a")->Eval(SampleRow());
  EXPECT_TRUE(r.status().IsInternal());
}

TEST(ExpressionTest, BindUnknownColumnIsKeyError) {
  EXPECT_TRUE(BindExpr(Col("zz"), *TestSchema()).status().IsKeyError());
}

TEST(ExpressionTest, BindingIsRecursive) {
  auto e = And(Eq(Col("a"), Lit(Value(int64_t{3}))), Gt(Col("b"), Col("a")));
  auto bound = BindExpr(e, *TestSchema()).ValueOrDie();
  EXPECT_FALSE(HasUnboundRefs(bound));
  EXPECT_TRUE(HasUnboundRefs(e));
  EXPECT_EQ(bound->Eval(SampleRow()).ValueOrDie(), Value(true));
}

TEST(ExpressionTest, LiteralEvaluatesToItself) {
  EXPECT_EQ(Lit(Value("q"))->Eval({}).ValueOrDie(), Value("q"));
}

TEST(ExpressionTest, ComparisonOperators) {
  Row row = SampleRow();
  EXPECT_EQ(EvalOn(Eq(Col("a"), Lit(Value(int64_t{3}))), row).ValueOrDie(),
            Value(true));
  EXPECT_EQ(EvalOn(Ne(Col("a"), Lit(Value(int64_t{3}))), row).ValueOrDie(),
            Value(false));
  EXPECT_EQ(EvalOn(Lt(Col("a"), Col("b")), row).ValueOrDie(), Value(true));
  EXPECT_EQ(EvalOn(Le(Col("a"), Lit(Value(int64_t{3}))), row).ValueOrDie(),
            Value(true));
  EXPECT_EQ(EvalOn(Gt(Col("a"), Col("b")), row).ValueOrDie(), Value(false));
  EXPECT_EQ(EvalOn(Ge(Col("b"), Lit(Value(int64_t{4}))), row).ValueOrDie(),
            Value(true));
}

TEST(ExpressionTest, ComparisonWithNullIsNull) {
  Row row = {Value::Null(), Value(int64_t{4}), Value("x"), Value(1.0)};
  EXPECT_TRUE(
      EvalOn(Eq(Col("a"), Lit(Value(int64_t{3}))), row).ValueOrDie().is_null());
  EXPECT_TRUE(EvalOn(Lt(Col("a"), Col("b")), row).ValueOrDie().is_null());
}

TEST(ExpressionTest, CrossWidthNumericComparison) {
  EXPECT_EQ(EvalOn(Eq(Col("f"), Lit(Value(2.5))), SampleRow()).ValueOrDie(),
            Value(true));
  EXPECT_EQ(EvalOn(Gt(Col("f"), Col("a")), SampleRow()).ValueOrDie(),
            Value(false));
}

TEST(ExpressionTest, StringComparison) {
  EXPECT_EQ(EvalOn(Eq(Col("s"), Lit(Value("x"))), SampleRow()).ValueOrDie(),
            Value(true));
  EXPECT_EQ(EvalOn(Lt(Col("s"), Lit(Value("y"))), SampleRow()).ValueOrDie(),
            Value(true));
}

TEST(ExpressionTest, ComparingStringWithNumberIsTypeError) {
  auto e = Eq(Col("s"), Lit(Value(int64_t{1})));
  EXPECT_TRUE(BindExpr(e, *TestSchema())
                  .ValueOrDie()
                  ->ResultType(*TestSchema())
                  .status()
                  .IsTypeError());
}

TEST(ExpressionTest, ThreeValuedAnd) {
  Row null_a = {Value::Null(), Value(int64_t{4}), Value("x"), Value(1.0)};
  auto null_cmp = Eq(Col("a"), Lit(Value(int64_t{1})));  // null
  auto true_cmp = Eq(Col("b"), Lit(Value(int64_t{4})));  // true
  auto false_cmp = Eq(Col("b"), Lit(Value(int64_t{5})));  // false
  EXPECT_TRUE(EvalOn(And(null_cmp, true_cmp), null_a).ValueOrDie().is_null());
  EXPECT_EQ(EvalOn(And(null_cmp, false_cmp), null_a).ValueOrDie(), Value(false));
  EXPECT_EQ(EvalOn(And(true_cmp, false_cmp), null_a).ValueOrDie(), Value(false));
}

TEST(ExpressionTest, ThreeValuedOr) {
  Row null_a = {Value::Null(), Value(int64_t{4}), Value("x"), Value(1.0)};
  auto null_cmp = Eq(Col("a"), Lit(Value(int64_t{1})));
  auto true_cmp = Eq(Col("b"), Lit(Value(int64_t{4})));
  auto false_cmp = Eq(Col("b"), Lit(Value(int64_t{5})));
  EXPECT_EQ(EvalOn(Or(null_cmp, true_cmp), null_a).ValueOrDie(), Value(true));
  EXPECT_TRUE(EvalOn(Or(null_cmp, false_cmp), null_a).ValueOrDie().is_null());
}

TEST(ExpressionTest, NotAndIsNull) {
  Row row = SampleRow();
  EXPECT_EQ(EvalOn(Not(Eq(Col("a"), Lit(Value(int64_t{3})))), row).ValueOrDie(),
            Value(false));
  EXPECT_EQ(EvalOn(IsNull(Col("a")), row).ValueOrDie(), Value(false));
  EXPECT_EQ(EvalOn(IsNotNull(Col("a")), row).ValueOrDie(), Value(true));
  Row with_null = {Value::Null(), Value(int64_t{4}), Value("x"), Value(1.0)};
  EXPECT_EQ(EvalOn(IsNull(Col("a")), with_null).ValueOrDie(), Value(true));
  EXPECT_TRUE(EvalOn(Not(Eq(Col("a"), Lit(Value(int64_t{1})))), with_null)
                  .ValueOrDie()
                  .is_null());
}

TEST(ExpressionTest, Arithmetic) {
  Row row = SampleRow();
  EXPECT_EQ(EvalOn(Add(Col("a"), Col("b")), row).ValueOrDie(), Value(int64_t{7}));
  EXPECT_EQ(EvalOn(Sub(Col("b"), Col("a")), row).ValueOrDie(), Value(int64_t{1}));
  EXPECT_EQ(EvalOn(Mul(Col("a"), Col("b")), row).ValueOrDie(), Value(int64_t{12}));
  EXPECT_EQ(EvalOn(Div(Col("b"), Col("a")), row).ValueOrDie(),
            Value(4.0 / 3.0));
}

TEST(ExpressionTest, DivisionByZeroYieldsNull) {
  EXPECT_TRUE(EvalOn(Div(Col("a"), Lit(Value(int64_t{0}))), SampleRow())
                  .ValueOrDie()
                  .is_null());
}

TEST(ExpressionTest, ArithmeticWithNullIsNull) {
  Row with_null = {Value::Null(), Value(int64_t{4}), Value("x"), Value(1.0)};
  EXPECT_TRUE(
      EvalOn(Add(Col("a"), Col("b")), with_null).ValueOrDie().is_null());
}

TEST(ExpressionTest, ArithmeticOnStringIsTypeError) {
  auto bound = BindExpr(Add(Col("s"), Col("a")), *TestSchema()).ValueOrDie();
  EXPECT_TRUE(bound->ResultType(*TestSchema()).status().IsTypeError());
}

TEST(ExpressionTest, ResultTypes) {
  SchemaPtr s = TestSchema();
  EXPECT_EQ(BindExpr(Col("a"), *s).ValueOrDie()->ResultType(*s).ValueOrDie(),
            TypeId::kInt64);
  EXPECT_EQ(BindExpr(Eq(Col("a"), Col("b")), *s)
                .ValueOrDie()
                ->ResultType(*s)
                .ValueOrDie(),
            TypeId::kBool);
  EXPECT_EQ(BindExpr(Add(Col("a"), Col("f")), *s)
                .ValueOrDie()
                ->ResultType(*s)
                .ValueOrDie(),
            TypeId::kFloat64);
  EXPECT_EQ(BindExpr(Add(Col("a"), Col("b")), *s)
                .ValueOrDie()
                ->ResultType(*s)
                .ValueOrDie(),
            TypeId::kInt64);
}

TEST(ExpressionTest, LikeMatcherSemantics) {
  EXPECT_TRUE(LikeMatch("hello", "hello"));
  EXPECT_FALSE(LikeMatch("hello", "hell"));
  EXPECT_TRUE(LikeMatch("hello", "h%"));
  EXPECT_TRUE(LikeMatch("hello", "%o"));
  EXPECT_TRUE(LikeMatch("hello", "%ell%"));
  EXPECT_TRUE(LikeMatch("hello", "h_llo"));
  EXPECT_FALSE(LikeMatch("hello", "h_llo_"));
  EXPECT_TRUE(LikeMatch("", "%"));
  EXPECT_FALSE(LikeMatch("", "_"));
  EXPECT_TRUE(LikeMatch("abc", "%%%"));
  EXPECT_TRUE(LikeMatch("10.0.3.7", "10.0.%"));
  EXPECT_FALSE(LikeMatch("10.1.3.7", "10.0.%"));
  EXPECT_TRUE(LikeMatch("aXbXc", "a%b%c"));
  // Backtracking case: first % match must be retried.
  EXPECT_TRUE(LikeMatch("aabab", "%ab"));
}

TEST(ExpressionTest, LikeExprEvalAndNulls) {
  Row row = SampleRow();  // s == "x"
  EXPECT_EQ(EvalOn(Like(Col("s"), "x"), row).ValueOrDie(), Value(true));
  EXPECT_EQ(EvalOn(Like(Col("s"), "y%"), row).ValueOrDie(), Value(false));
  EXPECT_EQ(EvalOn(NotLike(Col("s"), "y%"), row).ValueOrDie(), Value(true));
  Row with_null = {Value(int64_t{1}), Value(int64_t{2}), Value::Null(),
                   Value(1.0)};
  EXPECT_TRUE(EvalOn(Like(Col("s"), "%"), with_null).ValueOrDie().is_null());
}

TEST(ExpressionTest, LikeOnNonStringIsTypeError) {
  auto bound = BindExpr(Like(Col("a"), "%"), *TestSchema()).ValueOrDie();
  EXPECT_TRUE(bound->ResultType(*TestSchema()).status().IsTypeError());
}

TEST(ExpressionTest, ExprEqualsStructural) {
  auto e1 = And(Eq(Col("a"), Lit(Value(int64_t{1}))), Gt(Col("b"), Col("a")));
  auto e2 = And(Eq(Col("a"), Lit(Value(int64_t{1}))), Gt(Col("b"), Col("a")));
  auto e3 = And(Eq(Col("a"), Lit(Value(int64_t{2}))), Gt(Col("b"), Col("a")));
  EXPECT_TRUE(ExprEquals(e1, e2));
  EXPECT_FALSE(ExprEquals(e1, e3));
  EXPECT_FALSE(ExprEquals(e1, Col("a")));
}

TEST(ExpressionTest, MatchEqualityFilterBothOrientations) {
  SchemaPtr s = TestSchema();
  int col = -1;
  Value lit;
  auto e1 = BindExpr(Eq(Col("a"), Lit(Value(int64_t{9}))), *s).ValueOrDie();
  EXPECT_TRUE(MatchEqualityFilter(e1, &col, &lit));
  EXPECT_EQ(col, 0);
  EXPECT_EQ(lit, Value(int64_t{9}));

  auto e2 = BindExpr(Eq(Lit(Value(int64_t{9})), Col("b")), *s).ValueOrDie();
  EXPECT_TRUE(MatchEqualityFilter(e2, &col, &lit));
  EXPECT_EQ(col, 1);
}

TEST(ExpressionTest, MatchEqualityFilterRejectsNonMatching) {
  SchemaPtr s = TestSchema();
  int col;
  Value lit;
  EXPECT_FALSE(MatchEqualityFilter(
      BindExpr(Gt(Col("a"), Lit(Value(int64_t{1}))), *s).ValueOrDie(), &col,
      &lit));
  EXPECT_FALSE(MatchEqualityFilter(
      BindExpr(Eq(Col("a"), Col("b")), *s).ValueOrDie(), &col, &lit));
  // Unbound refs never match.
  EXPECT_FALSE(MatchEqualityFilter(Eq(Col("a"), Lit(Value(int64_t{1}))), &col,
                                   &lit));
  // Null literal never matches (null = x is never true).
  EXPECT_FALSE(MatchEqualityFilter(
      BindExpr(Eq(Col("a"), Lit(Value::Null())), *s).ValueOrDie(), &col, &lit));
}

TEST(ExpressionTest, ToStringReadable) {
  auto e = And(Eq(Col("a"), Lit(Value(int64_t{1}))), IsNull(Col("s")));
  std::string s = e->ToString();
  EXPECT_NE(s.find("a = 1"), std::string::npos);
  EXPECT_NE(s.find("s IS NULL"), std::string::npos);
  EXPECT_NE(s.find("AND"), std::string::npos);
}

}  // namespace
}  // namespace idf
