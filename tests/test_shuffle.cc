// Unit tests for hash partitioning and shuffle invariants.
#include "engine/shuffle.h"

#include <gtest/gtest.h>

#include "engine/broadcast.h"

namespace idf {
namespace {

ExecutorContextPtr MakeCtx(int partitions = 4, int threads = 2) {
  EngineConfig cfg;
  cfg.num_partitions = partitions;
  cfg.num_threads = threads;
  return ExecutorContext::Make(cfg).ValueOrDie();
}

TEST(PartitionerTest, StableAndInRange) {
  HashPartitioner p(7);
  for (int64_t i = 0; i < 1000; ++i) {
    int a = p.PartitionOf(Value(i));
    int b = p.PartitionOf(Value(i));
    EXPECT_EQ(a, b);
    EXPECT_GE(a, 0);
    EXPECT_LT(a, 7);
  }
}

TEST(PartitionerTest, MixedWidthKeysRouteIdentically) {
  HashPartitioner p(8);
  EXPECT_EQ(p.PartitionOf(Value(int32_t{42})), p.PartitionOf(Value(int64_t{42})));
  EXPECT_EQ(p.PartitionOf(Value(42.0)), p.PartitionOf(Value(int64_t{42})));
}

TEST(PartitionerTest, SpreadsKeysReasonably) {
  HashPartitioner p(8);
  std::vector<int> counts(8, 0);
  for (int64_t i = 0; i < 8000; ++i) ++counts[static_cast<size_t>(p.PartitionOf(Value(i)))];
  for (int c : counts) {
    EXPECT_GT(c, 500);
    EXPECT_LT(c, 1500);
  }
}

TEST(SplitRoundRobinTest, BalancesAndPreservesRows) {
  RowVec rows;
  for (int64_t i = 0; i < 103; ++i) rows.push_back({Value(i)});
  PartitionedRows parts = SplitRoundRobin(rows, 4);
  ASSERT_EQ(parts.size(), 4u);
  EXPECT_EQ(CountRows(parts), 103u);
  for (const RowVec& p : parts) {
    EXPECT_GE(p.size(), 25u);
    EXPECT_LE(p.size(), 26u);
  }
  RowVec flat = FlattenPartitions(parts);
  SortRows(&flat);
  SortRows(&rows);
  EXPECT_EQ(flat, rows);
}

TEST(ShuffleTest, EveryRowLandsInItsKeyPartition) {
  auto ctx = MakeCtx(5);
  RowVec rows;
  for (int64_t i = 0; i < 500; ++i) rows.push_back({Value(i % 37), Value(i)});
  PartitionedRows input = SplitRoundRobin(rows, 3);
  HashPartitioner partitioner(5);
  PartitionedRows output = ShuffleByKey(*ctx, input, 0, partitioner);
  ASSERT_EQ(output.size(), 5u);
  EXPECT_EQ(CountRows(output), 500u);
  for (size_t p = 0; p < output.size(); ++p) {
    for (const Row& row : output[p]) {
      EXPECT_EQ(partitioner.PartitionOf(row[0]), static_cast<int>(p));
    }
  }
}

TEST(ShuffleTest, SameKeySameOutputPartition) {
  auto ctx = MakeCtx(4);
  RowVec rows;
  for (int64_t i = 0; i < 100; ++i) rows.push_back({Value(int64_t{7}), Value(i)});
  PartitionedRows output =
      ShuffleByKey(*ctx, SplitRoundRobin(rows, 4), 0, HashPartitioner(4));
  int non_empty = 0;
  for (const RowVec& p : output) {
    if (!p.empty()) {
      ++non_empty;
      EXPECT_EQ(p.size(), 100u);
    }
  }
  EXPECT_EQ(non_empty, 1);
}

TEST(ShuffleTest, NullKeysGoToPartitionZero) {
  auto ctx = MakeCtx(4);
  RowVec rows = {{Value::Null(), Value(int64_t{1})},
                 {Value::Null(), Value(int64_t{2})}};
  PartitionedRows output =
      ShuffleByKey(*ctx, SplitRoundRobin(rows, 2), 0, HashPartitioner(4));
  EXPECT_EQ(output[0].size(), 2u);
}

TEST(ShuffleTest, MetricsAccountVolume) {
  auto ctx = MakeCtx(4);
  ctx->metrics().Reset();
  RowVec rows;
  for (int64_t i = 0; i < 50; ++i) rows.push_back({Value(i)});
  ShuffleByKey(*ctx, SplitRoundRobin(rows, 2), 0, HashPartitioner(4));
  EXPECT_EQ(ctx->metrics().shuffled_rows(), 50u);
  EXPECT_GT(ctx->metrics().shuffled_bytes(), 0u);
  EXPECT_GT(ctx->metrics().tasks_run(), 0u);
}

TEST(BroadcastTest, SharesRowsAndAccountsBytes) {
  auto ctx = MakeCtx(4, 3);
  ctx->metrics().Reset();
  RowVec rows;
  for (int64_t i = 0; i < 10; ++i) rows.push_back({Value(i), Value("payload")});
  BroadcastRows bc = MakeBroadcast(*ctx, std::move(rows));
  EXPECT_EQ(bc.rows->size(), 10u);
  // Simulated cluster transmission: bytes x executors.
  EXPECT_GT(ctx->metrics().broadcast_bytes(), 0u);
  uint64_t per_copy = ctx->metrics().broadcast_bytes() / 3;
  EXPECT_GT(per_copy, 10u * 16);
}

TEST(EstimateRowBytesTest, GrowsWithStringPayload) {
  size_t small = EstimateRowBytes({Value(int64_t{1})});
  size_t big = EstimateRowBytes({Value(std::string(1000, 'x'))});
  EXPECT_GT(big, small + 900);
}

TEST(MetricsTest, ResetClearsCounters) {
  QueryMetrics m;
  m.AddShuffledRows(5);
  m.AddIndexProbes(2);
  m.AddRowsProduced(9);
  EXPECT_EQ(m.shuffled_rows(), 5u);
  m.Reset();
  EXPECT_EQ(m.shuffled_rows(), 0u);
  EXPECT_EQ(m.index_probes(), 0u);
  EXPECT_EQ(m.rows_produced(), 0u);
  EXPECT_NE(m.ToString().find("shuffled_rows=0"), std::string::npos);
}

}  // namespace
}  // namespace idf
