// Unit tests for hash partitioning and shuffle invariants.
#include "engine/shuffle.h"

#include <gtest/gtest.h>

#include "engine/broadcast.h"

namespace idf {
namespace {

ExecutorContextPtr MakeCtx(int partitions = 4, int threads = 2) {
  EngineConfig cfg;
  cfg.num_partitions = partitions;
  cfg.num_threads = threads;
  return ExecutorContext::Make(cfg).ValueOrDie();
}

TEST(PartitionerTest, StableAndInRange) {
  HashPartitioner p(7);
  for (int64_t i = 0; i < 1000; ++i) {
    int a = p.PartitionOf(Value(i));
    int b = p.PartitionOf(Value(i));
    EXPECT_EQ(a, b);
    EXPECT_GE(a, 0);
    EXPECT_LT(a, 7);
  }
}

TEST(PartitionerTest, MixedWidthKeysRouteIdentically) {
  HashPartitioner p(8);
  EXPECT_EQ(p.PartitionOf(Value(int32_t{42})), p.PartitionOf(Value(int64_t{42})));
  EXPECT_EQ(p.PartitionOf(Value(42.0)), p.PartitionOf(Value(int64_t{42})));
}

TEST(PartitionerTest, SpreadsKeysReasonably) {
  HashPartitioner p(8);
  std::vector<int> counts(8, 0);
  for (int64_t i = 0; i < 8000; ++i) ++counts[static_cast<size_t>(p.PartitionOf(Value(i)))];
  for (int c : counts) {
    EXPECT_GT(c, 500);
    EXPECT_LT(c, 1500);
  }
}

TEST(SplitRoundRobinTest, BalancesAndPreservesRows) {
  RowVec rows;
  for (int64_t i = 0; i < 103; ++i) rows.push_back({Value(i)});
  PartitionedRows parts = SplitRoundRobin(rows, 4);
  ASSERT_EQ(parts.size(), 4u);
  EXPECT_EQ(CountRows(parts), 103u);
  for (const RowVec& p : parts) {
    EXPECT_GE(p.size(), 25u);
    EXPECT_LE(p.size(), 26u);
  }
  RowVec flat = FlattenPartitions(parts);
  SortRows(&flat);
  SortRows(&rows);
  EXPECT_EQ(flat, rows);
}

TEST(ShuffleTest, EveryRowLandsInItsKeyPartition) {
  auto ctx = MakeCtx(5);
  RowVec rows;
  for (int64_t i = 0; i < 500; ++i) rows.push_back({Value(i % 37), Value(i)});
  PartitionedRows input = SplitRoundRobin(rows, 3);
  HashPartitioner partitioner(5);
  PartitionedRows output = ShuffleByKey(*ctx, input, 0, partitioner);
  ASSERT_EQ(output.size(), 5u);
  EXPECT_EQ(CountRows(output), 500u);
  for (size_t p = 0; p < output.size(); ++p) {
    for (const Row& row : output[p]) {
      EXPECT_EQ(partitioner.PartitionOf(row[0]), static_cast<int>(p));
    }
  }
}

TEST(ShuffleTest, SameKeySameOutputPartition) {
  auto ctx = MakeCtx(4);
  RowVec rows;
  for (int64_t i = 0; i < 100; ++i) rows.push_back({Value(int64_t{7}), Value(i)});
  PartitionedRows output =
      ShuffleByKey(*ctx, SplitRoundRobin(rows, 4), 0, HashPartitioner(4));
  int non_empty = 0;
  for (const RowVec& p : output) {
    if (!p.empty()) {
      ++non_empty;
      EXPECT_EQ(p.size(), 100u);
    }
  }
  EXPECT_EQ(non_empty, 1);
}

TEST(ShuffleTest, NullKeysGoToPartitionZero) {
  auto ctx = MakeCtx(4);
  RowVec rows = {{Value::Null(), Value(int64_t{1})},
                 {Value::Null(), Value(int64_t{2})}};
  PartitionedRows output =
      ShuffleByKey(*ctx, SplitRoundRobin(rows, 2), 0, HashPartitioner(4));
  EXPECT_EQ(output[0].size(), 2u);
}

TEST(ShuffleTest, MetricsAccountVolume) {
  auto ctx = MakeCtx(4);
  ctx->metrics().Reset();
  RowVec rows;
  for (int64_t i = 0; i < 50; ++i) rows.push_back({Value(i)});
  ShuffleByKey(*ctx, SplitRoundRobin(rows, 2), 0, HashPartitioner(4));
  EXPECT_EQ(ctx->metrics().shuffled_rows(), 50u);
  EXPECT_GT(ctx->metrics().shuffled_bytes(), 0u);
  EXPECT_GT(ctx->metrics().tasks_run(), 0u);
}

SchemaPtr BinarySchema() {
  return Schema::Make({{"k", TypeId::kInt64, true},
                       {"s", TypeId::kString, true},
                       {"d", TypeId::kFloat64, true}});
}

RowVec BinaryRowsFixture() {
  RowVec rows;
  for (int64_t i = 0; i < 300; ++i) {
    rows.push_back({Value(i % 37), Value("s" + std::to_string(i)),
                    Value(static_cast<double>(i) * 0.5)});
  }
  rows.push_back({Value::Null(), Value("null-key"), Value::Null()});
  rows.push_back({Value(int64_t{5}), Value::Null(), Value(1.25)});
  return rows;
}

TEST(BinaryShuffleTest, MatchesRowShuffleRowForRow) {
  auto ctx = MakeCtx(5, 3);
  SchemaPtr schema = BinarySchema();
  PartitionedRows input = SplitRoundRobin(BinaryRowsFixture(), 3);
  HashPartitioner partitioner(5);
  PartitionedRows expected = ShuffleByKey(*ctx, input, 0, partitioner);
  BinaryPartitions actual =
      ShuffleByKeyBinary(*ctx, input, *schema, 0, partitioner).ValueOrDie();
  ASSERT_EQ(actual.size(), expected.size());
  for (size_t p = 0; p < expected.size(); ++p) {
    ASSERT_EQ(actual[p].num_rows(), expected[p].size()) << "partition " << p;
    for (size_t i = 0; i < expected[p].size(); ++i) {
      EXPECT_EQ(actual[p].Decode(i, *schema), expected[p][i])
          << "partition " << p << " row " << i;
    }
  }
}

TEST(BinaryShuffleTest, NullKeysGoToPartitionZero) {
  auto ctx = MakeCtx(4);
  SchemaPtr schema = BinarySchema();
  RowVec rows = {{Value::Null(), Value("a"), Value(1.0)},
                 {Value::Null(), Value("b"), Value::Null()}};
  BinaryPartitions out =
      ShuffleByKeyBinary(*ctx, SplitRoundRobin(rows, 2), *schema, 0,
                         HashPartitioner(4))
          .ValueOrDie();
  EXPECT_EQ(out[0].num_rows(), 2u);
  EXPECT_EQ(out[1].num_rows() + out[2].num_rows() + out[3].num_rows(), 0u);
}

TEST(BinaryShuffleTest, LazyColumnDecodeSeesShuffledValues) {
  auto ctx = MakeCtx(3);
  SchemaPtr schema = BinarySchema();
  PartitionedRows input = SplitRoundRobin(BinaryRowsFixture(), 2);
  HashPartitioner partitioner(3);
  BinaryPartitions out =
      ShuffleByKeyBinary(*ctx, input, *schema, 0, partitioner).ValueOrDie();
  size_t total = 0;
  for (size_t p = 0; p < out.size(); ++p) {
    for (size_t i = 0; i < out[p].num_rows(); ++i) {
      Value k = DecodeColumn(out[p].payload(i), *schema, 0);
      if (!k.is_null()) {
        EXPECT_EQ(partitioner.PartitionOf(k), static_cast<int>(p));
      }
      EXPECT_GT(out[p].payload_size(i), 0u);
      ++total;
    }
  }
  EXPECT_EQ(total, 302u);
}

TEST(BinaryShuffleTest, MetricsAccountEncodedVolume) {
  auto ctx = MakeCtx(4);
  ctx->metrics().Reset();
  SchemaPtr schema = BinarySchema();
  ShuffleByKeyBinary(*ctx, SplitRoundRobin(BinaryRowsFixture(), 2), *schema, 0,
                     HashPartitioner(4))
      .ValueOrDie();
  EXPECT_EQ(ctx->metrics().shuffled_rows(), 302u);
  EXPECT_GT(ctx->metrics().shuffle_encoded_bytes(), 0u);
  EXPECT_GT(ctx->metrics().shuffled_bytes(), 0u);
}

TEST(BinaryRowsTest, AppendBuffersConcatenates) {
  SchemaPtr schema = Schema::Make({{"k", TypeId::kInt64, false}});
  std::vector<uint8_t> scratch;
  BinaryRows a;
  BinaryRows b;
  ASSERT_TRUE(a.AppendRow(*schema, {Value(int64_t{1})}, &scratch).ok());
  ASSERT_TRUE(b.AppendRow(*schema, {Value(int64_t{2})}, &scratch).ok());
  ASSERT_TRUE(b.AppendRow(*schema, {Value(int64_t{3})}, &scratch).ok());
  a.Append(b);
  ASSERT_EQ(a.num_rows(), 3u);
  EXPECT_EQ(a.Decode(0, *schema)[0], Value(int64_t{1}));
  EXPECT_EQ(a.Decode(1, *schema)[0], Value(int64_t{2}));
  EXPECT_EQ(a.Decode(2, *schema)[0], Value(int64_t{3}));
  EXPECT_EQ(a.byte_size(), 3 * (4 + a.payload_size(0)));
}

TEST(BroadcastTest, SharesRowsAndAccountsBytes) {
  auto ctx = MakeCtx(4, 3);
  ctx->metrics().Reset();
  RowVec rows;
  for (int64_t i = 0; i < 10; ++i) rows.push_back({Value(i), Value("payload")});
  BroadcastRows bc = MakeBroadcast(*ctx, std::move(rows));
  EXPECT_EQ(bc.rows->size(), 10u);
  // Simulated cluster transmission: bytes x executors.
  EXPECT_GT(ctx->metrics().broadcast_bytes(), 0u);
  uint64_t per_copy = ctx->metrics().broadcast_bytes() / 3;
  EXPECT_GT(per_copy, 10u * 16);
}

TEST(EstimateRowBytesTest, GrowsWithStringPayload) {
  size_t small = EstimateRowBytes({Value(int64_t{1})});
  size_t big = EstimateRowBytes({Value(std::string(1000, 'x'))});
  EXPECT_GT(big, small + 900);
}

TEST(MetricsTest, ResetClearsCounters) {
  QueryMetrics m;
  m.AddShuffledRows(5);
  m.AddIndexProbes(2);
  m.AddRowsProduced(9);
  m.AddMorsels(3);
  m.AddShuffleEncodedBytes(77);
  m.AddDecodesAvoided(4);
  EXPECT_EQ(m.shuffled_rows(), 5u);
  EXPECT_EQ(m.morsels_dispatched(), 3u);
  EXPECT_EQ(m.shuffle_encoded_bytes(), 77u);
  EXPECT_EQ(m.decodes_avoided(), 4u);
  m.Reset();
  EXPECT_EQ(m.shuffled_rows(), 0u);
  EXPECT_EQ(m.index_probes(), 0u);
  EXPECT_EQ(m.rows_produced(), 0u);
  EXPECT_EQ(m.morsels_dispatched(), 0u);
  EXPECT_EQ(m.shuffle_encoded_bytes(), 0u);
  EXPECT_EQ(m.decodes_avoided(), 0u);
  EXPECT_NE(m.ToString().find("shuffled_rows=0"), std::string::npos);
  EXPECT_NE(m.ToString().find("morsels=0"), std::string::npos);
}

}  // namespace
}  // namespace idf
