// API tests for IndexedDataFrame: the paper's Listing 1 surface, the
// optimizer integration (indexed rewrites and fallback), and update
// visibility semantics.
#include "indexed/indexed_dataframe.h"

#include <gtest/gtest.h>

#include "indexed/indexed_rules.h"

namespace idf {
namespace {

class IndexedDataFrameTest : public ::testing::Test {
 protected:
  void SetUp() override {
    EngineConfig cfg;
    cfg.num_partitions = 4;
    cfg.num_threads = 2;
    cfg.row_batch_bytes = 64 * 1024;
    session_ = Session::Make(cfg).ValueOrDie();
    schema_ = Schema::Make({{"k", TypeId::kInt64, false},
                            {"payload", TypeId::kString, true},
                            {"w", TypeId::kInt64, true}});
    RowVec rows;
    for (int64_t i = 0; i < 500; ++i) {
      rows.push_back({Value(i % 50), Value("p" + std::to_string(i)), Value(i)});
    }
    df_ = session_->CreateDataFrame(schema_, rows, "base").ValueOrDie();
    idf_ = std::make_shared<IndexedDataFrame>(
        IndexedDataFrame::CreateIndex(df_, 0, "base_by_k").ValueOrDie().Cache());
  }

  SessionPtr session_;
  SchemaPtr schema_;
  DataFrame df_;
  std::shared_ptr<IndexedDataFrame> idf_;
};

TEST_F(IndexedDataFrameTest, CreateIndexByNameAndOrdinalAgree) {
  auto by_name =
      IndexedDataFrame::CreateIndex(df_, "k", "x").ValueOrDie();
  EXPECT_EQ(by_name.relation()->indexed_column(), 0);
  EXPECT_EQ(by_name.NumRows(), 500u);
}

TEST_F(IndexedDataFrameTest, CreateIndexRejectsBadColumn) {
  EXPECT_TRUE(
      IndexedDataFrame::CreateIndex(df_, 9, "x").status().IsIndexError());
  EXPECT_TRUE(
      IndexedDataFrame::CreateIndex(df_, "none", "x").status().IsKeyError());
}

TEST_F(IndexedDataFrameTest, CacheMarksHandle) {
  EXPECT_TRUE(idf_->cached());
  auto uncached = IndexedDataFrame::CreateIndex(df_, 0).ValueOrDie();
  EXPECT_FALSE(uncached.cached());
  EXPECT_TRUE(uncached.Cache().cached());
}

TEST_F(IndexedDataFrameTest, GetRowsReturnsAllRowsForKey) {
  RowVec rows = idf_->GetRows(Value(int64_t{7})).Collect().ValueOrDie();
  ASSERT_EQ(rows.size(), 10u);
  for (const Row& row : rows) EXPECT_EQ(row[0], Value(int64_t{7}));
}

TEST_F(IndexedDataFrameTest, GetRowsMissingKeyIsEmptyDataFrame) {
  EXPECT_EQ(idf_->GetRows(Value(int64_t{777})).Count().ValueOrDie(), 0u);
}

TEST_F(IndexedDataFrameTest, GetRowsComposesWithDataFrameOps) {
  // The lookup result is a regular DataFrame: filter and project it.
  auto result = idf_->GetRows(Value(int64_t{7}))
                    .Filter(Gt(Col("w"), Lit(Value(int64_t{100}))))
                    .ValueOrDie()
                    .Select({"payload"})
                    .ValueOrDie()
                    .Collect()
                    .ValueOrDie();
  for (const Row& row : result) {
    ASSERT_EQ(row.size(), 1u);
    EXPECT_TRUE(row[0].is_string());
  }
}

TEST_F(IndexedDataFrameTest, EqualityFilterIsRewrittenToIndexLookup) {
  auto filtered = idf_->ToDataFrame()
                      .Filter(Eq(Col("k"), Lit(Value(int64_t{3}))))
                      .ValueOrDie();
  std::string plan = filtered.Explain().ValueOrDie();
  EXPECT_NE(plan.find("IndexedLookup"), std::string::npos);
  EXPECT_NE(plan.find("IndexLookup"), std::string::npos);  // physical
  EXPECT_EQ(filtered.Count().ValueOrDie(), 10u);
}

TEST_F(IndexedDataFrameTest, ConjunctiveFilterKeepsResidual) {
  auto filtered = idf_->ToDataFrame()
                      .Filter(And(Eq(Col("k"), Lit(Value(int64_t{3}))),
                                  Gt(Col("w"), Lit(Value(int64_t{200})))))
                      .ValueOrDie();
  std::string plan = filtered.Explain().ValueOrDie();
  EXPECT_NE(plan.find("IndexedLookup"), std::string::npos);
  EXPECT_NE(plan.find("Filter"), std::string::npos);
  RowVec rows = filtered.Collect().ValueOrDie();
  for (const Row& row : rows) {
    EXPECT_EQ(row[0], Value(int64_t{3}));
    EXPECT_GT(row[2].AsInt64(), 200);
  }
  // Equivalent vanilla result.
  size_t expected = df_.Filter(And(Eq(Col("k"), Lit(Value(int64_t{3}))),
                                   Gt(Col("w"), Lit(Value(int64_t{200})))))
                        .ValueOrDie()
                        .Count()
                        .ValueOrDie();
  EXPECT_EQ(rows.size(), expected);
}

TEST_F(IndexedDataFrameTest, NonIndexedFilterFallsBackToScan) {
  auto filtered = idf_->ToDataFrame()
                      .Filter(Eq(Col("w"), Lit(Value(int64_t{10}))))
                      .ValueOrDie();
  std::string plan = filtered.Explain().ValueOrDie();
  EXPECT_EQ(plan.find("IndexedLookup"), std::string::npos);
  EXPECT_NE(plan.find("IndexedScan"), std::string::npos);  // full scan
  EXPECT_EQ(filtered.Count().ValueOrDie(), 1u);
}

TEST_F(IndexedDataFrameTest, InListOnIndexedColumnBecomesMultiKeyLookup) {
  // The desugared form of `k IN (3, 5, 777)` — an OR of equalities — is
  // rewritten to one multi-key index lookup.
  auto filtered =
      idf_->ToDataFrame()
          .Filter(Or(Or(Eq(Col("k"), Lit(Value(int64_t{3}))),
                        Eq(Col("k"), Lit(Value(int64_t{5})))),
                     Eq(Col("k"), Lit(Value(int64_t{777})))))  // miss
          .ValueOrDie();
  std::string plan = filtered.Explain().ValueOrDie();
  EXPECT_NE(plan.find("IndexedLookup"), std::string::npos) << plan;
  EXPECT_EQ(filtered.Count().ValueOrDie(), 20u);  // 10 each for 3 and 5
}

TEST_F(IndexedDataFrameTest, MixedOrDoesNotBecomeLookup) {
  // OR across different columns cannot use the index.
  auto filtered = idf_->ToDataFrame()
                      .Filter(Or(Eq(Col("k"), Lit(Value(int64_t{3}))),
                                 Eq(Col("w"), Lit(Value(int64_t{7})))))
                      .ValueOrDie();
  std::string plan = filtered.Explain().ValueOrDie();
  EXPECT_EQ(plan.find("IndexedLookup"), std::string::npos);
  EXPECT_EQ(filtered.Count().ValueOrDie(), 11u);
}

TEST_F(IndexedDataFrameTest, GetRowsMultiApi) {
  RowVec rows = idf_->GetRowsMulti({Value(int64_t{1}), Value(int64_t{2})})
                    .Collect()
                    .ValueOrDie();
  EXPECT_EQ(rows.size(), 20u);
  session_->metrics().Reset();
  idf_->GetRowsMulti({Value(int64_t{1}), Value(int64_t{2}), Value(int64_t{999})})
      .Collect()
      .ValueOrDie();
  EXPECT_EQ(session_->metrics().index_probes(), 3u);
  EXPECT_EQ(session_->metrics().index_hits(), 2u);
}

TEST_F(IndexedDataFrameTest, NonIndexedComparisonFusesIntoScanFilter) {
  // A single-column comparison that cannot use the index is executed as a
  // fused lazy-decoding scan-filter, not Filter-over-IndexedScan.
  auto filtered = idf_->ToDataFrame()
                      .Filter(Ge(Col("w"), Lit(Value(int64_t{400}))))
                      .ValueOrDie();
  std::string plan = filtered.Explain().ValueOrDie();
  EXPECT_NE(plan.find("IndexedScanFilter"), std::string::npos);
  EXPECT_EQ(filtered.Count().ValueOrDie(), 100u);  // w in [400, 500)
  // Results identical to the vanilla computation.
  RowVec vanilla = df_.Filter(Ge(Col("w"), Lit(Value(int64_t{400}))))
                       .ValueOrDie()
                       .Collect()
                       .ValueOrDie();
  RowVec fused = filtered.Collect().ValueOrDie();
  SortRows(&vanilla);
  SortRows(&fused);
  EXPECT_EQ(vanilla, fused);
}

TEST_F(IndexedDataFrameTest, DisjunctionCompilesAndFuses) {
  // An OR of comparisons on a non-indexed column compiles to an
  // encoded-row program and fuses into the lazy-decoding scan-filter.
  auto filtered = idf_->ToDataFrame()
                      .Filter(Or(Eq(Col("w"), Lit(Value(int64_t{1}))),
                                 Eq(Col("w"), Lit(Value(int64_t{2})))))
                      .ValueOrDie();
  std::string plan = filtered.Explain().ValueOrDie();
  EXPECT_NE(plan.find("IndexedScanFilter"), std::string::npos);
  EXPECT_NE(plan.find("(compiled)"), std::string::npos);
  EXPECT_EQ(filtered.Count().ValueOrDie(), 2u);
}

TEST_F(IndexedDataFrameTest, NonCompilablePredicateDoesNotFuse) {
  // LIKE has no encoded-row program; with nothing compilable the planner
  // falls back to the generic Filter over the scan — transparently, with
  // identical results.
  auto filtered = idf_->ToDataFrame()
                      .Filter(Like(Col("payload"), "p1%"))
                      .ValueOrDie();
  std::string plan = filtered.Explain().ValueOrDie();
  EXPECT_EQ(plan.find("IndexedScanFilter"), std::string::npos);
  // payload is "p" + i for i in [0, 500): "p1", "p10".."p19", "p100".."p199".
  EXPECT_EQ(filtered.Count().ValueOrDie(), 111u);
}

TEST_F(IndexedDataFrameTest, RangeFilterFallsBack) {
  auto filtered = idf_->ToDataFrame()
                      .Filter(Lt(Col("k"), Lit(Value(int64_t{5}))))
                      .ValueOrDie();
  std::string plan = filtered.Explain().ValueOrDie();
  EXPECT_EQ(plan.find("IndexedLookup"), std::string::npos);
  EXPECT_EQ(filtered.Count().ValueOrDie(), 50u);
}

TEST_F(IndexedDataFrameTest, JoinUsesIndexAsBuildSide) {
  auto probe_schema = Schema::Make({{"fk", TypeId::kInt64, false},
                                    {"tag", TypeId::kString, true}});
  RowVec probe_rows;
  for (int64_t i = 0; i < 5; ++i) {
    probe_rows.push_back({Value(i), Value("t" + std::to_string(i))});
  }
  auto probe =
      session_->CreateDataFrame(probe_schema, probe_rows, "probe").ValueOrDie();
  auto joined = idf_->Join(probe, "k", "fk").ValueOrDie();
  std::string plan = joined.Explain().ValueOrDie();
  EXPECT_NE(plan.find("IndexedJoin"), std::string::npos);
  EXPECT_NE(plan.find("IndexedEquiJoin"), std::string::npos);
  RowVec rows = joined.Collect().ValueOrDie();
  EXPECT_EQ(rows.size(), 50u);  // 5 keys x 10 rows each
  for (const Row& row : rows) {
    ASSERT_EQ(row.size(), 5u);
    EXPECT_EQ(row[0], row[3]);  // k == fk; indexed columns come first
  }
}

TEST_F(IndexedDataFrameTest, JoinFromRegularSideAlsoUsesIndex) {
  auto probe_schema = Schema::Make({{"fk", TypeId::kInt64, false}});
  RowVec probe_rows = {{Value(int64_t{1})}, {Value(int64_t{2})}};
  auto probe =
      session_->CreateDataFrame(probe_schema, probe_rows, "probe").ValueOrDie();
  // probe JOIN indexed (indexed on the right side of the user's join).
  auto joined = probe.Join(idf_->ToDataFrame(), "fk", "k").ValueOrDie();
  std::string plan = joined.Explain().ValueOrDie();
  EXPECT_NE(plan.find("IndexedJoin"), std::string::npos);
  RowVec rows = joined.Collect().ValueOrDie();
  EXPECT_EQ(rows.size(), 20u);
  for (const Row& row : rows) {
    ASSERT_EQ(row.size(), 4u);
    EXPECT_EQ(row[0], row[1]);  // probe columns first (original order)
  }
}

TEST_F(IndexedDataFrameTest, JoinOnNonIndexedKeyFallsBack) {
  auto probe_schema = Schema::Make({{"fk", TypeId::kInt64, false}});
  RowVec probe_rows = {{Value(int64_t{10})}};
  auto probe =
      session_->CreateDataFrame(probe_schema, probe_rows, "probe").ValueOrDie();
  auto joined = idf_->Join(probe, "w", "fk").ValueOrDie();
  std::string plan = joined.Explain().ValueOrDie();
  EXPECT_EQ(plan.find("IndexedJoin"), std::string::npos);
  EXPECT_EQ(joined.Count().ValueOrDie(), 1u);  // w==10 once
}

TEST_F(IndexedDataFrameTest, AppendRowsVisibleToSubsequentQueries) {
  RowVec extra;
  for (int i = 0; i < 7; ++i) {
    extra.push_back({Value(int64_t{3}), Value("new"), Value(int64_t{1000 + i})});
  }
  auto extra_df = session_->CreateDataFrame(schema_, extra, "extra").ValueOrDie();
  auto idf2 = idf_->AppendRows(extra_df).ValueOrDie();
  EXPECT_EQ(idf2.GetRows(Value(int64_t{3})).Count().ValueOrDie(), 17u);
  // Handles share the multi-versioned relation (paper: the cached frame
  // remains valid under appends).
  EXPECT_EQ(idf_->GetRows(Value(int64_t{3})).Count().ValueOrDie(), 17u);
  EXPECT_EQ(idf2.NumRows(), 507u);
}

TEST_F(IndexedDataFrameTest, AppendRowsSchemaMismatchRejected) {
  auto other_schema = Schema::Make({{"x", TypeId::kInt64, false}});
  auto other =
      session_->CreateDataFrame(other_schema, {{Value(int64_t{1})}}, "o")
          .ValueOrDie();
  EXPECT_TRUE(idf_->AppendRows(other).status().IsInvalidArgument());
}

TEST_F(IndexedDataFrameTest, ToDataFrameScanSeesEverything) {
  EXPECT_EQ(idf_->ToDataFrame().Count().ValueOrDie(), 500u);
  RowVec a = idf_->ToDataFrame().Collect().ValueOrDie();
  RowVec b = df_.Collect().ValueOrDie();
  SortRows(&a);
  SortRows(&b);
  EXPECT_EQ(a, b);
}

TEST_F(IndexedDataFrameTest, AggregationOverIndexedScan) {
  auto agg = idf_->ToDataFrame()
                 .GroupByAgg({"k"}, {CountStar("cnt")})
                 .ValueOrDie();
  RowVec rows = agg.Collect().ValueOrDie();
  EXPECT_EQ(rows.size(), 50u);
  for (const Row& row : rows) EXPECT_EQ(row[1], Value(int64_t{10}));
}

TEST_F(IndexedDataFrameTest, IndexOverheadRatioReported) {
  double ratio = idf_->IndexOverheadRatio();
  EXPECT_GT(ratio, 0.0);
  EXPECT_LT(ratio, 10.0);
}

TEST_F(IndexedDataFrameTest, ProjectionOverIndexedScanFusesColumnPruning) {
  auto projected = idf_->ToDataFrame().Select({"payload", "k"}).ValueOrDie();
  std::string plan = projected.Explain().ValueOrDie();
  EXPECT_NE(plan.find("IndexedScanProject"), std::string::npos) << plan;
  RowVec rows = projected.Collect().ValueOrDie();
  ASSERT_EQ(rows.size(), 500u);
  ASSERT_EQ(rows[0].size(), 2u);
  EXPECT_TRUE(rows[0][0].is_string());
  EXPECT_TRUE(rows[0][1].is_int64());
  // Same rows as the vanilla projection.
  RowVec expected = df_.Select({"payload", "k"}).ValueOrDie().Collect()
                        .ValueOrDie();
  SortRows(&rows);
  SortRows(&expected);
  EXPECT_EQ(rows, expected);
}

TEST_F(IndexedDataFrameTest, FilterProjectOverIndexedScanFusesBoth) {
  auto q = idf_->ToDataFrame()
               .Filter(Gt(Col("w"), Lit(Value(int64_t{450}))))
               .ValueOrDie()
               .Select({"payload"})
               .ValueOrDie();
  std::string plan = q.Explain().ValueOrDie();
  EXPECT_NE(plan.find("IndexedScanFilter"), std::string::npos) << plan;
  EXPECT_NE(plan.find("pruned"), std::string::npos) << plan;
  RowVec rows = q.Collect().ValueOrDie();
  EXPECT_EQ(rows.size(), 49u);  // w in (450, 500)
  for (const Row& row : rows) {
    ASSERT_EQ(row.size(), 1u);
    EXPECT_TRUE(row[0].is_string());
  }
}

TEST_F(IndexedDataFrameTest, ComputedProjectionDoesNotFuse) {
  auto q = idf_->ToDataFrame()
               .SelectExprs({Add(Col("w"), Lit(Value(int64_t{1})))}, {"w1"})
               .ValueOrDie();
  std::string plan = q.Explain().ValueOrDie();
  EXPECT_EQ(plan.find("IndexedScanProject"), std::string::npos);
  EXPECT_EQ(q.Count().ValueOrDie(), 500u);
}

TEST_F(IndexedDataFrameTest, PinnedViewFreezesAVersion) {
  auto pinned = idf_->Pin();
  uint64_t v0 = pinned.version();
  size_t rows_before = pinned.NumRows();
  EXPECT_EQ(rows_before, 500u);

  // Grow the live relation.
  RowVec extra;
  for (int i = 0; i < 50; ++i) {
    extra.push_back({Value(int64_t{3}), Value("late"), Value(int64_t{5000 + i})});
  }
  ASSERT_TRUE(idf_->AppendRowsDirect(extra).ok());

  // The pin is frozen; the live handle sees the appends.
  EXPECT_EQ(pinned.NumRows(), rows_before);
  EXPECT_EQ(pinned.GetRows(Value(int64_t{3})).size(), 10u);
  EXPECT_EQ(idf_->GetRows(Value(int64_t{3})).Count().ValueOrDie(), 60u);
  EXPECT_GT(idf_->relation()->version(), v0);

  // The frozen scan is a composable DataFrame.
  auto df = pinned.ToDataFrame();
  EXPECT_EQ(df.Count().ValueOrDie(), rows_before);
  auto filtered =
      df.Filter(Eq(Col("payload"), Lit(Value("late")))).ValueOrDie();
  EXPECT_EQ(filtered.Count().ValueOrDie(), 0u);  // "late" rows are post-pin
  std::string plan = df.Explain().ValueOrDie();
  EXPECT_NE(plan.find("SnapshotScan"), std::string::npos);
}

TEST_F(IndexedDataFrameTest, SuccessivePinsSeeSuccessiveVersions) {
  auto p0 = idf_->Pin();
  ASSERT_TRUE(idf_->AppendRowsDirect(
                      {{Value(int64_t{1}), Value("x"), Value(int64_t{1})}})
                  .ok());
  auto p1 = idf_->Pin();
  ASSERT_TRUE(idf_->AppendRowsDirect(
                      {{Value(int64_t{1}), Value("y"), Value(int64_t{2})}})
                  .ok());
  auto p2 = idf_->Pin();
  EXPECT_EQ(p0.NumRows(), 500u);
  EXPECT_EQ(p1.NumRows(), 501u);
  EXPECT_EQ(p2.NumRows(), 502u);
  EXPECT_LT(p0.version(), p1.version());
  EXPECT_LT(p1.version(), p2.version());
  // Pinned views can be joined against live data.
  auto joined = p1.ToDataFrame()
                    .Join(idf_->ToDataFrame(), "k", "k")
                    .ValueOrDie();
  EXPECT_GT(joined.Count().ValueOrDie(), 0u);
}

TEST_F(IndexedDataFrameTest, MetricsShowIndexProbes) {
  session_->metrics().Reset();
  idf_->GetRows(Value(int64_t{1})).Collect().ValueOrDie();
  EXPECT_GE(session_->metrics().index_probes(), 1u);
  EXPECT_GE(session_->metrics().index_hits(), 1u);
}

TEST_F(IndexedDataFrameTest, IndexedJoinShufflesOnlyProbeSide) {
  // Large probe forces the shuffled path; the build side must move nothing.
  RowVec probe_rows;
  auto probe_schema = Schema::Make({{"fk", TypeId::kInt64, false},
                                    {"pad", TypeId::kString, true}});
  for (int64_t i = 0; i < 2000; ++i) {
    probe_rows.push_back({Value(i % 50), Value(std::string(5000, 'x'))});
  }
  auto probe =
      session_->CreateDataFrame(probe_schema, probe_rows, "bigprobe").ValueOrDie();
  auto joined = idf_->Join(probe, "k", "fk").ValueOrDie();
  std::string plan = joined.Explain().ValueOrDie();
  EXPECT_NE(plan.find("shuffled probe"), std::string::npos);
  session_->metrics().Reset();
  EXPECT_EQ(joined.Count().ValueOrDie(), 2000u * 10);
  // Shuffled rows ~ probe size (plus nothing for the build side).
  EXPECT_GE(session_->metrics().shuffled_rows(), 2000u);
  EXPECT_LT(session_->metrics().shuffled_rows(), 2000u + 500u);
}

}  // namespace
}  // namespace idf
