// Unit tests for Status and Result<T>.
#include "common/result.h"
#include "common/status.h"

#include <gtest/gtest.h>

namespace idf {
namespace {

TEST(StatusTest, DefaultIsOk) {
  Status st;
  EXPECT_TRUE(st.ok());
  EXPECT_EQ(st.code(), StatusCode::kOk);
  EXPECT_EQ(st.message(), "");
  EXPECT_EQ(st.ToString(), "OK");
}

TEST(StatusTest, OkFactory) { EXPECT_TRUE(Status::OK().ok()); }

TEST(StatusTest, ErrorCarriesCodeAndMessage) {
  Status st = Status::InvalidArgument("bad input");
  EXPECT_FALSE(st.ok());
  EXPECT_EQ(st.code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(st.message(), "bad input");
  EXPECT_EQ(st.ToString(), "InvalidArgument: bad input");
}

TEST(StatusTest, AllFactoriesProduceMatchingCodes) {
  EXPECT_EQ(Status::KeyError("x").code(), StatusCode::kKeyError);
  EXPECT_EQ(Status::TypeError("x").code(), StatusCode::kTypeError);
  EXPECT_EQ(Status::IndexError("x").code(), StatusCode::kIndexError);
  EXPECT_EQ(Status::OutOfMemory("x").code(), StatusCode::kOutOfMemory);
  EXPECT_EQ(Status::NotImplemented("x").code(), StatusCode::kNotImplemented);
  EXPECT_EQ(Status::Internal("x").code(), StatusCode::kInternal);
  EXPECT_EQ(Status::CapacityError("x").code(), StatusCode::kCapacityError);
  EXPECT_EQ(Status::Cancelled("x").code(), StatusCode::kCancelled);
}

TEST(StatusTest, Predicates) {
  EXPECT_TRUE(Status::KeyError("x").IsKeyError());
  EXPECT_TRUE(Status::TypeError("x").IsTypeError());
  EXPECT_TRUE(Status::NotImplemented("x").IsNotImplemented());
  EXPECT_TRUE(Status::Internal("x").IsInternal());
  EXPECT_FALSE(Status::OK().IsKeyError());
}

TEST(StatusTest, CopyPreservesState) {
  Status st = Status::KeyError("missing");
  Status copy = st;
  EXPECT_EQ(copy.code(), StatusCode::kKeyError);
  EXPECT_EQ(copy.message(), "missing");
  EXPECT_EQ(st.message(), "missing");
}

TEST(StatusTest, MoveTransfersState) {
  Status st = Status::KeyError("missing");
  Status moved = std::move(st);
  EXPECT_EQ(moved.code(), StatusCode::kKeyError);
}

TEST(StatusTest, AssignOverwrites) {
  Status st = Status::KeyError("a");
  st = Status::OK();
  EXPECT_TRUE(st.ok());
  st = Status::Internal("b");
  EXPECT_EQ(st.message(), "b");
}

TEST(StatusTest, CodeToString) {
  EXPECT_EQ(StatusCodeToString(StatusCode::kOk), "OK");
  EXPECT_EQ(StatusCodeToString(StatusCode::kCapacityError), "CapacityError");
}

TEST(ResultTest, HoldsValue) {
  Result<int> r = 42;
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.ValueOrDie(), 42);
  EXPECT_EQ(*r, 42);
  EXPECT_TRUE(r.status().ok());
}

TEST(ResultTest, HoldsError) {
  Result<int> r = Status::KeyError("nope");
  EXPECT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kKeyError);
}

TEST(ResultTest, ValueOrReturnsAlternative) {
  Result<int> err = Status::Internal("x");
  EXPECT_EQ(err.ValueOr(7), 7);
  Result<int> val = 3;
  EXPECT_EQ(val.ValueOr(7), 3);
}

TEST(ResultTest, MoveOutValue) {
  Result<std::string> r = std::string("hello");
  std::string s = std::move(r).ValueUnsafe();
  EXPECT_EQ(s, "hello");
}

TEST(ResultTest, WorksWithMoveOnlyTypes) {
  Result<std::unique_ptr<int>> r = std::make_unique<int>(5);
  ASSERT_TRUE(r.ok());
  std::unique_ptr<int> p = std::move(r).ValueUnsafe();
  EXPECT_EQ(*p, 5);
}

Status FailingFn() { return Status::TypeError("inner"); }

Status Propagates() {
  IDF_RETURN_NOT_OK(FailingFn());
  return Status::OK();
}

TEST(ResultTest, ReturnNotOkMacroPropagates) {
  Status st = Propagates();
  EXPECT_TRUE(st.IsTypeError());
}

Result<int> Half(int x) {
  if (x % 2 != 0) return Status::InvalidArgument("odd");
  return x / 2;
}

Result<int> Quarter(int x) {
  IDF_ASSIGN_OR_RETURN(int h, Half(x));
  IDF_ASSIGN_OR_RETURN(int q, Half(h));
  return q;
}

TEST(ResultTest, AssignOrReturnMacroChains) {
  EXPECT_EQ(Quarter(8).ValueOrDie(), 2);
  EXPECT_TRUE(Quarter(6).status().IsInvalidArgument());
  EXPECT_TRUE(Quarter(7).status().IsInvalidArgument());
}

}  // namespace
}  // namespace idf
