// Unit tests for Schema and Row helpers.
#include "types/row.h"
#include "types/schema.h"

#include <gtest/gtest.h>

namespace idf {
namespace {

SchemaPtr TestSchema() {
  return Schema::Make({
      {"id", TypeId::kInt64, false},
      {"name", TypeId::kString, true},
      {"score", TypeId::kFloat64, true},
  });
}

TEST(SchemaTest, FieldAccess) {
  SchemaPtr s = TestSchema();
  EXPECT_EQ(s->num_fields(), 3);
  EXPECT_EQ(s->field(0).name, "id");
  EXPECT_EQ(s->field(1).type, TypeId::kString);
  EXPECT_FALSE(s->field(0).nullable);
}

TEST(SchemaTest, FieldIndexByName) {
  SchemaPtr s = TestSchema();
  EXPECT_EQ(s->FieldIndex("id"), 0);
  EXPECT_EQ(s->FieldIndex("score"), 2);
  EXPECT_EQ(s->FieldIndex("missing"), -1);
}

TEST(SchemaTest, ResolveFieldIndexErrors) {
  SchemaPtr s = TestSchema();
  EXPECT_EQ(s->ResolveFieldIndex("name").ValueOrDie(), 1);
  auto r = s->ResolveFieldIndex("nope");
  EXPECT_TRUE(r.status().IsKeyError());
  EXPECT_NE(r.status().message().find("nope"), std::string::npos);
}

TEST(SchemaTest, DuplicateNamesResolveToFirst) {
  auto s = Schema::Make({{"x", TypeId::kInt64, false}, {"x", TypeId::kString, true}});
  EXPECT_EQ(s->FieldIndex("x"), 0);
}

TEST(SchemaTest, Equals) {
  EXPECT_TRUE(TestSchema()->Equals(*TestSchema()));
  auto other = Schema::Make({{"id", TypeId::kInt32, false}});
  EXPECT_FALSE(TestSchema()->Equals(*other));
}

TEST(SchemaTest, ToStringRendersTypesAndNullability) {
  std::string s = TestSchema()->ToString();
  EXPECT_NE(s.find("id:int64"), std::string::npos);
  EXPECT_NE(s.find("name:string?"), std::string::npos);
}

TEST(SchemaTest, Project) {
  auto p = TestSchema()->Project({2, 0});
  EXPECT_EQ(p->num_fields(), 2);
  EXPECT_EQ(p->field(0).name, "score");
  EXPECT_EQ(p->field(1).name, "id");
}

TEST(SchemaTest, Concat) {
  auto c = Schema::Concat(*TestSchema(), *TestSchema());
  EXPECT_EQ(c->num_fields(), 6);
  EXPECT_EQ(c->field(3).name, "id");
}

TEST(RowTest, ValidateRowAcceptsConforming) {
  SchemaPtr s = TestSchema();
  EXPECT_TRUE(ValidateRow(*s, {Value(int64_t{1}), Value("a"), Value(0.5)}).ok());
  EXPECT_TRUE(
      ValidateRow(*s, {Value(int64_t{1}), Value::Null(), Value::Null()}).ok());
}

TEST(RowTest, ValidateRowRejectsArityMismatch) {
  EXPECT_TRUE(ValidateRow(*TestSchema(), {Value(int64_t{1})})
                  .IsInvalidArgument());
}

TEST(RowTest, ValidateRowRejectsNullInNonNullable) {
  EXPECT_TRUE(
      ValidateRow(*TestSchema(), {Value::Null(), Value("a"), Value(0.5)})
          .IsInvalidArgument());
}

TEST(RowTest, ValidateRowRejectsTypeMismatch) {
  EXPECT_TRUE(ValidateRow(*TestSchema(), {Value("s"), Value("a"), Value(0.5)})
                  .IsTypeError());
}

TEST(RowTest, ConcatRows) {
  Row r = ConcatRows({Value(int64_t{1})}, {Value("x"), Value(2.0)});
  ASSERT_EQ(r.size(), 3u);
  EXPECT_EQ(r[0], Value(int64_t{1}));
  EXPECT_EQ(r[2], Value(2.0));
}

TEST(RowTest, RowLessLexicographic) {
  RowLess less;
  EXPECT_TRUE(less({Value(int64_t{1}), Value(int64_t{9})},
                   {Value(int64_t{2}), Value(int64_t{0})}));
  EXPECT_TRUE(less({Value(int64_t{1})}, {Value(int64_t{1}), Value(int64_t{0})}));
  EXPECT_FALSE(less({Value(int64_t{1})}, {Value(int64_t{1})}));
}

TEST(RowTest, HashRowDistinguishesOrder) {
  EXPECT_NE(HashRow({Value(int64_t{1}), Value(int64_t{2})}),
            HashRow({Value(int64_t{2}), Value(int64_t{1})}));
  EXPECT_EQ(HashRow({Value("a")}), HashRow({Value("a")}));
}

TEST(RowTest, SortRowsCanonicalizes) {
  RowVec rows = {{Value(int64_t{3})}, {Value(int64_t{1})}, {Value(int64_t{2})}};
  SortRows(&rows);
  EXPECT_EQ(rows[0][0], Value(int64_t{1}));
  EXPECT_EQ(rows[2][0], Value(int64_t{3}));
}

TEST(RowTest, RowToString) {
  EXPECT_EQ(RowToString({Value(int64_t{1}), Value("a")}), "(1, \"a\")");
}

}  // namespace
}  // namespace idf
