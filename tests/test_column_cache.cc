// Unit tests for the columnar cache (the vanilla baseline's storage).
#include "storage/column_cache.h"

#include <gtest/gtest.h>

namespace idf {
namespace {

SchemaPtr TestSchema() {
  return Schema::Make({
      {"id", TypeId::kInt64, false},
      {"name", TypeId::kString, true},
      {"score", TypeId::kFloat64, true},
      {"flag", TypeId::kBool, true},
      {"small", TypeId::kInt32, true},
  });
}

RowVec TestRows() {
  return {
      {Value(int64_t{1}), Value("a"), Value(0.5), Value(true), Value(int32_t{10})},
      {Value(int64_t{2}), Value::Null(), Value(1.5), Value(false),
       Value(int32_t{20})},
      {Value(int64_t{3}), Value("c"), Value::Null(), Value::Null(), Value::Null()},
  };
}

TEST(ColumnCacheTest, FromRowsRoundTrip) {
  auto cache = ColumnCache::FromRows(TestSchema(), TestRows()).ValueOrDie();
  EXPECT_EQ(cache->num_rows(), 3u);
  RowVec expected = TestRows();
  for (size_t i = 0; i < 3; ++i) {
    EXPECT_EQ(cache->GetRow(i), expected[i]) << i;
  }
}

TEST(ColumnCacheTest, NullsTracked) {
  auto cache = ColumnCache::FromRows(TestSchema(), TestRows()).ValueOrDie();
  EXPECT_FALSE(cache->column(1).IsNull(0));
  EXPECT_TRUE(cache->column(1).IsNull(1));
  EXPECT_TRUE(cache->column(2).IsNull(2));
}

TEST(ColumnCacheTest, TypedVectorsExposeRawData) {
  auto cache = ColumnCache::FromRows(TestSchema(), TestRows()).ValueOrDie();
  EXPECT_EQ(cache->column(0).ints()[1], 2);
  EXPECT_EQ(cache->column(1).strings()[0], "a");
  EXPECT_DOUBLE_EQ(cache->column(2).doubles()[1], 1.5);
  EXPECT_EQ(cache->column(3).ints()[0], 1);  // bool stored as int
  EXPECT_EQ(cache->column(4).ints()[1], 20);  // int32 widened in storage
}

TEST(ColumnCacheTest, GetRowProjected) {
  auto cache = ColumnCache::FromRows(TestSchema(), TestRows()).ValueOrDie();
  Row projected = cache->GetRowProjected(0, {2, 0});
  ASSERT_EQ(projected.size(), 2u);
  EXPECT_EQ(projected[0], Value(0.5));
  EXPECT_EQ(projected[1], Value(int64_t{1}));
}

TEST(ColumnCacheTest, AppendRowValidates) {
  ColumnCache cache(TestSchema());
  EXPECT_TRUE(cache.AppendRow({Value(int64_t{1})}).IsInvalidArgument());
  EXPECT_TRUE(cache
                  .AppendRow({Value::Null(), Value("x"), Value(0.0), Value(true),
                              Value(int32_t{1})})
                  .IsInvalidArgument());  // id non-nullable
  EXPECT_EQ(cache.num_rows(), 0u);
}

TEST(ColumnCacheTest, Int32ValuesKeepTheirTypeOnRead) {
  auto cache = ColumnCache::FromRows(TestSchema(), TestRows()).ValueOrDie();
  Value v = cache->column(4).GetValue(0);
  EXPECT_TRUE(v.is_int32());
  EXPECT_EQ(v, Value(int32_t{10}));
}

TEST(ColumnCacheTest, TimestampReadBackAsInt64) {
  auto schema = Schema::Make({{"ts", TypeId::kTimestamp, true}});
  auto cache =
      ColumnCache::FromRows(schema, {{Value(int64_t{123456789})}}).ValueOrDie();
  EXPECT_EQ(cache->column(0).GetValue(0), Value(int64_t{123456789}));
}

TEST(ColumnCacheTest, MemoryBytesGrowsWithData) {
  ColumnCache cache(TestSchema());
  size_t empty = cache.MemoryBytes();
  for (int i = 0; i < 1000; ++i) {
    ASSERT_TRUE(cache
                    .AppendRow({Value(int64_t{i}), Value("some name"), Value(1.0),
                                Value(true), Value(int32_t{i})})
                    .ok());
  }
  EXPECT_GT(cache.MemoryBytes(), empty + 1000 * 8);
}

TEST(ColumnCacheTest, EmptyCacheBehaves) {
  auto cache = ColumnCache::FromRows(TestSchema(), {}).ValueOrDie();
  EXPECT_EQ(cache->num_rows(), 0u);
}

}  // namespace
}  // namespace idf
