// Unit and property tests for the binary (UnsafeRow-style) row encoding and
// RowBatch.
#include "storage/row_batch.h"

#include <gtest/gtest.h>

#include "common/hash.h"

namespace idf {
namespace {

SchemaPtr MixedSchema() {
  return Schema::Make({
      {"b", TypeId::kBool, true},
      {"i32", TypeId::kInt32, true},
      {"i64", TypeId::kInt64, true},
      {"f", TypeId::kFloat64, true},
      {"s", TypeId::kString, true},
      {"ts", TypeId::kTimestamp, true},
  });
}

Row MixedRow() {
  return {Value(true), Value(int32_t{-42}),   Value(int64_t{1} << 40),
          Value(3.25), Value("hello unsafe"), Value(int64_t{1577836800000000})};
}

TEST(RowEncodingTest, RoundTripAllTypes) {
  SchemaPtr schema = MixedSchema();
  std::vector<uint8_t> buf;
  ASSERT_TRUE(EncodeRow(*schema, MixedRow(), &buf).ok());
  Row decoded = DecodeRow(buf.data(), *schema);
  EXPECT_EQ(decoded, MixedRow());
}

TEST(RowEncodingTest, RoundTripAllNull) {
  SchemaPtr schema = MixedSchema();
  Row nulls(6, Value::Null());
  std::vector<uint8_t> buf;
  ASSERT_TRUE(EncodeRow(*schema, nulls, &buf).ok());
  Row decoded = DecodeRow(buf.data(), *schema);
  for (const Value& v : decoded) EXPECT_TRUE(v.is_null());
}

TEST(RowEncodingTest, RoundTripEmptyString) {
  auto schema = Schema::Make({{"s", TypeId::kString, true}});
  std::vector<uint8_t> buf;
  ASSERT_TRUE(EncodeRow(*schema, {Value("")}, &buf).ok());
  EXPECT_EQ(DecodeRow(buf.data(), *schema)[0], Value(""));
}

TEST(RowEncodingTest, RoundTripMultipleStrings) {
  auto schema = Schema::Make({{"a", TypeId::kString, true},
                              {"b", TypeId::kString, true},
                              {"c", TypeId::kString, true}});
  Row row = {Value("first"), Value::Null(), Value("third-longer-string")};
  std::vector<uint8_t> buf;
  ASSERT_TRUE(EncodeRow(*schema, row, &buf).ok());
  EXPECT_EQ(DecodeRow(buf.data(), *schema), row);
}

TEST(RowEncodingTest, DecodeColumnReadsSingleColumn) {
  SchemaPtr schema = MixedSchema();
  std::vector<uint8_t> buf;
  ASSERT_TRUE(EncodeRow(*schema, MixedRow(), &buf).ok());
  EXPECT_EQ(DecodeColumn(buf.data(), *schema, 2), Value(int64_t{1} << 40));
  EXPECT_EQ(DecodeColumn(buf.data(), *schema, 4), Value("hello unsafe"));
  EXPECT_EQ(DecodeColumn(buf.data(), *schema, 0), Value(true));
}

TEST(RowEncodingTest, EncodeRejectsSchemaMismatch) {
  SchemaPtr schema = MixedSchema();
  std::vector<uint8_t> buf;
  EXPECT_FALSE(EncodeRow(*schema, {Value(int64_t{1})}, &buf).ok());
}

TEST(RowEncodingTest, EncodedRowSizeMatchesBuffer) {
  SchemaPtr schema = MixedSchema();
  std::vector<uint8_t> buf;
  ASSERT_TRUE(EncodeRow(*schema, MixedRow(), &buf).ok());
  EXPECT_EQ(EncodedRowSize(buf.data(), *schema), buf.size());
}

TEST(RowEncodingTest, FixedWidthRowSizeIsBitmapPlusSlots) {
  auto schema = Schema::Make({{"a", TypeId::kInt64, true},
                              {"b", TypeId::kInt64, true}});
  std::vector<uint8_t> buf;
  ASSERT_TRUE(EncodeRow(*schema, {Value(int64_t{1}), Value(int64_t{2})}, &buf).ok());
  EXPECT_EQ(buf.size(), 8u + 16u);  // one bitmap word + two slots
}

TEST(RowEncodingTest, WideSchemaBitmapUsesMultipleWords) {
  std::vector<Field> fields;
  Row row;
  for (int i = 0; i < 70; ++i) {
    fields.push_back({"c" + std::to_string(i), TypeId::kInt64, true});
    row.push_back(i % 3 == 0 ? Value::Null() : Value(int64_t{i}));
  }
  auto schema = Schema::Make(std::move(fields));
  std::vector<uint8_t> buf;
  ASSERT_TRUE(EncodeRow(*schema, row, &buf).ok());
  EXPECT_EQ(buf.size(), 16u + 70u * 8);  // two bitmap words
  EXPECT_EQ(DecodeRow(buf.data(), *schema), row);
}

TEST(RowEncodingPropertyTest, RandomizedRoundTrip) {
  SchemaPtr schema = MixedSchema();
  Random64 rng(7);
  std::vector<uint8_t> buf;
  for (int iter = 0; iter < 2000; ++iter) {
    Row row;
    row.push_back(rng.Uniform(4) == 0 ? Value::Null() : Value(rng.Uniform(2) == 0));
    row.push_back(rng.Uniform(4) == 0
                      ? Value::Null()
                      : Value(static_cast<int32_t>(rng.Next())));
    row.push_back(rng.Uniform(4) == 0
                      ? Value::Null()
                      : Value(static_cast<int64_t>(rng.Next())));
    row.push_back(rng.Uniform(4) == 0 ? Value::Null() : Value(rng.NextDouble()));
    row.push_back(rng.Uniform(4) == 0
                      ? Value::Null()
                      : Value(std::string(rng.Uniform(64), 'a' + static_cast<char>(
                                                               rng.Uniform(26)))));
    row.push_back(rng.Uniform(4) == 0
                      ? Value::Null()
                      : Value(static_cast<int64_t>(rng.Uniform(1u << 30))));
    ASSERT_TRUE(EncodeRow(*schema, row, &buf).ok());
    ASSERT_EQ(DecodeRow(buf.data(), *schema), row) << "iter " << iter;
    ASSERT_EQ(EncodedRowSize(buf.data(), *schema), buf.size());
  }
}

TEST(RowBatchTest, AppendAndReadBack) {
  SchemaPtr schema = MixedSchema();
  RowBatch batch(4096);
  std::vector<uint8_t> buf;
  ASSERT_TRUE(EncodeRow(*schema, MixedRow(), &buf).ok());
  auto off = batch.AppendEncoded(buf.data(), buf.size(), PackedPointer::Null());
  ASSERT_TRUE(off.ok());
  EXPECT_EQ(DecodeRow(batch.payload_at(*off), *schema), MixedRow());
  EXPECT_TRUE(batch.back_pointer_at(*off).is_null());
  EXPECT_EQ(batch.num_rows(), 1u);
}

TEST(RowBatchTest, BackPointerHeaderSurvives) {
  SchemaPtr schema = MixedSchema();
  RowBatch batch(4096);
  std::vector<uint8_t> buf;
  ASSERT_TRUE(EncodeRow(*schema, MixedRow(), &buf).ok());
  PackedPointer bp = PackedPointer::Make(3, 128, 72);
  auto off = batch.AppendEncoded(buf.data(), buf.size(), bp);
  ASSERT_TRUE(off.ok());
  EXPECT_EQ(batch.back_pointer_at(*off), bp);
}

TEST(RowBatchTest, RowsAreEightByteAligned) {
  auto schema = Schema::Make({{"s", TypeId::kString, true}});
  RowBatch batch(4096);
  std::vector<uint8_t> buf;
  for (int i = 0; i < 10; ++i) {
    // Odd-length strings force padding between rows.
    ASSERT_TRUE(EncodeRow(*schema, {Value(std::string(i + 1, 'x'))}, &buf).ok());
    auto off = batch.AppendEncoded(buf.data(), buf.size(), PackedPointer::Null());
    ASSERT_TRUE(off.ok());
    EXPECT_EQ(*off % 8, 0u);
  }
}

TEST(RowBatchTest, CapacityErrorWhenFull) {
  auto schema = Schema::Make({{"i", TypeId::kInt64, true}});
  RowBatch batch(64);
  std::vector<uint8_t> buf;
  ASSERT_TRUE(EncodeRow(*schema, {Value(int64_t{1})}, &buf).ok());
  // 8 header + 16 payload = 24 bytes per row; 64-byte batch fits 2.
  ASSERT_TRUE(batch.AppendEncoded(buf.data(), buf.size(), PackedPointer::Null()).ok());
  ASSERT_TRUE(batch.AppendEncoded(buf.data(), buf.size(), PackedPointer::Null()).ok());
  auto r = batch.AppendEncoded(buf.data(), buf.size(), PackedPointer::Null());
  EXPECT_EQ(r.status().code(), StatusCode::kCapacityError);
  EXPECT_EQ(batch.num_rows(), 2u);
}

TEST(RowBatchTest, CommittedSizeAdvancesMonotonically) {
  auto schema = Schema::Make({{"i", TypeId::kInt64, true}});
  RowBatch batch(4096);
  std::vector<uint8_t> buf;
  ASSERT_TRUE(EncodeRow(*schema, {Value(int64_t{1})}, &buf).ok());
  size_t last = 0;
  for (int i = 0; i < 20; ++i) {
    ASSERT_TRUE(
        batch.AppendEncoded(buf.data(), buf.size(), PackedPointer::Null()).ok());
    EXPECT_GT(batch.committed_size(), last);
    last = batch.committed_size();
  }
}

TEST(RowBatchTest, WalkForwardVisitsAllRows) {
  SchemaPtr schema = MixedSchema();
  RowBatch batch(1 << 16);
  std::vector<uint8_t> buf;
  Random64 rng(3);
  std::vector<Row> rows;
  for (int i = 0; i < 50; ++i) {
    Row row = MixedRow();
    row[4] = Value(std::string(rng.Uniform(40), 'z'));
    rows.push_back(row);
    ASSERT_TRUE(EncodeRow(*schema, row, &buf).ok());
    ASSERT_TRUE(
        batch.AppendEncoded(buf.data(), buf.size(), PackedPointer::Null()).ok());
  }
  uint32_t offset = 0;
  size_t count = 0;
  while (offset < batch.committed_size()) {
    ASSERT_LT(count, rows.size());
    EXPECT_EQ(DecodeRow(batch.payload_at(offset), *schema), rows[count]);
    offset = batch.NextRowOffset(offset, *schema);
    ++count;
  }
  EXPECT_EQ(count, rows.size());
}

}  // namespace
}  // namespace idf
