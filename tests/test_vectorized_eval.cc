// Directed tests for batch-at-a-time vectorized predicate evaluation
// (sql/vectorized_eval.h, DESIGN.md §12) and its operator integration.
// The kernel must reproduce the row-at-a-time EvalEncoded tri-state
// bit-for-bit lane by lane (including NULL, NaN, -0.0, and type-widening
// edges), and the fused operators — scan-filter, scan-aggregate, and the
// join build-side filter — must produce identical rows with
// vectorized_execution on and off while reporting the vector metrics.
// Random-tree coverage lives in test_property_fuzz.cc.
#include "sql/vectorized_eval.h"

#include <cmath>
#include <limits>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "indexed/indexed_dataframe.h"
#include "indexed/indexed_operators.h"
#include "sql/session.h"
#include "storage/row_batch.h"

namespace idf {
namespace {

// ---------------------------------------------------------------------------
// Kernel: EvalBatch / FilterBatch vs EvalEncoded
// ---------------------------------------------------------------------------

class VectorizedEvalTest : public ::testing::Test {
 protected:
  void SetUp() override {
    schema_ = Schema::Make({{"i64", TypeId::kInt64, true},
                            {"i32", TypeId::kInt32, true},
                            {"f64", TypeId::kFloat64, true},
                            {"b", TypeId::kBool, true},
                            {"s", TypeId::kString, true},
                            {"ts", TypeId::kTimestamp, true}});
  }

  std::vector<uint8_t> Encode(const Row& row) {
    std::vector<uint8_t> out;
    EXPECT_TRUE(EncodeRow(*schema_, row, &out).ok());
    return out;
  }

  // Compiles `expr` (must succeed) and checks EvalBatch lane-for-lane and
  // FilterBatch's selection vector against row-at-a-time EvalEncoded.
  void ExpectBatchAgrees(const ExprPtr& expr, const RowVec& rows) {
    ExprPtr bound = BindExpr(expr, *schema_).ValueOrDie();
    std::optional<CompiledPredicate> compiled =
        CompiledPredicate::Compile(bound, *schema_);
    ASSERT_TRUE(compiled.has_value()) << bound->ToString();
    std::vector<std::vector<uint8_t>> bufs;
    bufs.reserve(rows.size());
    for (const Row& row : rows) bufs.push_back(Encode(row));
    std::vector<const uint8_t*> ptrs;
    ptrs.reserve(bufs.size());
    for (const auto& b : bufs) ptrs.push_back(b.data());

    VectorizedPredicate vec(*compiled);
    VectorScratch scratch;
    std::vector<uint8_t> tri(rows.size());
    vec.EvalBatch(ptrs.data(), ptrs.size(), tri.data(), &scratch);
    std::vector<uint32_t> sel(rows.size());
    const size_t kept =
        vec.FilterBatch(ptrs.data(), ptrs.size(), sel.data(), &scratch);
    size_t want_kept = 0;
    for (size_t r = 0; r < rows.size(); ++r) {
      const TriBool want = compiled->EvalEncoded(ptrs[r]);
      ASSERT_EQ(static_cast<int>(tri[r]), static_cast<int>(want))
          << bound->ToString() << " row " << r;
      if (want == TriBool::kTrue) {
        ASSERT_LT(want_kept, kept) << bound->ToString();
        EXPECT_EQ(sel[want_kept], r) << bound->ToString();
        ++want_kept;
      }
    }
    EXPECT_EQ(kept, want_kept) << bound->ToString();
  }

  // Edge-heavy rows: NULL in every column, both zero signs, NaN, int32/64
  // extremes, empty and high-bit strings.
  RowVec SampleRows() {
    const double nan = std::numeric_limits<double>::quiet_NaN();
    return {
        {Value(int64_t{0}), Value(int32_t{0}), Value(0.0), Value(false),
         Value(""), Value(int64_t{0})},
        {Value(int64_t{-3}), Value(int32_t{-3}), Value(-0.0), Value(true),
         Value("a"), Value(int64_t{-3})},
        {Value(int64_t{7}), Value(int32_t{7}), Value(2.5), Value(true),
         Value("ab"), Value(int64_t{7})},
        {Value(std::numeric_limits<int64_t>::min()),
         Value(std::numeric_limits<int32_t>::min()), Value(nan), Value(false),
         Value("\x80z"), Value(std::numeric_limits<int64_t>::max())},
        {Value::Null(), Value::Null(), Value::Null(), Value::Null(),
         Value::Null(), Value::Null()},
        {Value(int64_t{1} << 40), Value(int32_t{1}), Value(1.0), Value(true),
         Value("abc"), Value(int64_t{1})},
        {Value::Null(), Value(int32_t{2}), Value(-1.0), Value::Null(),
         Value("b"), Value::Null()},
    };
  }

  SchemaPtr schema_;
};

TEST_F(VectorizedEvalTest, AllComparisonOpsOnAllTypes) {
  const RowVec rows = SampleRows();
  const char* cols[] = {"i64", "i32", "f64", "b", "s", "ts"};
  const Value lits[] = {Value(int64_t{0}), Value(int32_t{-3}), Value(0.0),
                        Value(true),       Value("ab"),        Value(int64_t{7})};
  for (int c = 0; c < 6; ++c) {
    ExpectBatchAgrees(Eq(Col(cols[c]), Lit(lits[c])), rows);
    ExpectBatchAgrees(Ne(Col(cols[c]), Lit(lits[c])), rows);
    ExpectBatchAgrees(Lt(Col(cols[c]), Lit(lits[c])), rows);
    ExpectBatchAgrees(Le(Col(cols[c]), Lit(lits[c])), rows);
    ExpectBatchAgrees(Gt(Col(cols[c]), Lit(lits[c])), rows);
    ExpectBatchAgrees(Ge(Col(cols[c]), Lit(lits[c])), rows);
  }
}

TEST_F(VectorizedEvalTest, KleeneLaneLogicWithNulls) {
  const RowVec rows = SampleRows();
  ExpectBatchAgrees(IsNull(Col("f64")), rows);
  ExpectBatchAgrees(IsNotNull(Col("s")), rows);
  ExpectBatchAgrees(Col("b"), rows);
  ExpectBatchAgrees(Not(Col("b")), rows);
  ExpectBatchAgrees(Lit(Value::Null()), rows);
  // NULL AND FALSE = FALSE, NULL OR TRUE = TRUE: the lane kernels must
  // implement full Kleene logic, not null-propagation.
  ExpectBatchAgrees(And(Col("b"), Lt(Col("i64"), Lit(Value(int64_t{5})))), rows);
  ExpectBatchAgrees(Or(Col("b"), Ge(Col("f64"), Lit(Value(0.0)))), rows);
  ExpectBatchAgrees(
      Not(And(Or(Col("b"), IsNull(Col("i32"))),
              Ne(Col("s"), Lit(Value("a"))))),
      rows);
}

TEST_F(VectorizedEvalTest, IntColumnVsDoubleLiteralWidens) {
  const RowVec rows = SampleRows();
  ExpectBatchAgrees(Lt(Col("i64"), Lit(Value(0.5))), rows);
  ExpectBatchAgrees(Ge(Col("i32"), Lit(Value(-2.5))), rows);
  ExpectBatchAgrees(Eq(Col("i64"), Lit(Value(0.0))), rows);
}

TEST_F(VectorizedEvalTest, NaNAndNegativeZeroMatchScalar) {
  const RowVec rows = SampleRows();
  const double nan = std::numeric_limits<double>::quiet_NaN();
  ExpectBatchAgrees(Eq(Col("f64"), Lit(Value(nan))), rows);
  ExpectBatchAgrees(Lt(Col("f64"), Lit(Value(nan))), rows);
  ExpectBatchAgrees(Ge(Col("f64"), Lit(Value(nan))), rows);
  // -0.0 == 0.0 under IEEE compare; both signs must land identically.
  ExpectBatchAgrees(Eq(Col("f64"), Lit(Value(-0.0))), rows);
  ExpectBatchAgrees(Le(Col("f64"), Lit(Value(-0.0))), rows);
}

TEST_F(VectorizedEvalTest, CrossesInternalBatchBoundary) {
  RowVec rows;
  const size_t n = 2 * VectorizedPredicate::kBatchRows + 37;
  for (size_t i = 0; i < n; ++i) {
    const int64_t v = static_cast<int64_t>(i % 100);
    rows.push_back({i % 13 == 0 ? Value::Null() : Value(v),
                    Value(static_cast<int32_t>(i % 7)), Value(0.5 * v),
                    Value(i % 2 == 0), Value("s" + std::to_string(i % 5)),
                    Value(static_cast<int64_t>(i))});
  }
  ExpectBatchAgrees(And(Lt(Col("i64"), Lit(Value(int64_t{60}))),
                        Ne(Col("s"), Lit(Value("s3")))),
                    rows);
}

TEST_F(VectorizedEvalTest, SelectionVectorAllAndNone) {
  RowVec rows;
  for (int64_t i = 0; i < 100; ++i) {
    rows.push_back({Value(i), Value(int32_t{1}), Value(1.0), Value(true),
                    Value("x"), Value(i)});
  }
  ExpectBatchAgrees(Ge(Col("i64"), Lit(Value(int64_t{0}))), rows);   // all
  ExpectBatchAgrees(Lt(Col("i64"), Lit(Value(int64_t{0}))), rows);   // none
  ExpectBatchAgrees(Eq(Col("i64"), Lit(Value(int64_t{50}))), rows);  // one
}

TEST_F(VectorizedEvalTest, StackDepthReflectsProgramShape) {
  ExprPtr flat = BindExpr(Lt(Col("i64"), Lit(Value(int64_t{1}))), *schema_)
                     .ValueOrDie();
  VectorizedPredicate vec1(*CompiledPredicate::Compile(flat, *schema_));
  EXPECT_EQ(vec1.stack_depth(), 1u);

  // A right-nested conjunction pushes both operands before combining.
  ExprPtr nested =
      BindExpr(And(Col("b"), And(Col("b"), And(Col("b"), Col("b")))), *schema_)
          .ValueOrDie();
  VectorizedPredicate vec2(*CompiledPredicate::Compile(nested, *schema_));
  EXPECT_GE(vec2.stack_depth(), 2u);
}

// ---------------------------------------------------------------------------
// Operator integration: vectorized on vs off must be row-identical, and
// the fused read paths must report the vector counters.
// ---------------------------------------------------------------------------

class VectorizedOperatorTest : public ::testing::Test {
 protected:
  static SessionPtr MakeSession(bool vectorized,
                                size_t binary_shuffle_min_rows = 0) {
    EngineConfig cfg;
    cfg.num_partitions = 4;  // identical everywhere: same flatten order
    cfg.num_threads = 2;
    cfg.morsel_rows = 512;
    cfg.binary_shuffle_min_rows = binary_shuffle_min_rows;
    cfg.vectorized_execution = vectorized;
    return Session::Make(cfg).ValueOrDie();
  }

  void SetUp() override {
    vec_ = MakeSession(true);
    scalar_ = MakeSession(false);
    schema_ = Schema::Make({{"k", TypeId::kInt64, false},
                            {"g", TypeId::kInt64, false},
                            {"v", TypeId::kInt64, true},
                            {"d", TypeId::kFloat64, true},
                            {"s", TypeId::kString, false}});
    RowVec rows;
    rows.reserve(kRows);
    for (int64_t i = 0; i < kRows; ++i) {
      rows.push_back({Value(i), Value(i % 64),
                      i % 11 == 0 ? Value::Null() : Value(i % 1000),
                      i % 13 == 0 ? Value::Null() : Value(0.5 * (i % 97)),
                      Value("r" + std::to_string(i % 7))});
    }
    auto df = vec_->CreateDataFrame(schema_, rows, "t").ValueOrDie();
    rel_ = IndexedDataFrame::CreateIndex(df, 0, "t_by_k").ValueOrDie()
               .relation();
    pred_ = BindExpr(And(Lt(Col("v"), Lit(Value(int64_t{700}))),
                         Ne(Col("s"), Lit(Value("r3")))),
                     *schema_)
                .ValueOrDie();
  }

  PushedFilter Pushed() {
    return PushedFilter::FromSplit(SplitForCompilation(pred_, *schema_));
  }

  static constexpr int64_t kRows = 20000;
  SessionPtr vec_;
  SessionPtr scalar_;
  SchemaPtr schema_;
  IndexedRelationPtr rel_;
  ExprPtr pred_;
};

TEST_F(VectorizedOperatorTest, FilterScanMatchesScalarAndCountsMetrics) {
  IndexedScanFilterOp scan(rel_, pred_, Pushed());

  vec_->metrics().Reset();
  RowVec with_vec = CollectRows(scan.Execute(vec_->exec()).ValueOrDie());
  const auto& mv = vec_->metrics();
  EXPECT_GT(mv.rows_filtered_vectorized(), 0u);
  EXPECT_GT(mv.vector_batches_evaluated(), 0u);
  EXPECT_EQ(mv.rows_filtered_vectorized(), mv.rows_filtered_encoded());

  scalar_->metrics().Reset();
  RowVec without = CollectRows(scan.Execute(scalar_->exec()).ValueOrDie());
  const auto& ms = scalar_->metrics();
  EXPECT_EQ(ms.rows_filtered_vectorized(), 0u);
  EXPECT_EQ(ms.vector_batches_evaluated(), 0u);
  EXPECT_GT(ms.rows_filtered_encoded(), 0u);

  ASSERT_FALSE(with_vec.empty());
  EXPECT_EQ(with_vec, without);  // same flatten order: byte-identical rows
  EXPECT_EQ(mv.rows_filtered_encoded(), ms.rows_filtered_encoded());
}

TEST_F(VectorizedOperatorTest, GroupedFusedAggregateMatchesScalar) {
  std::vector<ExprPtr> groups = {BindExpr(Col("g"), *schema_).ValueOrDie()};
  std::vector<AggSpec> aggs = {
      CountStar("cnt"),
      SumOf(BindExpr(Col("v"), *schema_).ValueOrDie(), "sv"),
      AvgOf(BindExpr(Col("d"), *schema_).ValueOrDie(), "ad"),
      MinOf(BindExpr(Col("v"), *schema_).ValueOrDie(), "mn"),
      MaxOf(BindExpr(Col("s"), *schema_).ValueOrDie(), "mx")};
  SchemaPtr out = Schema::Make({{"g", TypeId::kInt64, false},
                                {"cnt", TypeId::kInt64, false},
                                {"sv", TypeId::kInt64, true},
                                {"ad", TypeId::kFloat64, true},
                                {"mn", TypeId::kInt64, true},
                                {"mx", TypeId::kString, true}});
  IndexedScanAggregateOp agg(rel_, pred_, Pushed(), groups, aggs, out);

  vec_->metrics().Reset();
  RowVec with_vec = CollectRows(agg.Execute(vec_->exec()).ValueOrDie());
  EXPECT_GT(vec_->metrics().rows_filtered_vectorized(), 0u);
  EXPECT_GT(vec_->metrics().rows_aggregated_encoded(), 0u);

  scalar_->metrics().Reset();
  RowVec without = CollectRows(agg.Execute(scalar_->exec()).ValueOrDie());
  EXPECT_EQ(scalar_->metrics().rows_filtered_vectorized(), 0u);

  SortRows(&with_vec);
  SortRows(&without);
  ASSERT_FALSE(with_vec.empty());
  EXPECT_EQ(with_vec, without);  // bit-identical, doubles included
}

TEST_F(VectorizedOperatorTest, UngroupedFusedAggregateUsesLaneFastPath) {
  std::vector<AggSpec> aggs = {
      CountStar("cnt"),
      SumOf(BindExpr(Col("v"), *schema_).ValueOrDie(), "sv"),
      SumOf(BindExpr(Col("d"), *schema_).ValueOrDie(), "sd"),
      AvgOf(BindExpr(Col("d"), *schema_).ValueOrDie(), "ad"),
      MinOf(BindExpr(Col("v"), *schema_).ValueOrDie(), "mn"),
      MaxOf(BindExpr(Col("v"), *schema_).ValueOrDie(), "mx")};
  SchemaPtr out = Schema::Make({{"cnt", TypeId::kInt64, false},
                                {"sv", TypeId::kInt64, true},
                                {"sd", TypeId::kFloat64, true},
                                {"ad", TypeId::kFloat64, true},
                                {"mn", TypeId::kInt64, true},
                                {"mx", TypeId::kInt64, true}});
  IndexedScanAggregateOp agg(rel_, pred_, Pushed(), {}, aggs, out);

  vec_->metrics().Reset();
  RowVec with_vec = CollectRows(agg.Execute(vec_->exec()).ValueOrDie());
  // Every surviving row accumulates straight off the payload lanes.
  EXPECT_GT(vec_->metrics().rows_filtered_vectorized(), 0u);
  EXPECT_GT(vec_->metrics().rows_aggregated_encoded(), 0u);

  RowVec without = CollectRows(agg.Execute(scalar_->exec()).ValueOrDie());
  ASSERT_EQ(with_vec.size(), 1u);
  EXPECT_EQ(with_vec, without);  // SUM/AVG doubles must be bit-identical
}

TEST_F(VectorizedOperatorTest, JoinBuildFilterMatchesScalarOnAllProbePaths) {
  // Probe keys cycle over the build domain; duplicate build keys force
  // multi-link chains so one probe yields several build candidates.
  SchemaPtr probe_schema = Schema::Make(
      {{"fk", TypeId::kInt64, false}, {"seq", TypeId::kInt64, false}});
  RowVec probe_rows;
  for (int64_t i = 0; i < 6000; ++i) {
    probe_rows.push_back({Value(i % (kRows + 200)), Value(i)});
  }
  ExprPtr build_pred =
      BindExpr(Lt(Col("g"), Lit(Value(int64_t{32}))), *schema_).ValueOrDie();
  PushedFilter build_filter =
      PushedFilter::FromSplit(SplitForCompilation(build_pred, *schema_));
  SchemaPtr out_schema = Schema::Concat(*schema_, *probe_schema);

  struct PathCase {
    bool broadcast;
    size_t binary_min;  // forces legacy row exchange when huge
    const char* name;
  };
  const PathCase cases[] = {{true, 0, "broadcast"},
                            {false, 0, "binary"},
                            {false, 1u << 30, "legacy"}};
  for (const PathCase& pc : cases) {
    SessionPtr vec_session = MakeSession(true, pc.binary_min);
    SessionPtr scalar_session = MakeSession(false, pc.binary_min);
    RowVec results[2];
    SessionPtr sessions[2] = {vec_session, scalar_session};
    for (int which = 0; which < 2; ++which) {
      SessionPtr& s = sessions[which];
      auto probe_df =
          s->CreateDataFrame(probe_schema, probe_rows, "probe").ValueOrDie();
      auto probe_op = s->PlanQuery(probe_df.plan()).ValueOrDie();
      ExprPtr probe_key = BindExpr(Col("fk"), *probe_schema).ValueOrDie();
      IndexedJoinOp join(rel_, probe_op, probe_key, /*indexed_on_left=*/true,
                         pc.broadcast, out_schema, build_filter);
      s->metrics().Reset();
      results[which] = CollectRows(join.Execute(s->exec()).ValueOrDie());
    }
    EXPECT_GT(vec_session->metrics().rows_filtered_vectorized(), 0u)
        << pc.name;
    EXPECT_EQ(scalar_session->metrics().rows_filtered_vectorized(), 0u)
        << pc.name;
    ASSERT_FALSE(results[0].empty()) << pc.name;
    EXPECT_EQ(results[0], results[1]) << pc.name;
  }
}

}  // namespace
}  // namespace idf
