// Plan-level tests for the indexed Catalyst rules and the physical
// strategy: exactly when do rewrites fire, and what do they produce.
#include "indexed/indexed_rules.h"

#include <gtest/gtest.h>

#include "indexed/indexed_relation.h"
#include "sql/analyzer.h"

namespace idf {
namespace {

class IndexedRulesTest : public ::testing::Test {
 protected:
  void SetUp() override {
    EngineConfig cfg;
    cfg.num_partitions = 2;
    cfg.num_threads = 1;
    ctx_ = ExecutorContext::Make(cfg).ValueOrDie();
    schema_ = Schema::Make({{"k", TypeId::kInt64, true},
                            {"v", TypeId::kString, true}});
    RowVec rows;
    for (int64_t i = 0; i < 20; ++i) {
      rows.push_back({Value(i % 4), Value("x" + std::to_string(i))});
    }
    rel_ = IndexedRelation::Build(*ctx_, "rel", schema_, 0, rows).ValueOrDie();
  }

  LogicalPlanPtr IndexedScan() { return std::make_shared<IndexedScanNode>(rel_); }

  LogicalPlanPtr RegularScan() {
    auto t = std::make_shared<RawTable>();
    t->name = "reg";
    t->schema = Schema::Make({{"a", TypeId::kInt64, true}});
    t->partitions.push_back({});
    return std::make_shared<ScanNode>(std::move(t));
  }

  ExecutorContextPtr ctx_;
  SchemaPtr schema_;
  IndexedRelationPtr rel_;
};

TEST_F(IndexedRulesTest, FilterRuleRewritesEqualityOnIndexedColumn) {
  auto plan = Analyze(std::make_shared<FilterNode>(
                          IndexedScan(), Eq(Col("k"), Lit(Value(int64_t{2})))))
                  .ValueOrDie();
  auto rewritten = IndexedFilterRule().Apply(plan).ValueOrDie();
  ASSERT_NE(rewritten, nullptr);
  ASSERT_EQ(rewritten->kind(), PlanKind::kIndexedLookup);
  EXPECT_EQ(static_cast<const IndexedLookupNode*>(rewritten.get())->key(),
            Value(int64_t{2}));
}

TEST_F(IndexedRulesTest, FilterRuleHandlesMirroredLiteral) {
  auto plan = Analyze(std::make_shared<FilterNode>(
                          IndexedScan(), Eq(Lit(Value(int64_t{2})), Col("k"))))
                  .ValueOrDie();
  auto rewritten = IndexedFilterRule().Apply(plan).ValueOrDie();
  ASSERT_NE(rewritten, nullptr);
  EXPECT_EQ(rewritten->kind(), PlanKind::kIndexedLookup);
}

TEST_F(IndexedRulesTest, FilterRuleExtractsConjunctAndKeepsResidual) {
  auto pred = And(Gt(Col("v"), Lit(Value("a"))),
                  Eq(Col("k"), Lit(Value(int64_t{1}))));
  auto plan =
      Analyze(std::make_shared<FilterNode>(IndexedScan(), pred)).ValueOrDie();
  auto rewritten = IndexedFilterRule().Apply(plan).ValueOrDie();
  ASSERT_NE(rewritten, nullptr);
  ASSERT_EQ(rewritten->kind(), PlanKind::kFilter);
  EXPECT_EQ(rewritten->children()[0]->kind(), PlanKind::kIndexedLookup);
  // Residual predicate only mentions v.
  const auto* f = static_cast<const FilterNode*>(rewritten.get());
  EXPECT_EQ(f->predicate()->kind(), ExprKind::kComparison);
}

TEST_F(IndexedRulesTest, FilterRuleIgnoresNonIndexedColumn) {
  auto plan = Analyze(std::make_shared<FilterNode>(
                          IndexedScan(), Eq(Col("v"), Lit(Value("x1")))))
                  .ValueOrDie();
  EXPECT_EQ(IndexedFilterRule().Apply(plan).ValueOrDie(), nullptr);
}

TEST_F(IndexedRulesTest, FilterRuleIgnoresRangePredicates) {
  auto plan = Analyze(std::make_shared<FilterNode>(
                          IndexedScan(), Lt(Col("k"), Lit(Value(int64_t{2})))))
                  .ValueOrDie();
  EXPECT_EQ(IndexedFilterRule().Apply(plan).ValueOrDie(), nullptr);
}

TEST_F(IndexedRulesTest, FilterRuleIgnoresRegularScans) {
  auto plan = Analyze(std::make_shared<FilterNode>(
                          RegularScan(), Eq(Col("a"), Lit(Value(int64_t{1})))))
                  .ValueOrDie();
  EXPECT_EQ(IndexedFilterRule().Apply(plan).ValueOrDie(), nullptr);
}

TEST_F(IndexedRulesTest, JoinRuleRewritesIndexedLeftSide) {
  auto plan = Analyze(std::make_shared<JoinNode>(IndexedScan(), RegularScan(),
                                                 Col("k"), Col("a")))
                  .ValueOrDie();
  auto rewritten = IndexedJoinRule().Apply(plan).ValueOrDie();
  ASSERT_NE(rewritten, nullptr);
  ASSERT_EQ(rewritten->kind(), PlanKind::kIndexedJoin);
  const auto* join = static_cast<const IndexedJoinNode*>(rewritten.get());
  EXPECT_TRUE(join->indexed_on_left());
  EXPECT_EQ(join->probe()->kind(), PlanKind::kScan);
  // Output schema identical to the regular join's.
  EXPECT_TRUE(join->output_schema()->Equals(*plan->output_schema()));
}

TEST_F(IndexedRulesTest, JoinRuleRewritesIndexedRightSide) {
  auto plan = Analyze(std::make_shared<JoinNode>(RegularScan(), IndexedScan(),
                                                 Col("a"), Col("k")))
                  .ValueOrDie();
  auto rewritten = IndexedJoinRule().Apply(plan).ValueOrDie();
  ASSERT_NE(rewritten, nullptr);
  const auto* join = static_cast<const IndexedJoinNode*>(rewritten.get());
  EXPECT_FALSE(join->indexed_on_left());
}

TEST_F(IndexedRulesTest, JoinRuleIgnoresNonIndexedKey) {
  // A relation with two int columns, indexed on the first; joining on the
  // second must not trigger the rewrite.
  auto schema2 = Schema::Make({{"k", TypeId::kInt64, true},
                               {"w", TypeId::kInt64, true}});
  auto rel2 =
      IndexedRelation::Build(*ctx_, "rel2", schema2, 0,
                             {{Value(int64_t{1}), Value(int64_t{10})}})
          .ValueOrDie();
  auto plan = Analyze(std::make_shared<JoinNode>(
                          std::make_shared<IndexedScanNode>(rel2), RegularScan(),
                          Col("w"), Col("a")))
                  .ValueOrDie();
  EXPECT_EQ(IndexedJoinRule().Apply(plan).ValueOrDie(), nullptr);
}

TEST_F(IndexedRulesTest, JoinRuleIgnoresRegularJoin) {
  auto plan = Analyze(std::make_shared<JoinNode>(RegularScan(), RegularScan(),
                                                 Col("a"), Col("a")))
                  .ValueOrDie();
  EXPECT_EQ(IndexedJoinRule().Apply(plan).ValueOrDie(), nullptr);
}

TEST_F(IndexedRulesTest, StrategyLowersIndexedNodes) {
  IndexedExecutionStrategy strategy;
  EngineConfig cfg = ctx_->config();

  auto scan = Analyze(IndexedScan()).ValueOrDie();
  auto scan_op = strategy.Plan(scan, {}, cfg).ValueOrDie();
  ASSERT_NE(scan_op, nullptr);
  EXPECT_NE(scan_op->name().find("IndexedScan"), std::string::npos);

  auto lookup = LogicalPlanPtr(
      std::make_shared<IndexedLookupNode>(rel_, Value(int64_t{1})));
  auto lookup_op = strategy.Plan(lookup, {}, cfg).ValueOrDie();
  ASSERT_NE(lookup_op, nullptr);
  EXPECT_NE(lookup_op->name().find("IndexLookup"), std::string::npos);
}

TEST_F(IndexedRulesTest, StrategyIgnoresRegularNodes) {
  IndexedExecutionStrategy strategy;
  auto scan = Analyze(RegularScan()).ValueOrDie();
  EXPECT_EQ(strategy.Plan(scan, {}, ctx_->config()).ValueOrDie(), nullptr);
}

TEST_F(IndexedRulesTest, InstallIsIdempotent) {
  auto session = Session::Make().ValueOrDie();
  InstallIndexedExtensions(*session);
  InstallIndexedExtensions(*session);
  EXPECT_TRUE(session->HasExtension("indexed-dataframe"));
}

TEST_F(IndexedRulesTest, LookupExecutesAgainstRelation) {
  IndexedExecutionStrategy strategy;
  auto lookup = LogicalPlanPtr(
      std::make_shared<IndexedLookupNode>(rel_, Value(int64_t{1})));
  auto op = strategy.Plan(lookup, {}, ctx_->config()).ValueOrDie();
  auto parts = op->Execute(*ctx_).ValueOrDie();
  EXPECT_EQ(TotalRows(parts), 5u);  // keys 0..3 over 20 rows
}

}  // namespace
}  // namespace idf
