// Unit and property tests for hashing and the deterministic RNG.
#include "common/hash.h"

#include <set>
#include <unordered_set>
#include <vector>

#include <gtest/gtest.h>

namespace idf {
namespace {

TEST(Hash64Test, DeterministicForSameInput) {
  std::string s = "hello world";
  EXPECT_EQ(Hash64(s), Hash64(s));
  EXPECT_EQ(Hash64(s, 7), Hash64(s, 7));
}

TEST(Hash64Test, SeedChangesOutput) {
  std::string s = "hello world";
  EXPECT_NE(Hash64(s, 0), Hash64(s, 1));
}

TEST(Hash64Test, DifferentInputsDiffer) {
  EXPECT_NE(Hash64("a"), Hash64("b"));
  EXPECT_NE(Hash64("abc"), Hash64("abd"));
  EXPECT_NE(Hash64(""), Hash64("x"));
}

TEST(Hash64Test, EmptyInputIsStable) { EXPECT_EQ(Hash64(""), Hash64("")); }

TEST(Hash64Test, CoversAllLengthBranches) {
  // <4, 4-7, 8-31, >=32 byte paths must all produce distinct stable values.
  std::set<uint64_t> seen;
  for (size_t len : {0u, 1u, 3u, 4u, 7u, 8u, 15u, 31u, 32u, 33u, 100u}) {
    std::string s(len, 'q');
    uint64_t h = Hash64(s);
    EXPECT_EQ(h, Hash64(s)) << len;
    seen.insert(h);
  }
  EXPECT_EQ(seen.size(), 11u);
}

TEST(Hash64Test, NoObviousCollisionsOverSequentialInts) {
  std::unordered_set<uint64_t> seen;
  for (uint64_t i = 0; i < 100000; ++i) {
    uint64_t h = Hash64(&i, sizeof(i));
    EXPECT_TRUE(seen.insert(h).second) << "collision at " << i;
  }
}

TEST(Mix64Test, IsInjectiveOnSample) {
  std::unordered_set<uint64_t> seen;
  for (uint64_t i = 0; i < 200000; ++i) {
    EXPECT_TRUE(seen.insert(Mix64(i)).second) << i;
  }
}

TEST(Mix64Test, AvalanchesLowBits) {
  // Adjacent integers should land in different high bits most of the time.
  int same_top_byte = 0;
  for (uint64_t i = 0; i < 1000; ++i) {
    if ((Mix64(i) >> 56) == (Mix64(i + 1) >> 56)) ++same_top_byte;
  }
  EXPECT_LT(same_top_byte, 100);  // ~1/256 expected
}

TEST(HashCombineTest, OrderSensitive) {
  EXPECT_NE(HashCombine(1, 2), HashCombine(2, 1));
}

TEST(Random64Test, DeterministicBySeed) {
  Random64 a(123), b(123), c(124);
  EXPECT_EQ(a.Next(), b.Next());
  EXPECT_NE(a.Next(), c.Next());
}

TEST(Random64Test, UniformRespectsBound) {
  Random64 rng(1);
  for (int i = 0; i < 10000; ++i) {
    EXPECT_LT(rng.Uniform(17), 17u);
  }
  EXPECT_EQ(rng.Uniform(0), 0u);
  EXPECT_EQ(rng.Uniform(1), 0u);
}

TEST(Random64Test, NextDoubleInUnitInterval) {
  Random64 rng(2);
  for (int i = 0; i < 10000; ++i) {
    double d = rng.NextDouble();
    EXPECT_GE(d, 0.0);
    EXPECT_LT(d, 1.0);
  }
}

TEST(Random64Test, SkewedRespectsBoundAndSkews) {
  Random64 rng(3);
  const uint64_t n = 1000;
  std::vector<int> histogram(10, 0);
  for (int i = 0; i < 100000; ++i) {
    uint64_t v = rng.Skewed(n);
    ASSERT_LT(v, n);
    ++histogram[v * 10 / n];
  }
  // The first decile must dominate the last by a wide margin.
  EXPECT_GT(histogram[0], 10 * histogram[9]);
}

TEST(Random64Test, SkewedDegenerateBounds) {
  Random64 rng(4);
  EXPECT_EQ(rng.Skewed(0), 0u);
  EXPECT_EQ(rng.Skewed(1), 0u);
}

}  // namespace
}  // namespace idf
