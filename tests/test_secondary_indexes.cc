// Secondary-index tests: differential equality between indexed probes and
// full scans over randomized NULL-bearing data (every comparison op),
// index-kind costing decisions observed through the metrics counters,
// snapshot isolation of probe results under a live appender (the TSan
// target), and index rebuild across compaction.
#include <algorithm>
#include <atomic>
#include <random>
#include <thread>

#include <gtest/gtest.h>

#include "indexed/compactor.h"
#include "indexed/indexed_dataframe.h"
#include "indexed/indexed_relation.h"
#include "sql/index_costing.h"

namespace idf {
namespace {

// id is the primary (cTrie) index column; cat is low-cardinality (bitmap),
// score is wide-range (range). Both secondary columns carry NULLs.
SchemaPtr TestSchema() {
  return Schema::Make({{"id", TypeId::kInt64, false},
                       {"cat", TypeId::kInt64, true},
                       {"score", TypeId::kInt64, true},
                       {"tag", TypeId::kString, true}});
}

RowVec MakeRows(size_t n, uint64_t seed, int64_t first_id) {
  std::mt19937_64 rng(seed);
  std::uniform_int_distribution<int64_t> cat_dist(0, 7);
  std::uniform_int_distribution<int64_t> score_dist(0, 9999);
  std::uniform_int_distribution<int> null_dist(0, 7);  // 1/8 nulls
  RowVec rows;
  rows.reserve(n);
  for (size_t i = 0; i < n; ++i) {
    const int64_t id = first_id + static_cast<int64_t>(i);
    Value cat = null_dist(rng) == 0 ? Value() : Value(cat_dist(rng));
    Value score = null_dist(rng) == 0 ? Value() : Value(score_dist(rng));
    rows.push_back(
        {Value(id), std::move(cat), std::move(score), Value("t" + std::to_string(id))});
  }
  return rows;
}

class SecondaryIndexTest : public ::testing::Test {
 protected:
  void SetUp() override {
    EngineConfig cfg;
    cfg.num_partitions = 4;
    cfg.num_threads = 2;
    cfg.row_batch_bytes = 64 * 1024;
    session_ = Session::Make(cfg).ValueOrDie();
    schema_ = TestSchema();
    rows_ = MakeRows(4000, /*seed=*/17, /*first_id=*/0);
    df_ = session_->CreateDataFrame(schema_, rows_, "base").ValueOrDie();
    idf_ = std::make_shared<IndexedDataFrame>(
        IndexedDataFrame::CreateIndex(df_, 0, "base_by_id").ValueOrDie().Cache());
    rel_ = idf_->relation();
    ASSERT_TRUE(rel_->AddSecondaryIndex("cat", SecondaryIndexKind::kBitmap).ok());
    ASSERT_TRUE(rel_->AddSecondaryIndex("score", SecondaryIndexKind::kRange).ok());
  }

  /// Runs `pred` through the session planner (where the costing rule may or
  /// may not pick a probe) and returns the sorted result.
  RowVec Indexed(const ExprPtr& pred) {
    RowVec out = idf_->ToDataFrame()
                     .Filter(pred)
                     .ValueOrDie()
                     .Collect()
                     .ValueOrDie();
    SortRows(&out);
    return out;
  }

  /// Brute-force reference over the source rows (nulls never match).
  RowVec Reference(const std::function<bool(const Row&)>& keep) const {
    RowVec out;
    for (const Row& row : rows_) {
      if (keep(row)) out.push_back(row);
    }
    SortRows(&out);
    return out;
  }

  std::string Plan(const ExprPtr& pred) {
    return idf_->ToDataFrame().Filter(pred).ValueOrDie().Explain().ValueOrDie();
  }

  SessionPtr session_;
  SchemaPtr schema_;
  RowVec rows_;
  DataFrame df_;
  std::shared_ptr<IndexedDataFrame> idf_;
  IndexedRelationPtr rel_;
};

// --- Differential fuzz: every comparison op, indexed vs reference ---------

TEST_F(SecondaryIndexTest, RangeOpsMatchScanOverNullBearingData) {
  std::mt19937_64 rng(23);
  std::uniform_int_distribution<int64_t> bound(0, 9999);
  for (int iter = 0; iter < 8; ++iter) {
    const int64_t b = bound(rng);
    const Value vb{b};
    struct Case {
      ExprPtr pred;
      std::function<bool(const Value&)> keep;
    };
    std::vector<Case> cases;
    cases.push_back({Lt(Col("score"), Lit(vb)),
                     [b](const Value& v) { return v.AsInt64() < b; }});
    cases.push_back({Le(Col("score"), Lit(vb)),
                     [b](const Value& v) { return v.AsInt64() <= b; }});
    cases.push_back({Gt(Col("score"), Lit(vb)),
                     [b](const Value& v) { return v.AsInt64() > b; }});
    cases.push_back({Ge(Col("score"), Lit(vb)),
                     [b](const Value& v) { return v.AsInt64() >= b; }});
    cases.push_back({Eq(Col("score"), Lit(vb)),
                     [b](const Value& v) { return v.AsInt64() == b; }});
    const int64_t lo = b, hi = std::min<int64_t>(9999, b + 400);
    cases.push_back({And(Ge(Col("score"), Lit(Value(lo))),
                         Le(Col("score"), Lit(Value(hi)))),
                     [lo, hi](const Value& v) {
                       return v.AsInt64() >= lo && v.AsInt64() <= hi;
                     }});
    for (const Case& c : cases) {
      RowVec got = Indexed(c.pred);
      RowVec want = Reference(
          [&](const Row& row) { return !row[2].is_null() && c.keep(row[2]); });
      ASSERT_EQ(got, want);
    }
  }
}

TEST_F(SecondaryIndexTest, BitmapEqualityAndInMatchScan) {
  for (int64_t k = 0; k < 8; ++k) {
    RowVec got = Indexed(Eq(Col("cat"), Lit(Value(k))));
    RowVec want = Reference([k](const Row& row) {
      return !row[1].is_null() && row[1].AsInt64() == k;
    });
    ASSERT_EQ(got, want);
  }
  // IN as OR-of-equality.
  RowVec got = Indexed(Or(Eq(Col("cat"), Lit(Value(int64_t{2}))),
                          Eq(Col("cat"), Lit(Value(int64_t{5})))));
  RowVec want = Reference([](const Row& row) {
    return !row[1].is_null() &&
           (row[1].AsInt64() == 2 || row[1].AsInt64() == 5);
  });
  EXPECT_EQ(got, want);
}

TEST_F(SecondaryIndexTest, CombinedBitmapAndRangeProbesIntersect) {
  session_->metrics().Reset();
  ExprPtr pred = And(Eq(Col("cat"), Lit(Value(int64_t{3}))),
                     And(Ge(Col("score"), Lit(Value(int64_t{1000}))),
                         Le(Col("score"), Lit(Value(int64_t{1400})))));
  RowVec got = Indexed(pred);
  RowVec want = Reference([](const Row& row) {
    return !row[1].is_null() && !row[2].is_null() && row[1].AsInt64() == 3 &&
           row[2].AsInt64() >= 1000 && row[2].AsInt64() <= 1400;
  });
  EXPECT_EQ(got, want);
  // Both index kinds participated in the ANDed probe.
  EXPECT_GT(session_->metrics().range_probes(), 0u);
  EXPECT_GT(session_->metrics().bitmap_probes(), 0u);
}

// --- Costing: probe on selective predicates, scan when unselective --------

TEST_F(SecondaryIndexTest, SelectiveRangeChoosesProbeAndAvoidsScans) {
  // ~1% selective BETWEEN: must go through the range index.
  ExprPtr pred = And(Ge(Col("score"), Lit(Value(int64_t{500}))),
                     Le(Col("score"), Lit(Value(int64_t{599}))));
  EXPECT_NE(Plan(pred).find("SecondaryIndexProbe"), std::string::npos);
  session_->metrics().Reset();
  RowVec got = Indexed(pred);
  RowVec want = Reference([](const Row& row) {
    return !row[2].is_null() && row[2].AsInt64() >= 500 &&
           row[2].AsInt64() <= 599;
  });
  EXPECT_EQ(got, want);
  EXPECT_GT(session_->metrics().range_probes(), 0u);
  EXPECT_GT(session_->metrics().index_scans_avoided(), 0u);
  // The probe reads far fewer rows than the table holds.
  EXPECT_LT(session_->metrics().rows_scanned(), rows_.size() / 2);
}

TEST_F(SecondaryIndexTest, UnselectivePredicateChoosesVectorizedScan) {
  // ~90% selective: costing must reject the probe and scan.
  ExprPtr pred = Ge(Col("score"), Lit(Value(int64_t{1000})));
  EXPECT_EQ(Plan(pred).find("SecondaryIndexProbe"), std::string::npos);
  session_->metrics().Reset();
  RowVec got = Indexed(pred);
  RowVec want = Reference(
      [](const Row& row) { return !row[2].is_null() && row[2].AsInt64() >= 1000; });
  EXPECT_EQ(got, want);
  EXPECT_EQ(session_->metrics().range_probes(), 0u);
  EXPECT_EQ(session_->metrics().bitmap_probes(), 0u);
}

// --- Appends: probes cover the cut and scan the uncovered suffix ----------

TEST_F(SecondaryIndexTest, ProbesStayExactAcrossAppendBatches) {
  for (int batch = 0; batch < 3; ++batch) {
    RowVec extra =
        MakeRows(2000, /*seed=*/100 + batch, /*first_id=*/10000 + batch * 2000);
    ASSERT_TRUE(rel_->AppendRows(session_->exec(), extra).ok());
    rows_.insert(rows_.end(), extra.begin(), extra.end());
    RowVec got = Indexed(And(Ge(Col("score"), Lit(Value(int64_t{200}))),
                             Le(Col("score"), Lit(Value(int64_t{299})))));
    RowVec want = Reference([](const Row& row) {
      return !row[2].is_null() && row[2].AsInt64() >= 200 &&
             row[2].AsInt64() <= 299;
    });
    ASSERT_EQ(got, want);
  }
  // Maintenance time accumulated on the append path's executor.
  const QueryMetrics& m = session_->metrics();
  EXPECT_GT(m.bitmap_maintenance_us() + m.range_maintenance_us(), 0u);
}

// --- View-level semantics: fallback and probe/scan equivalence ------------

TEST_F(SecondaryIndexTest, KindMismatchFallsBackToFullScan) {
  // A range probe against the bitmap column is unservable: the view must
  // fall back to scanning and still return the exact matches.
  SecondaryProbe probe;
  probe.column = 1;
  probe.kind = SecondaryIndexKind::kRange;
  probe.lo = Value(int64_t{2});
  probe.hi = Value(int64_t{5});
  for (int p = 0; p < rel_->num_partitions(); ++p) {
    IndexedPartition::View view = rel_->partition(p).Snapshot();
    std::vector<const uint8_t*> via_probe;
    SecondaryProbeStats stats;
    view.ProbeSecondary({probe}, &via_probe, &stats);
    EXPECT_FALSE(stats.used_index);
    std::vector<const uint8_t*> via_scan;
    view.ScanRaw([&](const uint8_t* payload) {
      if (RawColumnIsNull(payload, 1)) return;
      if (ProbeMatches(probe, DecodeColumn(payload, *schema_, 1))) {
        via_scan.push_back(payload);
      }
    });
    EXPECT_EQ(via_probe, via_scan);
  }
}

TEST_F(SecondaryIndexTest, SnapshotConsistentUnderLiveAppender) {
  // Appender thread lands batches while readers capture views and compare
  // the indexed probe against a full scan of the SAME view: both must see
  // the identical frozen row set (cut + suffix = watermark). TSan verifies
  // the cut's publish edge.
  std::atomic<bool> stop{false};
  std::atomic<int> batches{0};
  std::thread appender([&] {
    int64_t next_id = 50000;
    uint64_t seed = 7;
    while (!stop.load(std::memory_order_relaxed)) {
      RowVec extra = MakeRows(128, ++seed, next_id);
      next_id += 128;
      ASSERT_TRUE(rel_->AppendRows(session_->exec(), extra).ok());
      batches.fetch_add(1, std::memory_order_relaxed);
    }
  });

  SecondaryProbe range;
  range.column = 2;
  range.kind = SecondaryIndexKind::kRange;
  range.lo = Value(int64_t{3000});
  range.hi = Value(int64_t{4000});
  SecondaryProbe bitmap;
  bitmap.column = 1;
  bitmap.kind = SecondaryIndexKind::kBitmap;
  bitmap.keys = {Value(int64_t{1}), Value(int64_t{6})};

  for (int iter = 0; iter < 40; ++iter) {
    for (int p = 0; p < rel_->num_partitions(); ++p) {
      IndexedPartition::View view = rel_->partition(p).Snapshot();
      for (const SecondaryProbe* probe : {&range, &bitmap}) {
        std::vector<const uint8_t*> via_index;
        view.ProbeSecondary({*probe}, &via_index, nullptr);
        std::vector<const uint8_t*> via_scan;
        const int col = probe->column;
        view.ScanRaw([&](const uint8_t* payload) {
          if (RawColumnIsNull(payload, col)) return;
          if (ProbeMatches(*probe, DecodeColumn(payload, *schema_, col))) {
            via_scan.push_back(payload);
          }
        });
        // A mismatch here means the cut + suffix decomposition lost or
        // duplicated a row (e.g. an unaligned suffix resume offset).
        ASSERT_EQ(via_index, via_scan);
      }
      // A view is immutable: probing it again after more appends landed
      // returns the identical result (snapshot isolation).
      std::vector<const uint8_t*> again;
      view.ProbeSecondary({range}, &again, nullptr);
      std::vector<const uint8_t*> first;
      view.ProbeSecondary({range}, &first, nullptr);
      ASSERT_EQ(first, again);
    }
  }
  stop.store(true, std::memory_order_relaxed);
  appender.join();
  EXPECT_GT(batches.load(), 0);
}

// --- Compaction: indexes are rebuilt over the compacted generation --------

TEST_F(SecondaryIndexTest, CompactionRebuildsIndexesWithIdenticalResults) {
  // Duplicate keys so compaction actually rewrites chains.
  RowVec dup = MakeRows(1000, /*seed=*/31, /*first_id=*/0);
  ASSERT_TRUE(rel_->AppendRows(session_->exec(), dup).ok());
  rows_.insert(rows_.end(), dup.begin(), dup.end());

  ExprPtr pred = And(Ge(Col("score"), Lit(Value(int64_t{100}))),
                     Le(Col("score"), Lit(Value(int64_t{400}))));
  RowVec before = Indexed(pred);

  Compactor compactor(rel_);
  for (int p = 0; p < rel_->num_partitions(); ++p) {
    ASSERT_TRUE(compactor.CompactPartition(p).ok());
  }
  // Fresh views carry a rebuilt cut covering every surviving row.
  for (int p = 0; p < rel_->num_partitions(); ++p) {
    IndexedPartition::View view = rel_->partition(p).Snapshot();
    ASSERT_NE(view.secondary_cut(), nullptr);
    EXPECT_EQ(view.secondary_cut()->covered, view.num_rows());
  }

  session_->metrics().Reset();
  RowVec after = Indexed(pred);
  EXPECT_EQ(before, after);
  RowVec want = Reference([](const Row& row) {
    return !row[2].is_null() && row[2].AsInt64() >= 100 &&
           row[2].AsInt64() <= 400;
  });
  EXPECT_EQ(after, want);
  // The rebuilt indexes serve probes (not the scan fallback).
  EXPECT_GT(session_->metrics().range_probes(), 0u);
}

}  // namespace
}  // namespace idf
