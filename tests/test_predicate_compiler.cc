// Unit tests for the compiled-predicate subsystem: per-type compilation
// and evaluation against encoded payloads, SQL three-valued logic, the
// compilable-subset boundary (what falls back), and SplitForCompilation's
// conjunct splitting. The differential fuzzer in test_property_fuzz.cc
// covers the same contract with random trees; these are the directed cases.
#include "sql/predicate_compiler.h"

#include <gtest/gtest.h>

#include "storage/row_batch.h"

namespace idf {
namespace {

class PredicateCompilerTest : public ::testing::Test {
 protected:
  void SetUp() override {
    schema_ = Schema::Make({{"i64", TypeId::kInt64, true},
                            {"i32", TypeId::kInt32, true},
                            {"f64", TypeId::kFloat64, true},
                            {"b", TypeId::kBool, true},
                            {"s", TypeId::kString, true},
                            {"ts", TypeId::kTimestamp, true}});
  }

  // Encodes `row` and returns the payload bytes (no back-pointer header).
  std::vector<uint8_t> Encode(const Row& row) {
    std::vector<uint8_t> out;
    EXPECT_TRUE(EncodeRow(*schema_, row, &out).ok());
    return out;
  }

  // The interpreter's filter decision: TRUE keeps the row.
  bool InterpreterKeeps(const ExprPtr& bound, const Row& row) {
    Result<Value> v = bound->Eval(row);
    EXPECT_TRUE(v.ok()) << v.status().ToString();
    return !v.ValueOrDie().is_null() && v.ValueOrDie().bool_value();
  }

  // Compiles `expr` (must succeed) and checks Matches() against the
  // interpreter on every row.
  void ExpectAgrees(const ExprPtr& expr, const RowVec& rows) {
    ExprPtr bound = BindExpr(expr, *schema_).ValueOrDie();
    std::optional<CompiledPredicate> compiled =
        CompiledPredicate::Compile(bound, *schema_);
    ASSERT_TRUE(compiled.has_value()) << bound->ToString();
    for (const Row& row : rows) {
      std::vector<uint8_t> payload = Encode(row);
      EXPECT_EQ(compiled->Matches(payload.data()), InterpreterKeeps(bound, row))
          << bound->ToString() << " on row 0: " << row[0].ToString();
    }
  }

  void ExpectNotCompilable(const ExprPtr& expr) {
    ExprPtr bound = BindExpr(expr, *schema_).ValueOrDie();
    EXPECT_FALSE(CompiledPredicate::Compile(bound, *schema_).has_value())
        << bound->ToString();
  }

  RowVec SampleRows() {
    return {
        {Value(int64_t{5}), Value(int32_t{5}), Value(2.5), Value(true),
         Value("abc"), Value(int64_t{100})},
        {Value(int64_t{-7}), Value(int32_t{-7}), Value(-0.0), Value(false),
         Value(""), Value(int64_t{-100})},
        {Value(int64_t{0}), Value(int32_t{0}), Value(0.0), Value(true),
         Value("abd"), Value(int64_t{0})},
        {Value::Null(), Value::Null(), Value::Null(), Value::Null(),
         Value::Null(), Value::Null()},
        {Value(int64_t{1} << 40), Value(int32_t{2147483647}), Value(1e300),
         Value(false), Value("ab"), Value(int64_t{1})},
    };
  }

  SchemaPtr schema_;
};

TEST_F(PredicateCompilerTest, AllComparisonOpsOnAllTypes) {
  RowVec rows = SampleRows();
  struct Case {
    const char* col;
    Value lit;
  };
  std::vector<Case> cases = {{"i64", Value(int64_t{5})},
                             {"i32", Value(int64_t{-7})},
                             {"f64", Value(0.0)},
                             {"b", Value(true)},
                             {"s", Value("abc")},
                             {"ts", Value(int64_t{0})}};
  using Builder = ExprPtr (*)(ExprPtr, ExprPtr);
  std::vector<Builder> ops = {&Eq, &Ne, &Lt, &Le, &Gt, &Ge};
  for (const Case& c : cases) {
    for (Builder op : ops) {
      ExpectAgrees(op(Col(c.col), Lit(c.lit)), rows);
      // Mirrored: literal on the left compiles with the flipped operator.
      ExpectAgrees(op(Lit(c.lit), Col(c.col)), rows);
    }
  }
}

TEST_F(PredicateCompilerTest, IntColumnVsDoubleLiteralWidens) {
  RowVec rows = SampleRows();
  // Fractional literal: no int64 is equal, but ordering still splits rows.
  ExpectAgrees(Gt(Col("i64"), Lit(Value(2.5))), rows);
  ExpectAgrees(Eq(Col("i64"), Lit(Value(5.0))), rows);
  ExpectAgrees(Le(Col("i32"), Lit(Value(-6.5))), rows);
  ExpectAgrees(Eq(Col("b"), Lit(Value(1.0))), rows);
  // Double column vs integer literal compares as double.
  ExpectAgrees(Lt(Col("f64"), Lit(Value(int64_t{1}))), rows);
}

TEST_F(PredicateCompilerTest, NaNLiteralMatchesInterpreter) {
  RowVec rows = SampleRows();
  const double nan = std::numeric_limits<double>::quiet_NaN();
  using Builder = ExprPtr (*)(ExprPtr, ExprPtr);
  for (Builder op : std::vector<Builder>{&Eq, &Ne, &Lt, &Le, &Gt, &Ge}) {
    ExpectAgrees(op(Col("f64"), Lit(Value(nan))), rows);
    ExpectAgrees(op(Col("i64"), Lit(Value(nan))), rows);
  }
}

TEST_F(PredicateCompilerTest, ThreeValuedLogic) {
  RowVec rows = SampleRows();
  ExprPtr cmp = Gt(Col("i64"), Lit(Value(int64_t{0})));
  // NULL comparison operand: NOT(NULL) is NULL, row dropped either way;
  // NULL OR TRUE is TRUE; NULL AND x is never TRUE.
  ExpectAgrees(Not(cmp), rows);
  ExpectAgrees(Or(cmp, Eq(Col("b"), Lit(Value(true)))), rows);
  ExpectAgrees(And(cmp, Col("b")), rows);
  ExpectAgrees(IsNull(Col("s")), rows);
  ExpectAgrees(IsNotNull(Col("s")), rows);
  ExpectAgrees(Not(IsNull(Col("i64"))), rows);
  // A bare bool column and bool/null literals act as predicates.
  ExpectAgrees(Col("b"), rows);
  ExpectAgrees(Lit(Value(true)), rows);
  ExpectAgrees(Lit(Value(false)), rows);
  ExpectAgrees(Lit(Value::Null()), rows);
  // Comparison against a NULL literal is NULL for every row.
  ExpectAgrees(Eq(Col("i64"), Lit(Value::Null())), rows);
}

TEST_F(PredicateCompilerTest, NonCompilableShapesFallBack) {
  ExpectNotCompilable(Like(Col("s"), "a%"));
  ExpectNotCompilable(Gt(Add(Col("i64"), Lit(Value(int64_t{1}))),
                         Lit(Value(int64_t{3}))));
  ExpectNotCompilable(Eq(Col("i64"), Col("ts")));       // col vs col
  ExpectNotCompilable(Eq(Col("s"), Lit(Value(int64_t{1}))));  // string vs int
  ExpectNotCompilable(Eq(Col("i64"), Lit(Value("x"))));       // int vs string
  ExpectNotCompilable(Lit(Value(int64_t{1})));  // non-bool literal predicate
  // Unbound column references never compile.
  EXPECT_FALSE(
      CompiledPredicate::Compile(Gt(Col("i64"), Lit(Value(int64_t{0}))),
                                 *schema_)
          .has_value());
}

TEST_F(PredicateCompilerTest, DeepNestingExceedsStackAndFallsBack) {
  // A right-deep OR tree needs one stack slot per nesting level; past
  // kMaxStack the compiler refuses and the interpreter takes over.
  ExprPtr deep = Col("b");
  for (int i = 0; i < 70; ++i) deep = Or(Col("b"), deep);
  ExprPtr bound = BindExpr(deep, *schema_).ValueOrDie();
  EXPECT_FALSE(CompiledPredicate::Compile(bound, *schema_).has_value());
  // A left-deep tree of the same size stays shallow and compiles.
  ExprPtr wide = Col("b");
  for (int i = 0; i < 70; ++i) wide = Or(wide, Col("b"));
  bound = BindExpr(wide, *schema_).ValueOrDie();
  EXPECT_TRUE(CompiledPredicate::Compile(bound, *schema_).has_value());
}

TEST_F(PredicateCompilerTest, SplitSeparatesResidualConjuncts) {
  ExprPtr mixed = And(Gt(Col("i64"), Lit(Value(int64_t{0}))),
                      And(Like(Col("s"), "a%"),
                          IsNotNull(Col("f64"))));
  ExprPtr bound = BindExpr(mixed, *schema_).ValueOrDie();
  PredicateSplit split = SplitForCompilation(bound, *schema_);
  ASSERT_TRUE(split.compiled.has_value());
  ASSERT_NE(split.residual, nullptr);
  EXPECT_NE(split.residual->ToString().find("LIKE"), std::string::npos);
  // compiled AND residual must reproduce the original filter decision.
  RowVec rows = SampleRows();
  for (const Row& row : rows) {
    std::vector<uint8_t> payload = Encode(row);
    bool split_keeps = split.compiled->Matches(payload.data()) &&
                       InterpreterKeeps(split.residual, row);
    EXPECT_EQ(split_keeps, InterpreterKeeps(bound, row));
  }
}

TEST_F(PredicateCompilerTest, SplitAllCompiledAndNoneCompiled) {
  ExprPtr all = BindExpr(And(Gt(Col("i64"), Lit(Value(int64_t{0}))),
                             Lt(Col("f64"), Lit(Value(9.0)))),
                         *schema_)
                    .ValueOrDie();
  PredicateSplit s1 = SplitForCompilation(all, *schema_);
  EXPECT_TRUE(s1.compiled.has_value());
  EXPECT_EQ(s1.residual, nullptr);

  ExprPtr none = BindExpr(Like(Col("s"), "a%"), *schema_).ValueOrDie();
  PredicateSplit s2 = SplitForCompilation(none, *schema_);
  EXPECT_FALSE(s2.compiled.has_value());
  ASSERT_NE(s2.residual, nullptr);
  EXPECT_NE(s2.residual->ToString().find("LIKE"), std::string::npos);
}

// The split must NOT distribute over OR: a disjunction with one
// non-compilable branch is a single conjunct and falls back whole.
TEST_F(PredicateCompilerTest, DisjunctionWithNonCompilableBranchFallsBackWhole) {
  ExprPtr pred = Or(Gt(Col("i64"), Lit(Value(int64_t{0}))),
                    Like(Col("s"), "a%"));
  ExprPtr bound = BindExpr(pred, *schema_).ValueOrDie();
  PredicateSplit split = SplitForCompilation(bound, *schema_);
  EXPECT_FALSE(split.compiled.has_value());
  ASSERT_NE(split.residual, nullptr);
  RowVec rows = SampleRows();
  for (const Row& row : rows) {
    EXPECT_EQ(InterpreterKeeps(split.residual, row),
              InterpreterKeeps(bound, row));
  }
}

TEST_F(PredicateCompilerTest, StringOrderingUsesBytewiseCompare) {
  RowVec rows = {
      {Value::Null(), Value::Null(), Value::Null(), Value::Null(), Value("a"),
       Value::Null()},
      {Value::Null(), Value::Null(), Value::Null(), Value::Null(), Value("ab"),
       Value::Null()},
      {Value::Null(), Value::Null(), Value::Null(), Value::Null(), Value("b"),
       Value::Null()},
      {Value::Null(), Value::Null(), Value::Null(), Value::Null(), Value(""),
       Value::Null()},
      // Bytes above 0x7F must compare unsigned, as std::string does.
      {Value::Null(), Value::Null(), Value::Null(), Value::Null(),
       Value(std::string("\x80\xff")), Value::Null()},
  };
  using Builder = ExprPtr (*)(ExprPtr, ExprPtr);
  for (Builder op : std::vector<Builder>{&Eq, &Ne, &Lt, &Le, &Gt, &Ge}) {
    ExpectAgrees(op(Col("s"), Lit(Value("ab"))), rows);
    ExpectAgrees(op(Col("s"), Lit(Value(std::string("\x81")))), rows);
  }
}

// ---------------------------------------------------------------------------
// EncodeFixedKeySlot: the raw-equality fast path for the indexed chain walk.
// ---------------------------------------------------------------------------

TEST(EncodeFixedKeySlotTest, AcceptsOnlyUniqueSlotImages) {
  uint64_t slot = 0;
  // int64 column: int keys encode directly; integral doubles within 2^53 too.
  EXPECT_TRUE(EncodeFixedKeySlot(TypeId::kInt64, Value(int64_t{-3}), &slot));
  EXPECT_EQ(static_cast<int64_t>(slot), -3);
  EXPECT_TRUE(EncodeFixedKeySlot(TypeId::kInt64, Value(4.0), &slot));
  EXPECT_EQ(static_cast<int64_t>(slot), 4);
  EXPECT_FALSE(EncodeFixedKeySlot(TypeId::kInt64, Value(4.5), &slot));
  EXPECT_FALSE(EncodeFixedKeySlot(TypeId::kInt64, Value(1e300), &slot));
  // Beyond 2^53 one double equals several int64s: no unique image.
  EXPECT_FALSE(EncodeFixedKeySlot(TypeId::kInt64, Value(9.2233720368547758e18),
                                  &slot));
  // int32 column stores the value zero-extended as uint32.
  EXPECT_TRUE(EncodeFixedKeySlot(TypeId::kInt32, Value(int64_t{-1}), &slot));
  uint32_t u32;
  int32_t want = -1;
  std::memcpy(&u32, &want, 4);
  EXPECT_EQ(slot, static_cast<uint64_t>(u32));
  EXPECT_FALSE(
      EncodeFixedKeySlot(TypeId::kInt32, Value(int64_t{1} << 40), &slot));
  // bool column holds only 0/1.
  EXPECT_TRUE(EncodeFixedKeySlot(TypeId::kBool, Value(true), &slot));
  EXPECT_EQ(slot, 1u);
  EXPECT_FALSE(EncodeFixedKeySlot(TypeId::kBool, Value(int64_t{2}), &slot));
  // float64 (0.0 vs -0.0) and strings (out-of-line) never qualify.
  EXPECT_FALSE(EncodeFixedKeySlot(TypeId::kFloat64, Value(1.0), &slot));
  EXPECT_FALSE(EncodeFixedKeySlot(TypeId::kString, Value("x"), &slot));
}

}  // namespace
}  // namespace idf
