// Tests for the Kafka-stand-in bounded queue and the concurrent
// update+query streaming driver (the paper's §4 demo scenario).
#include "stream/streaming_driver.h"

#include <atomic>
#include <thread>

#include <gtest/gtest.h>

#include "stream/bounded_queue.h"

namespace idf {
namespace {

TEST(BoundedQueueTest, FifoOrder) {
  BoundedQueue<int> q(4);
  q.Push(1);
  q.Push(2);
  q.Push(3);
  EXPECT_EQ(*q.Pop(), 1);
  EXPECT_EQ(*q.Pop(), 2);
  EXPECT_EQ(*q.Pop(), 3);
}

TEST(BoundedQueueTest, CloseDrainsThenSignalsEnd) {
  BoundedQueue<int> q(4);
  q.Push(1);
  q.Close();
  EXPECT_FALSE(q.Push(2));
  EXPECT_EQ(*q.Pop(), 1);
  EXPECT_FALSE(q.Pop().has_value());
  EXPECT_TRUE(q.closed());
}

TEST(BoundedQueueTest, BlocksProducerAtCapacity) {
  BoundedQueue<int> q(2);
  q.Push(1);
  q.Push(2);
  std::atomic<bool> third_pushed{false};
  std::thread producer([&] {
    q.Push(3);  // blocks until a Pop frees a slot
    third_pushed.store(true);
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(30));
  EXPECT_FALSE(third_pushed.load());
  EXPECT_EQ(*q.Pop(), 1);
  producer.join();
  EXPECT_TRUE(third_pushed.load());
}

TEST(BoundedQueueTest, ManyProducersManyConsumers) {
  BoundedQueue<int> q(8);
  constexpr int kPerProducer = 2000;
  constexpr int kProducers = 3;
  std::vector<std::thread> producers;
  for (int p = 0; p < kProducers; ++p) {
    producers.emplace_back([&q] {
      for (int i = 0; i < kPerProducer; ++i) q.Push(i);
    });
  }
  std::atomic<int> consumed{0};
  std::vector<std::thread> consumers;
  for (int c = 0; c < 2; ++c) {
    consumers.emplace_back([&] {
      while (q.Pop().has_value()) consumed.fetch_add(1);
    });
  }
  for (auto& t : producers) t.join();
  q.Close();
  for (auto& t : consumers) t.join();
  EXPECT_EQ(consumed.load(), kPerProducer * kProducers);
}

TEST(LatencyRecorderTest, PercentilesAndMean) {
  LatencyRecorder rec;
  for (int i = 1; i <= 100; ++i) rec.Add(static_cast<double>(i));
  EXPECT_EQ(rec.count(), 100u);
  EXPECT_DOUBLE_EQ(rec.Mean(), 50.5);
  EXPECT_NEAR(rec.Percentile(50), 50.5, 1.0);
  EXPECT_NEAR(rec.Percentile(99), 99, 1.1);
  EXPECT_DOUBLE_EQ(rec.Percentile(0), 1.0);
  EXPECT_DOUBLE_EQ(rec.Percentile(100), 100.0);
}

TEST(LatencyRecorderTest, EmptyIsZero) {
  LatencyRecorder rec;
  EXPECT_EQ(rec.Mean(), 0.0);
  EXPECT_EQ(rec.Percentile(99), 0.0);
}

class StreamingWorkloadTest : public ::testing::Test {
 protected:
  void SetUp() override {
    EngineConfig cfg;
    cfg.num_partitions = 4;
    cfg.num_threads = 2;
    cfg.row_batch_bytes = 64 * 1024;
    session_ = Session::Make(cfg).ValueOrDie();
    schema_ = Schema::Make({{"k", TypeId::kInt64, false},
                            {"v", TypeId::kString, true}});
    RowVec rows;
    for (int64_t i = 0; i < 100; ++i) {
      rows.push_back({Value(i % 10), Value("seed")});
    }
    auto df = session_->CreateDataFrame(schema_, rows, "s").ValueOrDie();
    idf_ = std::make_shared<IndexedDataFrame>(
        IndexedDataFrame::CreateIndex(df, 0, "stream").ValueOrDie().Cache());
  }

  SessionPtr session_;
  SchemaPtr schema_;
  std::shared_ptr<IndexedDataFrame> idf_;
};

TEST_F(StreamingWorkloadTest, AppendsAllBatchesAndRunsQueries) {
  StreamingConfig cfg;
  cfg.num_batches = 50;
  cfg.rows_per_batch = 4;
  cfg.num_query_threads = 1;
  auto report = RunStreamingWorkload(
      *idf_,
      [this](size_t b) {
        RowVec batch;
        for (size_t r = 0; r < 4; ++r) {
          batch.push_back({Value(static_cast<int64_t>(b % 10)), Value("live")});
        }
        return batch;
      },
      [this]() {
        return idf_->GetRows(Value(int64_t{3})).Collect().status();
      },
      cfg);
  ASSERT_TRUE(report.ok()) << report.status().ToString();
  EXPECT_EQ(report->batches_appended, 50u);
  EXPECT_EQ(report->rows_appended, 200u);
  EXPECT_EQ(report->final_rows, 300u);
  EXPECT_GT(report->queries_run, 0u);
  EXPECT_EQ(report->append_latency.count(), 50u);
  EXPECT_GT(report->wall_seconds, 0.0);
  EXPECT_FALSE(report->ToString().empty());
}

TEST_F(StreamingWorkloadTest, QueriesSeeMonotonicallyGrowingResults) {
  // Every query sees a consistent snapshot; for a single hot key under an
  // insert-only stream, observed result sizes must never shrink.
  std::atomic<size_t> last_size{0};
  std::atomic<uint64_t> violations{0};
  StreamingConfig cfg;
  cfg.num_batches = 100;
  cfg.rows_per_batch = 2;
  cfg.num_query_threads = 1;
  auto report = RunStreamingWorkload(
      *idf_,
      [](size_t) {
        return RowVec{{Value(int64_t{5}), Value("hot")},
                      {Value(int64_t{5}), Value("hot2")}};
      },
      [this, &last_size, &violations]() -> Status {
        auto rows = idf_->GetRows(Value(int64_t{5})).Collect();
        IDF_RETURN_NOT_OK(rows.status());
        size_t size = rows->size();
        size_t prev = last_size.load();
        if (size < prev) violations.fetch_add(1);
        last_size.store(size);
        // Every observed row must carry key 5.
        for (const Row& row : *rows) {
          if (!(row[0] == Value(int64_t{5}))) violations.fetch_add(1);
        }
        return Status::OK();
      },
      cfg);
  ASSERT_TRUE(report.ok());
  EXPECT_EQ(violations.load(), 0u);
  EXPECT_EQ(idf_->GetRows(Value(int64_t{5})).Count().ValueOrDie(),
            10u + 200u);  // 10 seed rows + 200 streamed
}

TEST_F(StreamingWorkloadTest, PropagatesQueryErrors) {
  StreamingConfig cfg;
  cfg.num_batches = 200;
  cfg.rows_per_batch = 1;
  cfg.num_query_threads = 1;
  auto report = RunStreamingWorkload(
      *idf_, [](size_t) { return RowVec{{Value(int64_t{1}), Value("x")}}; },
      []() { return Status::Internal("query exploded"); }, cfg);
  EXPECT_FALSE(report.ok());
  EXPECT_TRUE(report.status().IsInternal());
}

TEST_F(StreamingWorkloadTest, PropagatesAppendErrors) {
  StreamingConfig cfg;
  cfg.num_batches = 3;
  cfg.rows_per_batch = 1;
  cfg.num_query_threads = 0;
  auto report = RunStreamingWorkload(
      *idf_,
      [](size_t) {
        return RowVec{{Value("bad-type"), Value("x")}};  // schema mismatch
      },
      []() { return Status::OK(); }, cfg);
  EXPECT_FALSE(report.ok());
}

}  // namespace
}  // namespace idf
