// Functional tests for the CTrie: insert/lookup/remove semantics, snapshot
// isolation, collision handling (LNodes), and structural contraction.
#include "ctrie/ctrie.h"

#include <map>
#include <set>

#include <gtest/gtest.h>

#include "common/hash.h"

namespace idf {
namespace {

TEST(CTrieTest, EmptyLookupMisses) {
  CTrie t;
  EXPECT_FALSE(t.Lookup(42).has_value());
  EXPECT_EQ(t.Size(), 0u);
}

TEST(CTrieTest, InsertThenLookup) {
  CTrie t;
  EXPECT_FALSE(t.Insert(1, 100).has_value());
  auto v = t.Lookup(1);
  ASSERT_TRUE(v.has_value());
  EXPECT_EQ(*v, 100u);
}

TEST(CTrieTest, InsertReturnsPreviousValue) {
  CTrie t;
  EXPECT_FALSE(t.Insert(5, 50).has_value());
  auto prev = t.Insert(5, 51);
  ASSERT_TRUE(prev.has_value());
  EXPECT_EQ(*prev, 50u);
  EXPECT_EQ(*t.Lookup(5), 51u);
  EXPECT_EQ(t.Size(), 1u);
}

TEST(CTrieTest, RemoveReturnsValue) {
  CTrie t;
  t.Insert(9, 90);
  auto removed = t.Remove(9);
  ASSERT_TRUE(removed.has_value());
  EXPECT_EQ(*removed, 90u);
  EXPECT_FALSE(t.Lookup(9).has_value());
  EXPECT_FALSE(t.Remove(9).has_value());
}

TEST(CTrieTest, RemoveMissingKeyIsNoop) {
  CTrie t;
  t.Insert(1, 1);
  EXPECT_FALSE(t.Remove(2).has_value());
  EXPECT_EQ(t.Size(), 1u);
}

TEST(CTrieTest, ManyKeysRoundTrip) {
  CTrie t;
  for (uint64_t i = 0; i < 50000; ++i) t.Insert(i, i * 3 + 1);
  EXPECT_EQ(t.Size(), 50000u);
  EXPECT_EQ(t.size_hint(), 50000u);
  for (uint64_t i = 0; i < 50000; ++i) {
    auto v = t.Lookup(i);
    ASSERT_TRUE(v.has_value()) << i;
    EXPECT_EQ(*v, i * 3 + 1) << i;
  }
  EXPECT_FALSE(t.Lookup(50001).has_value());
}

TEST(CTrieTest, InsertRemoveInterleaved) {
  CTrie t;
  for (uint64_t i = 0; i < 10000; ++i) t.Insert(i, i);
  for (uint64_t i = 0; i < 10000; i += 2) t.Remove(i);
  EXPECT_EQ(t.Size(), 5000u);
  for (uint64_t i = 0; i < 10000; ++i) {
    EXPECT_EQ(t.Lookup(i).has_value(), i % 2 == 1) << i;
  }
}

TEST(CTrieTest, RemoveAllLeavesEmptyTrie) {
  CTrie t;
  for (uint64_t i = 0; i < 1000; ++i) t.Insert(i, i);
  for (uint64_t i = 0; i < 1000; ++i) {
    ASSERT_TRUE(t.Remove(i).has_value()) << i;
  }
  EXPECT_EQ(t.Size(), 0u);
  // Reuse after emptying must still work (contraction left a valid root).
  t.Insert(5, 55);
  EXPECT_EQ(*t.Lookup(5), 55u);
}

TEST(CTrieTest, ForEachVisitsAllPairs) {
  CTrie t;
  std::map<uint64_t, uint64_t> expected;
  for (uint64_t i = 0; i < 3000; ++i) {
    t.Insert(i * 17, i);
    expected[i * 17] = i;
  }
  std::map<uint64_t, uint64_t> seen;
  t.ForEach([&seen](uint64_t k, uint64_t v) { seen[k] = v; });
  EXPECT_EQ(seen, expected);
}

TEST(CTrieTest, SnapshotIsolatedFromLaterWrites) {
  CTrie t;
  for (uint64_t i = 0; i < 1000; ++i) t.Insert(i, i);
  CTrie snap = t.ReadOnlySnapshot();
  for (uint64_t i = 1000; i < 2000; ++i) t.Insert(i, i);
  for (uint64_t i = 0; i < 500; ++i) t.Remove(i);
  t.Insert(0, 9999);  // overwrite after remove

  EXPECT_EQ(snap.Size(), 1000u);
  for (uint64_t i = 0; i < 1000; ++i) {
    auto v = snap.Lookup(i);
    ASSERT_TRUE(v.has_value()) << i;
    EXPECT_EQ(*v, i);
  }
  EXPECT_FALSE(snap.Lookup(1500).has_value());
  EXPECT_EQ(t.Size(), 1501u);
}

TEST(CTrieTest, WritableSnapshotDivergesIndependently) {
  CTrie t;
  for (uint64_t i = 0; i < 100; ++i) t.Insert(i, i);
  CTrie snap = t.Snapshot();
  EXPECT_FALSE(snap.read_only());
  snap.Insert(200, 1);
  t.Insert(300, 2);
  EXPECT_TRUE(snap.Lookup(200).has_value());
  EXPECT_FALSE(snap.Lookup(300).has_value());
  EXPECT_FALSE(t.Lookup(200).has_value());
  EXPECT_TRUE(t.Lookup(300).has_value());
  EXPECT_EQ(snap.Size(), 101u);
  EXPECT_EQ(t.Size(), 101u);
}

TEST(CTrieTest, SnapshotOfSnapshot) {
  CTrie t;
  t.Insert(1, 1);
  CTrie s1 = t.ReadOnlySnapshot();
  t.Insert(2, 2);
  CTrie s2 = t.ReadOnlySnapshot();
  t.Insert(3, 3);
  EXPECT_EQ(s1.Size(), 1u);
  EXPECT_EQ(s2.Size(), 2u);
  EXPECT_EQ(t.Size(), 3u);
  CTrie s3 = s2.ReadOnlySnapshot();
  EXPECT_EQ(s3.Size(), 2u);
}

TEST(CTrieTest, ReadOnlySnapshotOfEmptyTrie) {
  CTrie t;
  CTrie snap = t.ReadOnlySnapshot();
  t.Insert(1, 1);
  EXPECT_EQ(snap.Size(), 0u);
  EXPECT_FALSE(snap.Lookup(1).has_value());
}

// Degenerate hash: all keys collide into 16 buckets, forcing deep paths
// and LNode collision lists.
uint64_t BadHash(uint64_t k) { return k & 0xF; }

TEST(CTrieCollisionTest, LNodeInsertLookup) {
  CTrie t(&BadHash);
  for (uint64_t i = 0; i < 500; ++i) t.Insert(i, i + 1);
  EXPECT_EQ(t.Size(), 500u);
  for (uint64_t i = 0; i < 500; ++i) {
    auto v = t.Lookup(i);
    ASSERT_TRUE(v.has_value()) << i;
    EXPECT_EQ(*v, i + 1);
  }
  EXPECT_FALSE(t.Lookup(1000).has_value());
}

TEST(CTrieCollisionTest, LNodeUpdateReturnsPrevious) {
  CTrie t(&BadHash);
  for (uint64_t i = 0; i < 100; ++i) t.Insert(i, i);
  auto prev = t.Insert(37, 999);
  ASSERT_TRUE(prev.has_value());
  EXPECT_EQ(*prev, 37u);
  EXPECT_EQ(*t.Lookup(37), 999u);
  EXPECT_EQ(t.Size(), 100u);
}

TEST(CTrieCollisionTest, LNodeRemove) {
  CTrie t(&BadHash);
  for (uint64_t i = 0; i < 64; ++i) t.Insert(i, i);
  for (uint64_t i = 0; i < 64; i += 2) {
    auto removed = t.Remove(i);
    ASSERT_TRUE(removed.has_value()) << i;
  }
  EXPECT_EQ(t.Size(), 32u);
  for (uint64_t i = 1; i < 64; i += 2) {
    EXPECT_TRUE(t.Lookup(i).has_value()) << i;
  }
}

TEST(CTrieCollisionTest, SnapshotWithCollisions) {
  CTrie t(&BadHash);
  for (uint64_t i = 0; i < 200; ++i) t.Insert(i, i);
  CTrie snap = t.ReadOnlySnapshot();
  for (uint64_t i = 200; i < 400; ++i) t.Insert(i, i);
  for (uint64_t i = 0; i < 100; ++i) t.Remove(i);
  EXPECT_EQ(snap.Size(), 200u);
  EXPECT_EQ(t.Size(), 300u);
  EXPECT_TRUE(snap.Lookup(50).has_value());
  EXPECT_FALSE(t.Lookup(50).has_value());
}

TEST(CTrieTest, MoveTransfersContents) {
  CTrie t;
  t.Insert(1, 10);
  CTrie moved = std::move(t);
  EXPECT_EQ(*moved.Lookup(1), 10u);
  moved.Insert(2, 20);
  EXPECT_EQ(moved.Size(), 2u);
}

TEST(CTrieTest, AllocatedNodesGrowWithInserts) {
  CTrie t;
  size_t before = t.allocated_nodes();
  for (uint64_t i = 0; i < 100; ++i) t.Insert(i, i);
  EXPECT_GT(t.allocated_nodes(), before);
  EXPECT_GT(t.MemoryBytesEstimate(), 0u);
}

class CTrieSweepTest : public ::testing::TestWithParam<size_t> {};

TEST_P(CTrieSweepTest, InsertLookupRemoveAtScale) {
  const size_t n = GetParam();
  CTrie t;
  Random64 rng(n);
  std::map<uint64_t, uint64_t> model;
  for (size_t i = 0; i < n; ++i) {
    uint64_t k = rng.Uniform(n * 2);
    uint64_t v = rng.Next();
    auto prev = t.Insert(k, v);
    auto it = model.find(k);
    if (it == model.end()) {
      EXPECT_FALSE(prev.has_value());
    } else {
      ASSERT_TRUE(prev.has_value());
      EXPECT_EQ(*prev, it->second);
    }
    model[k] = v;
  }
  EXPECT_EQ(t.Size(), model.size());
  for (const auto& [k, v] : model) {
    auto found = t.Lookup(k);
    ASSERT_TRUE(found.has_value());
    EXPECT_EQ(*found, v);
  }
  // Remove a random half and re-verify against the model.
  size_t removed = 0;
  for (auto it = model.begin(); it != model.end();) {
    if (rng.Uniform(2) == 0) {
      auto r = t.Remove(it->first);
      ASSERT_TRUE(r.has_value());
      EXPECT_EQ(*r, it->second);
      it = model.erase(it);
      ++removed;
    } else {
      ++it;
    }
  }
  EXPECT_EQ(t.Size(), model.size());
  for (const auto& [k, v] : model) {
    EXPECT_EQ(*t.Lookup(k), v);
  }
}

INSTANTIATE_TEST_SUITE_P(Sizes, CTrieSweepTest,
                         ::testing::Values(16, 256, 4096, 65536));

}  // namespace
}  // namespace idf
