// Tests for the SNB-like datagen, the update stream, and — crucially — the
// equivalence of the vanilla and indexed implementations of all seven
// short-read queries.
#include "snb/short_queries.h"
#include "snb/update_stream.h"

#include <set>

#include <gtest/gtest.h>

namespace idf {
namespace snb {
namespace {

SnbConfig SmallConfig() {
  SnbConfig cfg;
  cfg.scale_factor = 0.2;  // 200 persons
  cfg.seed = 7;
  return cfg;
}

TEST(SnbDatagenTest, DeterministicForSameSeed) {
  SnbDataset a = GenerateSnb(SmallConfig());
  SnbDataset b = GenerateSnb(SmallConfig());
  ASSERT_EQ(a.persons.size(), b.persons.size());
  ASSERT_EQ(a.knows.size(), b.knows.size());
  EXPECT_EQ(a.persons[0], b.persons[0]);
  EXPECT_EQ(a.knows.back(), b.knows.back());
  EXPECT_EQ(a.posts[a.posts.size() / 2], b.posts[b.posts.size() / 2]);
}

TEST(SnbDatagenTest, DifferentSeedsDiffer) {
  SnbConfig c1 = SmallConfig();
  SnbConfig c2 = SmallConfig();
  c2.seed = 8;
  SnbDataset a = GenerateSnb(c1);
  SnbDataset b = GenerateSnb(c2);
  EXPECT_NE(a.persons[0], b.persons[0]);
}

TEST(SnbDatagenTest, SizesScaleWithFactor) {
  SnbConfig small = SmallConfig();
  SnbConfig big = SmallConfig();
  big.scale_factor = 1.0;
  SnbDataset a = GenerateSnb(small);
  SnbDataset b = GenerateSnb(big);
  EXPECT_EQ(a.persons.size(), 200u);
  EXPECT_EQ(b.persons.size(), 1000u);
  EXPECT_GT(b.knows.size(), a.knows.size() * 3);
  EXPECT_EQ(b.posts.size(), 12000u);
  EXPECT_EQ(b.comments.size(), 18000u);
}

TEST(SnbDatagenTest, RowsValidateAgainstSchemas) {
  SnbDataset ds = GenerateSnb(SmallConfig());
  for (const Row& r : ds.persons) ASSERT_TRUE(ValidateRow(*PersonSchema(), r).ok());
  for (const Row& r : ds.knows) ASSERT_TRUE(ValidateRow(*KnowsSchema(), r).ok());
  for (const Row& r : ds.posts) ASSERT_TRUE(ValidateRow(*PostSchema(), r).ok());
  for (const Row& r : ds.comments) {
    ASSERT_TRUE(ValidateRow(*CommentSchema(), r).ok());
  }
  for (const Row& r : ds.forums) ASSERT_TRUE(ValidateRow(*ForumSchema(), r).ok());
  for (const Row& r : ds.forum_members) {
    ASSERT_TRUE(ValidateRow(*ForumMemberSchema(), r).ok());
  }
}

TEST(SnbDatagenTest, ForeignKeysResolve) {
  SnbDataset ds = GenerateSnb(SmallConfig());
  std::set<int64_t> person_ids;
  for (const Row& r : ds.persons) person_ids.insert(r[person::kId].AsInt64());
  for (const Row& r : ds.knows) {
    ASSERT_TRUE(person_ids.count(r[knows::kPerson1].AsInt64()));
    ASSERT_TRUE(person_ids.count(r[knows::kPerson2].AsInt64()));
    ASSERT_NE(r[knows::kPerson1], r[knows::kPerson2]);  // no self-loops
  }
  std::set<int64_t> post_ids;
  for (const Row& r : ds.posts) {
    post_ids.insert(r[post::kId].AsInt64());
    ASSERT_TRUE(person_ids.count(r[post::kCreatorId].AsInt64()));
  }
  for (const Row& r : ds.comments) {
    ASSERT_TRUE(post_ids.count(r[comment::kReplyOfPostId].AsInt64()));
    ASSERT_TRUE(person_ids.count(r[comment::kCreatorId].AsInt64()));
  }
}

TEST(SnbDatagenTest, KnowsEdgesAreSymmetric) {
  SnbDataset ds = GenerateSnb(SmallConfig());
  std::set<std::pair<int64_t, int64_t>> edges;
  for (const Row& r : ds.knows) {
    edges.insert({r[knows::kPerson1].AsInt64(), r[knows::kPerson2].AsInt64()});
  }
  for (const auto& [a, b] : edges) {
    EXPECT_TRUE(edges.count({b, a})) << a << "-" << b;
  }
}

TEST(SnbDatagenTest, AuthorshipIsSkewed) {
  SnbDataset ds = GenerateSnb(SmallConfig());
  std::map<int64_t, int> posts_per_person;
  for (const Row& r : ds.posts) ++posts_per_person[r[post::kCreatorId].AsInt64()];
  int max_posts = 0;
  for (const auto& [id, n] : posts_per_person) max_posts = std::max(max_posts, n);
  double avg = static_cast<double>(ds.posts.size()) /
               static_cast<double>(ds.persons.size());
  EXPECT_GT(max_posts, 3 * avg);  // heavy hitters exist
}

TEST(UpdateStreamTest, FreshIdsContinueBeyondBase) {
  SnbDataset ds = GenerateSnb(SmallConfig());
  UpdateStreamGenerator gen(ds);
  RowVec posts = gen.NextPostBatch(10);
  ASSERT_EQ(posts.size(), 10u);
  for (const Row& r : posts) {
    EXPECT_GE(r[post::kId].AsInt64(), ds.first_post_id + ds.num_posts);
    ASSERT_TRUE(ValidateRow(*PostSchema(), r).ok());
  }
  RowVec comments = gen.NextCommentBatch(10);
  for (const Row& r : comments) {
    EXPECT_GE(r[comment::kId].AsInt64(), ds.first_comment_id + ds.num_comments);
    ASSERT_TRUE(ValidateRow(*CommentSchema(), r).ok());
  }
}

TEST(UpdateStreamTest, KnowsBatchesAreSymmetricPairs) {
  SnbDataset ds = GenerateSnb(SmallConfig());
  UpdateStreamGenerator gen(ds);
  RowVec edges = gen.NextKnowsBatch(5);
  ASSERT_EQ(edges.size(), 10u);
  for (size_t i = 0; i < edges.size(); i += 2) {
    EXPECT_EQ(edges[i][knows::kPerson1], edges[i + 1][knows::kPerson2]);
    EXPECT_EQ(edges[i][knows::kPerson2], edges[i + 1][knows::kPerson1]);
    ASSERT_TRUE(ValidateRow(*KnowsSchema(), edges[i]).ok());
  }
}

class SnbQueryTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    EngineConfig cfg;
    cfg.num_partitions = 4;
    cfg.num_threads = 2;
    cfg.row_batch_bytes = 256 * 1024;
    auto session = Session::Make(cfg).ValueOrDie();
    ctx_ = new SnbContext(
        MakeSnbContext(session, GenerateSnb(SmallConfig())).ValueOrDie());
  }
  static void TearDownTestSuite() {
    delete ctx_;
    ctx_ = nullptr;
  }
  static SnbContext* ctx_;
};

SnbContext* SnbQueryTest::ctx_ = nullptr;

class SnbQueryEquivalence : public SnbQueryTest,
                            public ::testing::WithParamInterface<int> {};

TEST_P(SnbQueryEquivalence, IndexedMatchesVanilla) {
  const int q = GetParam();
  // Exercise several parameters per query, including misses.
  std::vector<int64_t> params = {DefaultParam(*ctx_, q)};
  if (q <= 3) {
    params.push_back(ctx_->dataset.first_person_id);
    params.push_back(ctx_->dataset.first_person_id + 7);
    params.push_back(-1);  // miss
  } else if (q == 4 || q == 7) {
    params.push_back(ctx_->dataset.first_post_id);
    params.push_back(-1);
  } else {
    params.push_back(ctx_->dataset.first_comment_id);
    params.push_back(-1);
  }
  for (int64_t param : params) {
    RowVec vanilla = RunShortQuery(*ctx_, q, /*indexed=*/false, param).ValueOrDie();
    RowVec indexed = RunShortQuery(*ctx_, q, /*indexed=*/true, param).ValueOrDie();
    SortRows(&vanilla);
    SortRows(&indexed);
    EXPECT_EQ(vanilla, indexed) << "SQ" << q << " param " << param;
  }
}

INSTANTIATE_TEST_SUITE_P(AllSevenQueries, SnbQueryEquivalence,
                         ::testing::Range(1, 8));

TEST_F(SnbQueryTest, DefaultParamsProduceNonEmptyResultsWhereExpected) {
  // SQ1 (profile), SQ4 (message) always hit with the default parameter.
  EXPECT_EQ(RunShortQuery(*ctx_, 1, true, DefaultParam(*ctx_, 1))
                .ValueOrDie()
                .size(),
            1u);
  EXPECT_EQ(RunShortQuery(*ctx_, 4, true, DefaultParam(*ctx_, 4))
                .ValueOrDie()
                .size(),
            1u);
  EXPECT_FALSE(RunShortQuery(*ctx_, 7, true, DefaultParam(*ctx_, 7))
                   .ValueOrDie()
                   .empty());
}

TEST_F(SnbQueryTest, InvalidQueryNumberRejected) {
  EXPECT_TRUE(RunShortQuery(*ctx_, 0, true, 1).status().IsInvalidArgument());
  EXPECT_TRUE(RunShortQuery(*ctx_, 8, true, 1).status().IsInvalidArgument());
}

TEST_F(SnbQueryTest, IndexedPointQueriesUseTheIndex) {
  ctx_->session->metrics().Reset();
  RunShortQuery(*ctx_, 1, /*indexed=*/true, DefaultParam(*ctx_, 1)).ValueOrDie();
  EXPECT_GE(ctx_->session->metrics().index_probes(), 1u);
}

TEST_F(SnbQueryTest, VanillaQueriesDoNotTouchTheIndex) {
  ctx_->session->metrics().Reset();
  RunShortQuery(*ctx_, 1, /*indexed=*/false, DefaultParam(*ctx_, 1)).ValueOrDie();
  EXPECT_EQ(ctx_->session->metrics().index_probes(), 0u);
}

TEST_F(SnbQueryTest, QueriesReflectAppendedData) {
  // Append a fresh burst of replies to the SQ7 post; the indexed query
  // must see them immediately (the paper's updatable-cache claim).
  int64_t post_id = DefaultParam(*ctx_, 7);
  size_t before =
      RunShortQuery(*ctx_, 7, true, post_id).ValueOrDie().size();
  UpdateStreamGenerator gen(ctx_->dataset);
  RowVec burst;
  for (int i = 0; i < 5; ++i) {
    RowVec batch = gen.NextCommentBatch(1);
    batch[0][comment::kReplyOfPostId] = Value(post_id);
    burst.push_back(batch[0]);
  }
  ASSERT_TRUE(ctx_->comment_by_reply->AppendRowsDirect(burst).ok());
  size_t after = RunShortQuery(*ctx_, 7, true, post_id).ValueOrDie().size();
  EXPECT_EQ(after, before + 5);
}

TEST_F(SnbQueryTest, DescriptionsExist) {
  for (int q = 1; q <= 7; ++q) {
    EXPECT_NE(std::string(ShortQueryDescription(q)), "unknown");
  }
}

}  // namespace
}  // namespace snb
}  // namespace idf
