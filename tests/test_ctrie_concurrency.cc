// Concurrency tests for the CTrie: concurrent writers, readers racing
// writers, and snapshot linearizability under mutation — the properties
// the Indexed DataFrame's multi-version concurrency relies on.
#include <atomic>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "common/hash.h"
#include "ctrie/ctrie.h"

namespace idf {
namespace {

TEST(CTrieConcurrencyTest, DisjointWritersAllLand) {
  CTrie t;
  constexpr int kWriters = 8;
  constexpr uint64_t kPerWriter = 20000;
  std::vector<std::thread> threads;
  for (int w = 0; w < kWriters; ++w) {
    threads.emplace_back([&t, w] {
      for (uint64_t i = 0; i < kPerWriter; ++i) {
        t.Insert(static_cast<uint64_t>(w) * 1000000 + i, i);
      }
    });
  }
  for (auto& th : threads) th.join();
  EXPECT_EQ(t.Size(), kWriters * kPerWriter);
  for (int w = 0; w < kWriters; ++w) {
    for (uint64_t i = 0; i < kPerWriter; i += 997) {
      auto v = t.Lookup(static_cast<uint64_t>(w) * 1000000 + i);
      ASSERT_TRUE(v.has_value());
      EXPECT_EQ(*v, i);
    }
  }
}

TEST(CTrieConcurrencyTest, OverlappingWritersLastValueWins) {
  CTrie t;
  constexpr int kWriters = 6;
  constexpr uint64_t kKeys = 512;
  std::vector<std::thread> threads;
  for (int w = 0; w < kWriters; ++w) {
    threads.emplace_back([&t, w] {
      for (int round = 0; round < 50; ++round) {
        for (uint64_t k = 0; k < kKeys; ++k) {
          t.Insert(k, static_cast<uint64_t>(w) * 1000 + static_cast<uint64_t>(round));
        }
      }
    });
  }
  for (auto& th : threads) th.join();
  EXPECT_EQ(t.Size(), kKeys);
  for (uint64_t k = 0; k < kKeys; ++k) {
    auto v = t.Lookup(k);
    ASSERT_TRUE(v.has_value());
    // The surviving value must be one some writer actually wrote.
    EXPECT_LT(*v % 1000, 50u);
    EXPECT_LT(*v / 1000, static_cast<uint64_t>(kWriters));
  }
}

TEST(CTrieConcurrencyTest, ReadersNeverSeeTornState) {
  CTrie t;
  std::atomic<bool> stop{false};
  std::atomic<uint64_t> write_floor{0};
  std::thread writer([&] {
    for (uint64_t i = 0; i < 200000; ++i) {
      t.Insert(i, i + 1);
      write_floor.store(i, std::memory_order_release);
    }
    stop.store(true);
  });
  std::vector<std::thread> readers;
  std::atomic<uint64_t> errors{0};
  for (int r = 0; r < 3; ++r) {
    readers.emplace_back([&, r] {
      Random64 rng(static_cast<uint64_t>(r) + 1);
      while (!stop.load()) {
        uint64_t floor = write_floor.load(std::memory_order_acquire);
        if (floor == 0) continue;
        uint64_t k = rng.Uniform(floor);
        auto v = t.Lookup(k);
        // Keys below the write floor are guaranteed present, and a present
        // value must be exactly k+1 (values are written once).
        if (!v.has_value() || *v != k + 1) errors.fetch_add(1);
      }
    });
  }
  writer.join();
  for (auto& th : readers) th.join();
  EXPECT_EQ(errors.load(), 0u);
}

TEST(CTrieConcurrencyTest, SnapshotsAreStableUnderConcurrentWrites) {
  CTrie t;
  for (uint64_t i = 0; i < 10000; ++i) t.Insert(i, i);

  std::atomic<bool> stop{false};
  std::thread writer([&] {
    uint64_t next = 10000;
    while (!stop.load()) {
      t.Insert(next, next);
      ++next;
    }
  });

  // Take snapshots while the writer runs; each must keep a fixed size no
  // matter how long we hold it.
  for (int i = 0; i < 30; ++i) {
    CTrie snap = t.ReadOnlySnapshot();
    size_t size1 = snap.Size();
    size_t size2 = snap.Size();
    EXPECT_EQ(size1, size2);
    EXPECT_GE(size1, 10000u);
    // Original keys always present in any snapshot.
    EXPECT_TRUE(snap.Lookup(1234).has_value());
  }
  stop.store(true);
  writer.join();
}

TEST(CTrieConcurrencyTest, SnapshotSizesMonotonicInInsertOnlyWorkload) {
  CTrie t;
  std::atomic<bool> stop{false};
  std::thread writer([&] {
    uint64_t next = 0;
    while (!stop.load()) t.Insert(next++, 1);
  });
  size_t last = 0;
  for (int i = 0; i < 50; ++i) {
    CTrie snap = t.ReadOnlySnapshot();
    size_t size = snap.Size();
    EXPECT_GE(size, last) << "snapshot went backwards";
    last = size;
  }
  stop.store(true);
  writer.join();
}

TEST(CTrieConcurrencyTest, MixedRemoveInsertKeysStayConsistent) {
  // Writer A inserts evens, writer B removes them, reader checks that odd
  // sentinel keys (never touched) survive every interleaving.
  CTrie t;
  for (uint64_t i = 1; i < 2000; i += 2) t.Insert(i, i);
  std::atomic<bool> stop{false};
  std::thread inserter([&] {
    Random64 rng(1);
    while (!stop.load()) {
      uint64_t k = rng.Uniform(1000) * 2;
      t.Insert(k, k);
    }
  });
  std::thread remover([&] {
    Random64 rng(2);
    while (!stop.load()) {
      uint64_t k = rng.Uniform(1000) * 2;
      t.Remove(k);
    }
  });
  std::atomic<uint64_t> errors{0};
  std::thread reader([&] {
    Random64 rng(3);
    for (int i = 0; i < 200000; ++i) {
      uint64_t k = rng.Uniform(1000) * 2 + 1;
      auto v = t.Lookup(k);
      if (!v.has_value() || *v != k) errors.fetch_add(1);
    }
    stop.store(true);
  });
  reader.join();
  inserter.join();
  remover.join();
  EXPECT_EQ(errors.load(), 0u);
  for (uint64_t i = 1; i < 2000; i += 2) {
    EXPECT_TRUE(t.Lookup(i).has_value()) << i;
  }
}

TEST(CTrieConcurrencyTest, CollidingHashConcurrentWriters) {
  // Degenerate hash forces all operations through shared LNode chains.
  CTrie t([](uint64_t k) { return k & 0x7; });
  std::vector<std::thread> threads;
  for (int w = 0; w < 4; ++w) {
    threads.emplace_back([&t, w] {
      for (uint64_t i = 0; i < 500; ++i) {
        t.Insert(static_cast<uint64_t>(w) * 10000 + i, i);
      }
    });
  }
  for (auto& th : threads) th.join();
  EXPECT_EQ(t.Size(), 2000u);
  for (int w = 0; w < 4; ++w) {
    for (uint64_t i = 0; i < 500; ++i) {
      auto v = t.Lookup(static_cast<uint64_t>(w) * 10000 + i);
      ASSERT_TRUE(v.has_value());
      EXPECT_EQ(*v, i);
    }
  }
}

}  // namespace
}  // namespace idf
