// Unit and property tests for the packed 64-bit row pointer.
#include "storage/packed_pointer.h"

#include <gtest/gtest.h>

#include "common/hash.h"

namespace idf {
namespace {

TEST(PackedPointerTest, BitBudgetMatchesPaper) {
  // "2^31 row batches, each of which may have up to 4 MB" plus the size of
  // the previous row on the key's chain.
  EXPECT_EQ(PackedPointer::kBatchBits, 31);
  EXPECT_EQ(PackedPointer::kMaxBatch, (1ULL << 31) - 1);
  EXPECT_EQ(PackedPointer::kMaxOffset + 1, 4ULL * 1024 * 1024);
  EXPECT_GE(PackedPointer::kMaxRowSize, 1024u);  // rows up to 1 KB
}

TEST(PackedPointerTest, DefaultIsNull) {
  PackedPointer p;
  EXPECT_TRUE(p.is_null());
  EXPECT_EQ(p.bits(), PackedPointer::kNullBits);
  EXPECT_TRUE(PackedPointer::Null().is_null());
}

TEST(PackedPointerTest, RoundTripFields) {
  PackedPointer p = PackedPointer::Make(12345, 678901, 512);
  EXPECT_FALSE(p.is_null());
  EXPECT_EQ(p.batch(), 12345u);
  EXPECT_EQ(p.offset(), 678901u);
  EXPECT_EQ(p.prev_size(), 512u);
}

TEST(PackedPointerTest, ZeroFieldsAreValid) {
  PackedPointer p = PackedPointer::Make(0, 0, 0);
  EXPECT_FALSE(p.is_null());
  EXPECT_EQ(p.bits(), 0u);
}

TEST(PackedPointerTest, MaxFieldsRoundTrip) {
  PackedPointer p = PackedPointer::Make(PackedPointer::kMaxBatch,
                                        PackedPointer::kMaxOffset, 0);
  EXPECT_EQ(p.batch(), PackedPointer::kMaxBatch);
  EXPECT_EQ(p.offset(), PackedPointer::kMaxOffset);
  EXPECT_EQ(p.prev_size(), 0u);
  EXPECT_FALSE(p.is_null());
}

TEST(PackedPointerTest, MakeCheckedRejectsOutOfRange) {
  EXPECT_TRUE(
      PackedPointer::MakeChecked(PackedPointer::kMaxBatch + 1, 0, 0).is_null());
  EXPECT_TRUE(
      PackedPointer::MakeChecked(0, PackedPointer::kMaxOffset + 1, 0).is_null());
  EXPECT_TRUE(
      PackedPointer::MakeChecked(0, 0, PackedPointer::kMaxRowSize + 1).is_null());
}

TEST(PackedPointerTest, MakeCheckedRejectsNullSentinelCollision) {
  // All-max fields would collide with the null sentinel.
  EXPECT_TRUE(PackedPointer::MakeChecked(PackedPointer::kMaxBatch,
                                         PackedPointer::kMaxOffset,
                                         PackedPointer::kMaxRowSize)
                  .is_null());
}

TEST(PackedPointerTest, BitsRoundTrip) {
  PackedPointer p = PackedPointer::Make(7, 9, 11);
  PackedPointer q(p.bits());
  EXPECT_EQ(p, q);
}

TEST(PackedPointerTest, EqualityOperators) {
  EXPECT_EQ(PackedPointer::Make(1, 2, 3), PackedPointer::Make(1, 2, 3));
  EXPECT_NE(PackedPointer::Make(1, 2, 3), PackedPointer::Make(1, 2, 4));
}

TEST(PackedPointerTest, ToStringRendersFields) {
  EXPECT_EQ(PackedPointer::Null().ToString(), "ptr(null)");
  std::string s = PackedPointer::Make(1, 2, 3).ToString();
  EXPECT_NE(s.find("batch=1"), std::string::npos);
  EXPECT_NE(s.find("offset=2"), std::string::npos);
  EXPECT_NE(s.find("prev_size=3"), std::string::npos);
}

TEST(PackedPointerPropertyTest, RandomizedRoundTrip) {
  Random64 rng(99);
  for (int i = 0; i < 100000; ++i) {
    uint64_t batch = rng.Uniform(PackedPointer::kMaxBatch + 1);
    uint64_t offset = rng.Uniform(PackedPointer::kMaxOffset + 1);
    uint64_t prev = rng.Uniform(PackedPointer::kMaxRowSize + 1);
    PackedPointer p = PackedPointer::MakeChecked(batch, offset, prev);
    if (p.is_null()) {
      // Only the all-max sentinel collision may be rejected in-range.
      EXPECT_EQ(batch, PackedPointer::kMaxBatch);
      EXPECT_EQ(offset, PackedPointer::kMaxOffset);
      EXPECT_EQ(prev, PackedPointer::kMaxRowSize);
      continue;
    }
    EXPECT_EQ(p.batch(), batch);
    EXPECT_EQ(p.offset(), offset);
    EXPECT_EQ(p.prev_size(), prev);
  }
}

}  // namespace
}  // namespace idf
