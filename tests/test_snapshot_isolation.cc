// Snapshot isolation under a live append stream (the MVCC guarantee of
// the query service): a pinned snapshot must sit exactly on an epoch
// boundary — never half of a multi-partition batch, and never a row
// present in one index of a multi-indexed table but missing from another.
#include <atomic>
#include <chrono>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "indexed/indexed_dataframe.h"
#include "indexed/multi_indexed_table.h"
#include "service/query_service.h"

namespace idf {
namespace {

constexpr int64_t kBatchRows = 64;
constexpr int kBatches = 150;

SchemaPtr TwoColSchema() {
  return Schema::Make(
      {{"id", TypeId::kInt64, false}, {"owner", TypeId::kInt64, false}});
}

RowVec Batch(int batch) {
  RowVec rows;
  rows.reserve(kBatchRows);
  for (int64_t i = 0; i < kBatchRows; ++i) {
    int64_t id = batch * kBatchRows + i;
    rows.push_back({Value(id), Value(id % 50)});
  }
  return rows;
}

ServiceConfig SmallEngine() {
  ServiceConfig cfg;
  cfg.engine.num_threads = 2;
  cfg.engine.num_partitions = 8;  // batches span many partitions
  return cfg;
}

TEST(SnapshotIsolationTest, PinNeverSeesAPartialMultiPartitionBatch) {
  auto service = QueryService::Make(SmallEngine()).ValueOrDie();
  auto session = Session::Make(SmallEngine().engine).ValueOrDie();
  auto df = session->CreateDataFrame(TwoColSchema(), Batch(0), "t").ValueOrDie();
  auto rel = IndexedDataFrame::CreateIndex(df, 0, "t_by_id").ValueOrDie()
                 .relation();
  ASSERT_TRUE(service->RegisterTable("t", rel).ok());

  std::atomic<bool> done{false};
  std::atomic<int> violations{0};
  std::vector<std::thread> readers;
  for (int r = 0; r < 2; ++r) {
    readers.emplace_back([&] {
      while (!done.load(std::memory_order_acquire)) {
        ServiceSnapshot snap = service->snapshots().PinAll();
        const PinnedTable* t = snap.find("t");
        ASSERT_NE(t, nullptr);
        size_t rows = t->primary()->num_rows();
        // Every batch is kBatchRows and commits with one epoch bump, so a
        // boundary snapshot always satisfies both equalities. A torn read
        // (some partitions of a batch landed, others not yet) breaks them.
        if (rows % static_cast<size_t>(kBatchRows) != 0 ||
            rows != (snap.epoch + 1) * static_cast<size_t>(kBatchRows)) {
          violations.fetch_add(1);
        }
      }
    });
  }

  for (int b = 1; b <= kBatches; ++b) {
    ASSERT_TRUE(service->Append("t", Batch(b)).ok());
  }
  done.store(true, std::memory_order_release);
  for (std::thread& t : readers) t.join();
  EXPECT_EQ(violations.load(), 0);
  EXPECT_EQ(service->epoch(), static_cast<uint64_t>(kBatches));
  EXPECT_EQ(rel->num_rows(), static_cast<size_t>((kBatches + 1) * kBatchRows));
}

TEST(SnapshotIsolationTest, MultiIndexTablePinsAllIndexesAtOneEpoch) {
  auto service = QueryService::Make(SmallEngine()).ValueOrDie();
  auto session = Session::Make(SmallEngine().engine).ValueOrDie();
  auto df =
      session->CreateDataFrame(TwoColSchema(), Batch(0), "posts").ValueOrDie();
  auto table = std::make_shared<MultiIndexedTable>(
      MultiIndexedTable::Create(df, {"id", "owner"}, "posts").ValueOrDie());
  ASSERT_TRUE(service->RegisterTable("posts", table).ok());

  std::atomic<bool> done{false};
  std::atomic<int> violations{0};
  std::vector<std::thread> readers;
  for (int r = 0; r < 2; ++r) {
    readers.emplace_back([&] {
      while (!done.load(std::memory_order_acquire)) {
        ServiceSnapshot snap = service->snapshots().PinAll();
        const PinnedTable* t = snap.find("posts");
        ASSERT_NE(t, nullptr);
        ASSERT_EQ(t->pins.size(), 2u);
        size_t by_id = t->pins[0].second->num_rows();
        size_t by_owner = t->pins[1].second->num_rows();
        // The append fans out to both indexes inside one gate hold: the
        // two pins must agree exactly, on a batch boundary.
        if (by_id != by_owner || by_id % static_cast<size_t>(kBatchRows) != 0) {
          violations.fetch_add(1);
        }
      }
    });
  }

  for (int b = 1; b <= kBatches; ++b) {
    ASSERT_TRUE(service->Append("posts", Batch(b)).ok());
  }
  done.store(true, std::memory_order_release);
  for (std::thread& t : readers) t.join();
  EXPECT_EQ(violations.load(), 0);
}

TEST(SnapshotIsolationTest, SameEpochPinsShareTheCachedSnapshot) {
  auto service = QueryService::Make(SmallEngine()).ValueOrDie();
  auto session = Session::Make(SmallEngine().engine).ValueOrDie();
  auto df = session->CreateDataFrame(TwoColSchema(), Batch(0), "t").ValueOrDie();
  auto rel = IndexedDataFrame::CreateIndex(df, 0, "t_by_id").ValueOrDie()
                 .relation();
  ASSERT_TRUE(service->RegisterTable("t", rel).ok());
  SnapshotManager& mgr = service->snapshots();

  // No epoch moved between the pins: the second is served from the cache
  // and shares the first's pinned-snapshot objects outright.
  ServiceSnapshot a = mgr.PinAll();
  ServiceSnapshot b = mgr.PinAll();
  EXPECT_EQ(a.epoch, b.epoch);
  EXPECT_EQ(a.find("t")->primary().get(), b.find("t")->primary().get());

  // A committed batch supersedes the cache: a later pin sits on the new
  // boundary while the earlier pins still read the old one.
  ASSERT_TRUE(service->Append("t", Batch(1)).ok());
  ServiceSnapshot c = mgr.PinAll();
  EXPECT_EQ(c.epoch, a.epoch + 1);
  EXPECT_NE(c.find("t")->primary().get(), a.find("t")->primary().get());
  EXPECT_EQ(a.find("t")->primary()->num_rows(), static_cast<size_t>(kBatchRows));
  EXPECT_EQ(c.find("t")->primary()->num_rows(),
            static_cast<size_t>(2 * kBatchRows));

  // Registering a table invalidates the cache even though the epoch is
  // unchanged: the next pin must include the newcomer.
  auto df2 =
      session->CreateDataFrame(TwoColSchema(), Batch(0), "u").ValueOrDie();
  auto rel2 = IndexedDataFrame::CreateIndex(df2, 0, "u_by_id").ValueOrDie()
                  .relation();
  ASSERT_TRUE(service->RegisterTable("u", rel2).ok());
  ServiceSnapshot d = mgr.PinAll();
  EXPECT_EQ(d.epoch, c.epoch);
  ASSERT_NE(d.find("u"), nullptr);
}

TEST(SnapshotIsolationTest, SqlReadersSeeOnlyEpochBoundaries) {
  ServiceConfig cfg = SmallEngine();
  cfg.max_inflight = 4;
  auto service = QueryService::Make(cfg).ValueOrDie();
  auto session = Session::Make(cfg.engine).ValueOrDie();
  auto df = session->CreateDataFrame(TwoColSchema(), Batch(0), "t").ValueOrDie();
  auto rel = IndexedDataFrame::CreateIndex(df, 0, "t_by_id").ValueOrDie()
                 .relation();
  ASSERT_TRUE(service->RegisterTable("t", rel).ok());

  std::atomic<bool> done{false};
  std::atomic<int> violations{0};
  std::atomic<int> reads{0};
  std::vector<std::thread> readers;
  for (int r = 0; r < 3; ++r) {
    readers.emplace_back([&] {
      while (!done.load(std::memory_order_acquire)) {
        QueryResult res = service->Execute("SELECT COUNT(*) FROM t");
        if (!res.ok()) {
          violations.fetch_add(1);
          continue;
        }
        int64_t n = res.rows[0][0].int64_value();
        if (n % kBatchRows != 0 ||
            n != static_cast<int64_t>(res.epoch + 1) * kBatchRows) {
          violations.fetch_add(1);
        }
        reads.fetch_add(1);
      }
    });
  }

  for (int b = 1; b <= 60; ++b) {
    ASSERT_TRUE(service->Append("t", Batch(b)).ok());
  }
  done.store(true, std::memory_order_release);
  for (std::thread& t : readers) t.join();
  EXPECT_EQ(violations.load(), 0);
  EXPECT_GT(reads.load(), 0);
}

}  // namespace
}  // namespace idf
