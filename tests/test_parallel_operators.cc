// Differential tests for the morsel-parallel operators (DESIGN.md §10):
// aggregation, sort, and top-k must produce byte-identical results on one
// thread and on many, over randomized data with NULLs and duplicate keys.
// Both sessions share num_partitions (so the flattened input order is the
// same) and differ only in num_threads — any divergence is a real
// parallelism bug, not a partitioning artifact. Doubles are half-integers
// so floating-point sums are exact under any accumulation order.
//
// Also covered: the fused encoded aggregation path vs the generic decoded
// pipeline, and cancellation observed at morsel boundaries mid-aggregation.
// The whole binary runs under TSan in CI.
#include <algorithm>
#include <atomic>
#include <chrono>
#include <random>
#include <thread>

#include <gtest/gtest.h>

#include "common/cancellation.h"
#include "indexed/indexed_dataframe.h"
#include "indexed/indexed_operators.h"
#include "sql/session.h"

namespace idf {
namespace {

using namespace std::chrono_literals;
using Clock = CancellationToken::Clock;

SessionPtr MakeSession(int threads) {
  EngineConfig cfg;
  cfg.num_partitions = 4;  // identical in both sessions: same flatten order
  cfg.num_threads = threads;
  cfg.morsel_rows = 512;  // small grain so modest inputs split into morsels
  return Session::Make(cfg).ValueOrDie();
}

/// Randomized rows with duplicate keys, NULLs in every nullable column,
/// and half-integer doubles (exactly representable partial sums).
RowVec MakeRandomRows(size_t n, uint64_t seed) {
  std::mt19937_64 rng(seed);
  std::uniform_int_distribution<int64_t> key(0, 40);   // heavy duplication
  std::uniform_int_distribution<int64_t> val(-500, 500);
  std::uniform_int_distribution<int> null_roll(0, 9);  // ~10% NULLs
  RowVec rows;
  rows.reserve(n);
  for (size_t i = 0; i < n; ++i) {
    Value g = null_roll(rng) == 0 ? Value::Null() : Value(key(rng));
    Value v = null_roll(rng) == 0 ? Value::Null() : Value(val(rng));
    Value d = null_roll(rng) == 0 ? Value::Null() : Value(0.5 * val(rng));
    rows.push_back({Value(static_cast<int64_t>(i)), std::move(g),
                    std::move(v), std::move(d)});
  }
  return rows;
}

SchemaPtr RandomSchema() {
  return Schema::Make({{"id", TypeId::kInt64, false},
                       {"g", TypeId::kInt64, true},
                       {"v", TypeId::kInt64, true},
                       {"d", TypeId::kFloat64, true}});
}

class ParallelOperatorsTest : public ::testing::Test {
 protected:
  void SetUp() override {
    serial_ = MakeSession(1);
    parallel_ = MakeSession(4);
    rows_ = MakeRandomRows(20000, /*seed=*/42);
    serial_df_ =
        serial_->CreateDataFrame(RandomSchema(), rows_, "t").ValueOrDie();
    parallel_df_ =
        parallel_->CreateDataFrame(RandomSchema(), rows_, "t").ValueOrDie();
  }

  SessionPtr serial_;
  SessionPtr parallel_;
  RowVec rows_;
  DataFrame serial_df_;
  DataFrame parallel_df_;
};

TEST_F(ParallelOperatorsTest, AggregationMatchesSerial) {
  auto run = [](const DataFrame& df) {
    RowVec out = df.GroupByAgg({"g"}, {CountStar("cnt"),
                                       CountOf(Col("v"), "cv"),
                                       SumOf(Col("v"), "sv"),
                                       AvgOf(Col("d"), "ad"),
                                       MinOf(Col("v"), "mn"),
                                       MaxOf(Col("v"), "mx")})
                     .ValueOrDie()
                     .Collect()
                     .ValueOrDie();
    SortRows(&out);  // group output order is unspecified: canonicalize
    return out;
  };
  RowVec s = run(serial_df_);
  RowVec p = run(parallel_df_);
  ASSERT_FALSE(s.empty());
  // 41 possible keys + the NULL group.
  EXPECT_EQ(s.size(), 42u);
  EXPECT_EQ(s, p);
  EXPECT_GT(parallel_->metrics().agg_morsels(), 1u);
  EXPECT_GT(parallel_->metrics().agg_partials_merged(), 0u);
}

TEST_F(ParallelOperatorsTest, GlobalAggregationMatchesSerial) {
  auto run = [](const DataFrame& df) {
    return df.Aggregate({}, {CountStar("n"), SumOf(Col("v"), "sv"),
                             AvgOf(Col("d"), "ad")})
        .ValueOrDie()
        .Collect()
        .ValueOrDie();
  };
  RowVec s = run(serial_df_);
  RowVec p = run(parallel_df_);
  ASSERT_EQ(s.size(), 1u);
  EXPECT_EQ(s, p);
  EXPECT_EQ(s[0][0], Value(int64_t{20000}));
}

TEST_F(ParallelOperatorsTest, SortMatchesSerialExactly) {
  auto run = [](const DataFrame& df) {
    // Mixed directions over duplicate-heavy nullable keys; `id` is unique,
    // so with the stable tie-break the full output order is deterministic.
    return df.Sort({{Col("g"), true}, {Col("v"), false}})
        .ValueOrDie()
        .Collect()
        .ValueOrDie();
  };
  RowVec s = run(serial_df_);
  RowVec p = run(parallel_df_);
  ASSERT_EQ(s.size(), rows_.size());
  // Exact order equality, not just same multiset: the parallel merge must
  // reproduce the serial (stable) order including ties.
  EXPECT_EQ(s, p);
  for (size_t i = 1; i < s.size(); ++i) {
    // Sorted on g ascending (nulls first, Value::operator<).
    EXPECT_FALSE(s[i][1] < s[i - 1][1]) << "row " << i << " out of order";
  }
}

TEST_F(ParallelOperatorsTest, TopKMatchesSerialExactly) {
  for (size_t k : {1u, 7u, 1000u, 50000u}) {  // 50000 > input: full sort
    auto run = [k](const DataFrame& df) {
      return df.Sort({{Col("v"), true}, {Col("id"), true}})
          .ValueOrDie()
          .Limit(k)
          .ValueOrDie()
          .Collect()
          .ValueOrDie();
    };
    RowVec s = run(serial_df_);
    RowVec p = run(parallel_df_);
    EXPECT_EQ(s.size(), std::min(k, rows_.size()));
    EXPECT_EQ(s, p) << "k=" << k;
  }
}

TEST_F(ParallelOperatorsTest, TopKZeroRowsAndZeroK) {
  RowVec s = serial_df_.Sort({{Col("v"), true}})
                 .ValueOrDie()
                 .Limit(0)
                 .ValueOrDie()
                 .Collect()
                 .ValueOrDie();
  EXPECT_TRUE(s.empty());
}

// ---------------------------------------------------------------------------
// Fused encoded aggregation (IndexedScanAggregateOp) vs the generic decoded
// pipeline, and cancellation at morsel boundaries.
// ---------------------------------------------------------------------------

class FusedAggregateTest : public ::testing::Test {
 protected:
  void SetUp() override {
    session_ = MakeSession(4);
    schema_ = Schema::Make({{"k", TypeId::kInt64, false},
                            {"g", TypeId::kInt64, false},
                            {"v", TypeId::kInt64, false},
                            {"d", TypeId::kFloat64, false}});
    RowVec rows;
    rows.reserve(kRows);
    for (int64_t i = 0; i < kRows; ++i) {
      rows.push_back({Value(i), Value(i % 64), Value(i % 1000),
                      Value(0.5 * (i % 97))});
    }
    auto df = session_->CreateDataFrame(schema_, rows, "t").ValueOrDie();
    rel_ = IndexedDataFrame::CreateIndex(df, 0, "t_by_k").ValueOrDie()
               .relation();

    pred_ = BindExpr(Lt(Col("v"), Lit(Value(int64_t{700}))), *schema_)
                .ValueOrDie();
    groups_ = {BindExpr(Col("g"), *schema_).ValueOrDie()};
    aggs_ = {CountStar("cnt"),
             SumOf(BindExpr(Col("v"), *schema_).ValueOrDie(), "sv"),
             AvgOf(BindExpr(Col("d"), *schema_).ValueOrDie(), "ad"),
             MinOf(BindExpr(Col("v"), *schema_).ValueOrDie(), "mn"),
             MaxOf(BindExpr(Col("v"), *schema_).ValueOrDie(), "mx")};
    out_schema_ = Schema::Make({{"g", TypeId::kInt64, false},
                                {"cnt", TypeId::kInt64, false},
                                {"sv", TypeId::kInt64, true},
                                {"ad", TypeId::kFloat64, true},
                                {"mn", TypeId::kInt64, true},
                                {"mx", TypeId::kInt64, true}});
  }

  PhysicalOpPtr MakeFused() {
    return std::make_shared<IndexedScanAggregateOp>(
        rel_, pred_, PushedFilter::FromSplit(SplitForCompilation(pred_, *schema_)),
        groups_, aggs_, out_schema_);
  }

  PhysicalOpPtr MakeGeneric() {
    return std::make_shared<HashAggregateOp>(
        std::make_shared<FilterOp>(std::make_shared<IndexedScanOp>(rel_), pred_),
        groups_, aggs_, out_schema_);
  }

  static constexpr int64_t kRows = 50000;
  SessionPtr session_;
  SchemaPtr schema_;
  IndexedRelationPtr rel_;
  ExprPtr pred_;
  std::vector<ExprPtr> groups_;
  std::vector<AggSpec> aggs_;
  SchemaPtr out_schema_;
};

TEST_F(FusedAggregateTest, EncodedPathMatchesDecodedPipeline) {
  session_->metrics().Reset();
  RowVec fused = CollectRows(MakeFused()->Execute(session_->exec()).ValueOrDie());
  const auto& m = session_->metrics();
  EXPECT_GT(m.rows_aggregated_encoded(), 0u);
  EXPECT_GT(m.agg_morsels(), 1u);

  RowVec generic =
      CollectRows(MakeGeneric()->Execute(session_->exec()).ValueOrDie());
  SortRows(&fused);
  SortRows(&generic);
  ASSERT_EQ(fused.size(), 64u);
  EXPECT_EQ(fused, generic);
}

TEST_F(FusedAggregateTest, ExpiredDeadlineStopsAggregationPromptly) {
  session_->exec().SetCancellation(
      CancellationToken::WithDeadline(Clock::now() - 1ms));
  auto result = MakeFused()->Execute(session_->exec());
  session_->exec().SetCancellation(nullptr);
  ASSERT_FALSE(result.ok());
  EXPECT_TRUE(result.status().IsDeadlineExceeded())
      << result.status().ToString();
}

TEST_F(FusedAggregateTest, ConcurrentCancelMidAggregationIsCleanOrComplete) {
  auto token = CancellationToken::Make();
  session_->exec().SetCancellation(token);
  std::atomic<bool> done{false};
  std::thread canceller([&] {
    // Fire mid-flight if the aggregation is still running; a no-op if it
    // already finished (both outcomes are asserted below).
    std::this_thread::sleep_for(500us);
    if (!done.load()) token->Cancel();
  });
  auto result = MakeFused()->Execute(session_->exec());
  done.store(true);
  canceller.join();
  session_->exec().SetCancellation(nullptr);
  if (result.ok()) {
    // Won the race: the output must still be complete and correct.
    EXPECT_EQ(TotalRows(*result), 64u);
  } else {
    EXPECT_TRUE(result.status().IsCancelled()) << result.status().ToString();
  }
}

TEST_F(FusedAggregateTest, CancelledSortReturnsCancelled) {
  auto scan = std::make_shared<IndexedScanOp>(rel_);
  SortOp sort(scan, {{groups_[0], true}});
  auto token = CancellationToken::Make();
  token->Cancel();
  session_->exec().SetCancellation(token);
  auto result = sort.Execute(session_->exec());
  session_->exec().SetCancellation(nullptr);
  ASSERT_FALSE(result.ok());
  EXPECT_TRUE(result.status().IsCancelled()) << result.status().ToString();
}

}  // namespace
}  // namespace idf
