// Cooperative cancellation and deadlines: token semantics, prompt
// deadline-exceeded returns (bounded by one morsel, not by the full
// scan), and admission-slot release on every outcome so cancelled or
// expired queries never leak capacity.
#include <atomic>
#include <chrono>
#include <thread>

#include <gtest/gtest.h>

#include "common/cancellation.h"
#include "indexed/indexed_dataframe.h"
#include "service/query_service.h"

namespace idf {
namespace {

using namespace std::chrono_literals;
using Clock = CancellationToken::Clock;

TEST(CancellationTokenTest, CancelAndDeadlineSemantics) {
  auto token = CancellationToken::Make();
  EXPECT_FALSE(token->stop_requested());
  EXPECT_TRUE(token->CheckStatus().ok());

  token->Cancel();
  EXPECT_TRUE(token->cancelled());
  EXPECT_TRUE(token->stop_requested());
  EXPECT_TRUE(token->CheckStatus().IsCancelled());

  auto expired = CancellationToken::WithDeadline(Clock::now() - 1ms);
  EXPECT_TRUE(expired->deadline_expired());
  EXPECT_TRUE(expired->stop_requested());
  EXPECT_TRUE(expired->CheckStatus().IsDeadlineExceeded());

  auto future = CancellationToken::WithTimeout(1h);
  EXPECT_TRUE(future->has_deadline());
  EXPECT_FALSE(future->stop_requested());
}

TEST(CancellationTokenTest, ExpiredDeadlineWinsOverCancelInStatus) {
  auto token = CancellationToken::WithDeadline(Clock::now() - 1ms);
  token->Cancel();
  EXPECT_TRUE(token->CheckStatus().IsDeadlineExceeded());
}

namespace {

SchemaPtr TestSchema() {
  return Schema::Make(
      {{"id", TypeId::kInt64, false}, {"payload", TypeId::kString, false}});
}

QueryServicePtr MakeServiceWithTable(size_t n, ServiceConfig cfg = {}) {
  cfg.engine.num_threads = 2;
  cfg.engine.num_partitions = 4;
  cfg.engine.morsel_rows = 1024;  // small morsels: prompt stop points
  auto service = QueryService::Make(cfg).ValueOrDie();
  auto session = Session::Make(cfg.engine).ValueOrDie();
  RowVec rows;
  rows.reserve(n);
  for (int64_t i = 0; i < static_cast<int64_t>(n); ++i) {
    rows.push_back({Value(i), Value("payload" + std::to_string(i))});
  }
  auto df = session->CreateDataFrame(TestSchema(), std::move(rows), "big")
                .ValueOrDie();
  auto rel =
      IndexedDataFrame::CreateIndex(df, 0, "big_by_id").ValueOrDie().relation();
  EXPECT_TRUE(service->RegisterTable("big", rel).ok());
  return service;
}

}  // namespace

TEST(DeadlineTest, ExpiredDeadlineReturnsPromptlyWithoutScanning) {
  auto service = MakeServiceWithTable(300000);
  QueryOptions opts;
  opts.cancel = CancellationToken::WithDeadline(Clock::now() - 1ms);
  const auto start = Clock::now();
  QueryResult r =
      service->Execute("SELECT COUNT(*) FROM big WHERE payload = 'x'", opts);
  const auto elapsed = Clock::now() - start;
  EXPECT_TRUE(r.status.IsDeadlineExceeded()) << r.status.ToString();
  EXPECT_TRUE(r.rows.empty());
  // A full scan of 300k string rows takes far longer than this bound; an
  // expired deadline must stop the query at the first morsel boundary.
  EXPECT_LT(elapsed, 2s);
  EXPECT_EQ(service->Stats().deadline_exceeded, 1u);
}

TEST(DeadlineTest, MidQueryDeadlineStopsTheScan) {
  auto service = MakeServiceWithTable(300000);
  // Long enough to pass admission + planning, far shorter than the scan.
  QueryOptions opts;
  opts.timeout = 2ms;
  QueryResult r =
      service->Execute("SELECT COUNT(*) FROM big WHERE payload = 'x'", opts);
  // Either the deadline fired mid-scan (expected on any normal machine) or
  // the scan somehow won the race; both end with a slot released.
  if (!r.ok()) {
    EXPECT_TRUE(r.status.IsDeadlineExceeded()) << r.status.ToString();
  }
  EXPECT_EQ(service->inflight(), 0u);
}

TEST(DeadlineTest, ServiceDefaultTimeoutApplies) {
  ServiceConfig cfg;
  cfg.default_timeout = std::chrono::nanoseconds(1);  // expires instantly
  auto service = MakeServiceWithTable(50000, cfg);
  QueryResult r = service->Execute("SELECT COUNT(*) FROM big");
  EXPECT_TRUE(r.status.IsDeadlineExceeded()) << r.status.ToString();
}

TEST(CancellationServiceTest, PreCancelledQueryReleasesItsSlot) {
  ServiceConfig cfg;
  cfg.max_inflight = 1;
  auto service = MakeServiceWithTable(1000, cfg);
  QueryOptions opts;
  opts.cancel = CancellationToken::Make();
  opts.cancel->Cancel();
  QueryResult r = service->Execute("SELECT * FROM big WHERE id = 3", opts);
  EXPECT_TRUE(r.status.IsCancelled()) << r.status.ToString();
  EXPECT_EQ(service->inflight(), 0u);
  // The single slot must be free again.
  QueryResult ok = service->Execute("SELECT * FROM big WHERE id = 3");
  EXPECT_TRUE(ok.ok()) << ok.status.ToString();
  EXPECT_EQ(ok.rows.size(), 1u);
}

TEST(CancellationServiceTest, CancelWhileQueuedUnblocksTheWaiter) {
  ServiceConfig cfg;
  cfg.max_inflight = 1;
  cfg.max_queue = 4;
  auto service = MakeServiceWithTable(400000, cfg);

  auto occupier_token = CancellationToken::Make();
  std::atomic<bool> occupier_done{false};
  QueryOptions occupier_opts;
  occupier_opts.cancel = occupier_token;
  std::thread occupier([&] {
    service->Execute("SELECT COUNT(*) FROM big WHERE payload = 'x'",
                     occupier_opts);
    occupier_done.store(true);
  });
  while (service->inflight() == 0 && !occupier_done.load()) {
    std::this_thread::yield();
  }

  auto queued_token = CancellationToken::Make();
  QueryOptions queued_opts;
  queued_opts.cancel = queued_token;
  std::atomic<bool> queued_cancelled{false};
  std::thread queued([&] {
    QueryResult r = service->Execute("SELECT * FROM big WHERE id = 5",
                                     queued_opts);
    queued_cancelled.store(r.status.IsCancelled());
  });
  while (service->queued() == 0 && !occupier_done.load()) {
    std::this_thread::yield();
  }

  // Cancelling a parked submission must return it (Cancelled) without
  // waiting for the slot to free up. Only assert when the occupier was
  // verifiably still holding the slot at cancel time.
  queued_token->Cancel();
  queued.join();
  // If the occupier finished while we were cancelling, the parked query
  // may have been admitted and run instead — only assert otherwise.
  const bool occupier_finished_meanwhile = occupier_done.load();
  occupier_token->Cancel();
  occupier.join();
  if (!occupier_finished_meanwhile) {
    EXPECT_TRUE(queued_cancelled.load());
  }
  EXPECT_EQ(service->inflight(), 0u);
  EXPECT_EQ(service->queued(), 0u);
}

}  // namespace
}  // namespace idf
