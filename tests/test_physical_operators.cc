// Unit tests for the regular physical operators: scans, filter (columnar
// fast path and row fallback), project, aggregate, sort, limit, joins.
#include "sql/physical_operators.h"

#include <gtest/gtest.h>

#include "sql/analyzer.h"

namespace idf {
namespace {

ExecutorContextPtr MakeCtx(int partitions = 4, int threads = 2) {
  EngineConfig cfg;
  cfg.num_partitions = partitions;
  cfg.num_threads = threads;
  return ExecutorContext::Make(cfg).ValueOrDie();
}

SchemaPtr KvSchema() {
  return Schema::Make({{"k", TypeId::kInt64, true},
                       {"v", TypeId::kString, true},
                       {"x", TypeId::kFloat64, true}});
}

RowVec KvRows(int n) {
  RowVec rows;
  for (int64_t i = 0; i < n; ++i) {
    rows.push_back({Value(i % 10), Value("v" + std::to_string(i)),
                    Value(static_cast<double>(i))});
  }
  return rows;
}

RawTablePtr MakeRaw(int n, int partitions = 4) {
  auto t = std::make_shared<RawTable>();
  t->name = "raw";
  t->schema = KvSchema();
  t->partitions = SplitRoundRobin(KvRows(n), partitions);
  return t;
}

CachedTablePtr MakeCached(int n, int partitions = 4) {
  auto t = std::make_shared<CachedTable>();
  t->name = "cached";
  t->schema = KvSchema();
  auto parts = SplitRoundRobin(KvRows(n), partitions);
  for (auto& p : parts) {
    t->partitions.push_back(ColumnCache::FromRows(t->schema, p).ValueOrDie());
  }
  return t;
}

ExprPtr Bound(ExprPtr e, const Schema& schema) {
  return BindExpr(e, schema).ValueOrDie();
}

TEST(RowSourceOpTest, ProducesAllRows) {
  auto ctx = MakeCtx();
  RowSourceOp op(MakeRaw(100));
  auto parts = op.Execute(*ctx).ValueOrDie();
  EXPECT_EQ(TotalRows(parts), 100u);
  EXPECT_FALSE(parts[0].is_columnar());
}

TEST(CacheScanOpTest, ProducesColumnarChunks) {
  auto ctx = MakeCtx();
  CacheScanOp op(MakeCached(100));
  auto parts = op.Execute(*ctx).ValueOrDie();
  EXPECT_EQ(TotalRows(parts), 100u);
  EXPECT_TRUE(parts[0].is_columnar());
  RowVec all = CollectRows(parts);
  RowVec expected = KvRows(100);
  SortRows(&all);
  SortRows(&expected);
  EXPECT_EQ(all, expected);
}

TEST(FilterOpTest, ColumnarEqualityFastPathKeepsColumnar) {
  auto ctx = MakeCtx();
  auto schema = KvSchema();
  auto filter = std::make_shared<FilterOp>(
      std::make_shared<CacheScanOp>(MakeCached(100)),
      Bound(Eq(Col("k"), Lit(Value(int64_t{3}))), *schema));
  auto parts = filter->Execute(*ctx).ValueOrDie();
  EXPECT_EQ(TotalRows(parts), 10u);
  // Fast path keeps data columnar with a selection vector.
  bool any_columnar = false;
  for (const auto& p : parts) any_columnar |= p.is_columnar();
  EXPECT_TRUE(any_columnar);
  for (const Row& row : CollectRows(parts)) {
    EXPECT_EQ(row[0], Value(int64_t{3}));
  }
}

TEST(FilterOpTest, ColumnarRangePredicates) {
  auto ctx = MakeCtx();
  auto schema = KvSchema();
  struct Case {
    ExprPtr pred;
    size_t expected;
  };
  std::vector<Case> cases;
  cases.push_back({Lt(Col("k"), Lit(Value(int64_t{3}))), 30u});
  cases.push_back({Le(Col("k"), Lit(Value(int64_t{3}))), 40u});
  cases.push_back({Gt(Col("k"), Lit(Value(int64_t{7}))), 20u});
  cases.push_back({Ge(Col("k"), Lit(Value(int64_t{7}))), 30u});
  cases.push_back({Ne(Col("k"), Lit(Value(int64_t{0}))), 90u});
  // Mirrored literal-first orientation.
  cases.push_back({Gt(Lit(Value(int64_t{3})), Col("k")), 30u});
  for (auto& c : cases) {
    auto filter = std::make_shared<FilterOp>(
        std::make_shared<CacheScanOp>(MakeCached(100)), Bound(c.pred, *schema));
    auto parts = filter->Execute(*ctx).ValueOrDie();
    EXPECT_EQ(TotalRows(parts), c.expected) << c.pred->ToString();
  }
}

TEST(FilterOpTest, StringEqualityOnColumnar) {
  auto ctx = MakeCtx();
  auto schema = KvSchema();
  auto filter = std::make_shared<FilterOp>(
      std::make_shared<CacheScanOp>(MakeCached(50)),
      Bound(Eq(Col("v"), Lit(Value("v7"))), *schema));
  auto parts = filter->Execute(*ctx).ValueOrDie();
  EXPECT_EQ(TotalRows(parts), 1u);
}

TEST(FilterOpTest, RowFallbackForComplexPredicates) {
  auto ctx = MakeCtx();
  auto schema = KvSchema();
  auto filter = std::make_shared<FilterOp>(
      std::make_shared<CacheScanOp>(MakeCached(100)),
      Bound(And(Ge(Col("k"), Lit(Value(int64_t{2}))),
                Lt(Col("x"), Lit(Value(50.0)))),
            *schema));
  auto parts = filter->Execute(*ctx).ValueOrDie();
  size_t expected = 0;
  for (const Row& row : KvRows(100)) {
    if (row[0].AsInt64() >= 2 && row[2].AsDouble() < 50.0) ++expected;
  }
  EXPECT_EQ(TotalRows(parts), expected);
}

TEST(FilterOpTest, TypeMismatchedLiteralFallsBackGracefully) {
  auto ctx = MakeCtx();
  auto schema = KvSchema();
  // Integer column compared with fractional literal: no fast path, and no
  // row matches exactly.
  auto filter = std::make_shared<FilterOp>(
      std::make_shared<CacheScanOp>(MakeCached(40)),
      Bound(Eq(Col("k"), Lit(Value(2.5))), *schema));
  auto parts = filter->Execute(*ctx).ValueOrDie();
  EXPECT_EQ(TotalRows(parts), 0u);
}

TEST(FilterOpTest, NullsNeverPass) {
  auto ctx = MakeCtx(2);
  auto schema = KvSchema();
  RowVec rows = {{Value::Null(), Value("a"), Value(1.0)},
                 {Value(int64_t{1}), Value("b"), Value(2.0)}};
  auto t = std::make_shared<CachedTable>();
  t->name = "nulls";
  t->schema = schema;
  t->partitions.push_back(ColumnCache::FromRows(schema, rows).ValueOrDie());
  auto filter = std::make_shared<FilterOp>(
      std::make_shared<CacheScanOp>(t),
      Bound(Eq(Col("k"), Lit(Value(int64_t{1}))), *schema));
  EXPECT_EQ(TotalRows(filter->Execute(*ctx).ValueOrDie()), 1u);
  auto filter_ne = std::make_shared<FilterOp>(
      std::make_shared<CacheScanOp>(t),
      Bound(Ne(Col("k"), Lit(Value(int64_t{1}))), *schema));
  EXPECT_EQ(TotalRows(filter_ne->Execute(*ctx).ValueOrDie()), 0u);
}

TEST(ProjectOpTest, ColumnarProjectionStaysColumnar) {
  auto ctx = MakeCtx();
  auto schema = KvSchema();
  auto out_schema = Schema::Make({{"v", TypeId::kString, true},
                                  {"k", TypeId::kInt64, true}});
  auto project = std::make_shared<ProjectOp>(
      std::make_shared<CacheScanOp>(MakeCached(30)),
      std::vector<ExprPtr>{Bound(Col("v"), *schema), Bound(Col("k"), *schema)},
      out_schema);
  auto parts = project->Execute(*ctx).ValueOrDie();
  EXPECT_TRUE(parts[0].is_columnar());
  RowVec rows = CollectRows(parts);
  ASSERT_EQ(rows.size(), 30u);
  for (const Row& row : rows) {
    ASSERT_EQ(row.size(), 2u);
    EXPECT_TRUE(row[0].is_string());
    EXPECT_TRUE(row[1].is_int64());
  }
}

TEST(ProjectOpTest, ComputedProjectionMaterializes) {
  auto ctx = MakeCtx();
  auto schema = KvSchema();
  auto out_schema = Schema::Make({{"k2", TypeId::kInt64, true}});
  auto project = std::make_shared<ProjectOp>(
      std::make_shared<CacheScanOp>(MakeCached(10)),
      std::vector<ExprPtr>{Bound(Mul(Col("k"), Lit(Value(int64_t{2}))), *schema)},
      out_schema);
  auto parts = project->Execute(*ctx).ValueOrDie();
  EXPECT_FALSE(parts[0].is_columnar());
  for (const Row& row : CollectRows(parts)) {
    EXPECT_EQ(row[0].AsInt64() % 2, 0);
  }
}

TEST(HashAggregateOpTest, GlobalAggregates) {
  auto ctx = MakeCtx();
  auto schema = KvSchema();
  std::vector<AggSpec> aggs = {
      {AggFn::kCountStar, nullptr, "cnt"},
      {AggFn::kSum, Bound(Col("x"), *schema), "sum_x"},
      {AggFn::kMin, Bound(Col("k"), *schema), "min_k"},
      {AggFn::kMax, Bound(Col("k"), *schema), "max_k"},
      {AggFn::kAvg, Bound(Col("x"), *schema), "avg_x"},
  };
  auto out_schema = Schema::Make({{"cnt", TypeId::kInt64, true},
                                  {"sum_x", TypeId::kFloat64, true},
                                  {"min_k", TypeId::kInt64, true},
                                  {"max_k", TypeId::kInt64, true},
                                  {"avg_x", TypeId::kFloat64, true}});
  auto agg = std::make_shared<HashAggregateOp>(
      std::make_shared<CacheScanOp>(MakeCached(100)), std::vector<ExprPtr>{},
      aggs, out_schema);
  RowVec rows = CollectRows(agg->Execute(*ctx).ValueOrDie());
  ASSERT_EQ(rows.size(), 1u);
  EXPECT_EQ(rows[0][0], Value(int64_t{100}));
  EXPECT_EQ(rows[0][1], Value(4950.0));  // sum 0..99
  EXPECT_EQ(rows[0][2], Value(int64_t{0}));
  EXPECT_EQ(rows[0][3], Value(int64_t{9}));
  EXPECT_EQ(rows[0][4], Value(49.5));
}

TEST(HashAggregateOpTest, EmptyInputGlobalAggregate) {
  auto ctx = MakeCtx();
  auto schema = KvSchema();
  std::vector<AggSpec> aggs = {{AggFn::kCountStar, nullptr, "cnt"},
                               {AggFn::kSum, Bound(Col("k"), *schema), "s"}};
  auto out_schema = Schema::Make({{"cnt", TypeId::kInt64, true},
                                  {"s", TypeId::kInt64, true}});
  auto agg = std::make_shared<HashAggregateOp>(
      std::make_shared<CacheScanOp>(MakeCached(0)), std::vector<ExprPtr>{}, aggs,
      out_schema);
  RowVec rows = CollectRows(agg->Execute(*ctx).ValueOrDie());
  ASSERT_EQ(rows.size(), 1u);
  EXPECT_EQ(rows[0][0], Value(int64_t{0}));
  EXPECT_TRUE(rows[0][1].is_null());  // SQL: SUM of empty is NULL
}

TEST(HashAggregateOpTest, GroupedAggregates) {
  auto ctx = MakeCtx();
  auto schema = KvSchema();
  std::vector<AggSpec> aggs = {{AggFn::kCountStar, nullptr, "cnt"},
                               {AggFn::kSum, Bound(Col("x"), *schema), "s"}};
  auto out_schema = Schema::Make({{"k", TypeId::kInt64, true},
                                  {"cnt", TypeId::kInt64, true},
                                  {"s", TypeId::kFloat64, true}});
  auto agg = std::make_shared<HashAggregateOp>(
      std::make_shared<CacheScanOp>(MakeCached(100)),
      std::vector<ExprPtr>{Bound(Col("k"), *schema)}, aggs, out_schema);
  RowVec rows = CollectRows(agg->Execute(*ctx).ValueOrDie());
  ASSERT_EQ(rows.size(), 10u);
  SortRows(&rows);
  for (int64_t g = 0; g < 10; ++g) {
    EXPECT_EQ(rows[static_cast<size_t>(g)][0], Value(g));
    EXPECT_EQ(rows[static_cast<size_t>(g)][1], Value(int64_t{10}));
    // Values for group g: g, g+10, ..., g+90 -> sum = 10g + 450.
    EXPECT_EQ(rows[static_cast<size_t>(g)][2],
              Value(static_cast<double>(10 * g + 450)));
  }
}

TEST(HashAggregateOpTest, CountSkipsNullsSumIgnoresNulls) {
  auto ctx = MakeCtx(2);
  auto schema = Schema::Make({{"g", TypeId::kInt64, true},
                              {"v", TypeId::kInt64, true}});
  RowVec rows = {{Value(int64_t{1}), Value(int64_t{5})},
                 {Value(int64_t{1}), Value::Null()},
                 {Value(int64_t{1}), Value(int64_t{7})}};
  auto t = std::make_shared<RawTable>();
  t->name = "n";
  t->schema = schema;
  t->partitions = SplitRoundRobin(rows, 2);
  std::vector<AggSpec> aggs = {{AggFn::kCount, Bound(Col("v"), *schema), "c"},
                               {AggFn::kSum, Bound(Col("v"), *schema), "s"},
                               {AggFn::kAvg, Bound(Col("v"), *schema), "a"}};
  auto out_schema = Schema::Make({{"g", TypeId::kInt64, true},
                                  {"c", TypeId::kInt64, true},
                                  {"s", TypeId::kInt64, true},
                                  {"a", TypeId::kFloat64, true}});
  auto agg = std::make_shared<HashAggregateOp>(
      std::make_shared<RowSourceOp>(t),
      std::vector<ExprPtr>{Bound(Col("g"), *schema)}, aggs, out_schema);
  RowVec out = CollectRows(agg->Execute(*ctx).ValueOrDie());
  ASSERT_EQ(out.size(), 1u);
  EXPECT_EQ(out[0][1], Value(int64_t{2}));
  EXPECT_EQ(out[0][2], Value(int64_t{12}));
  EXPECT_EQ(out[0][3], Value(6.0));
}

TEST(SortOpTest, SortsGloballyWithDirection) {
  auto ctx = MakeCtx();
  auto schema = KvSchema();
  auto sort = std::make_shared<SortOp>(
      std::make_shared<CacheScanOp>(MakeCached(50)),
      std::vector<SortKey>{SortKey{Bound(Col("k"), *schema), true},
                           SortKey{Bound(Col("x"), *schema), false}});
  RowVec rows = CollectRows(sort->Execute(*ctx).ValueOrDie());
  ASSERT_EQ(rows.size(), 50u);
  for (size_t i = 1; i < rows.size(); ++i) {
    int64_t ka = rows[i - 1][0].AsInt64();
    int64_t kb = rows[i][0].AsInt64();
    EXPECT_LE(ka, kb);
    if (ka == kb) {
      EXPECT_GE(rows[i - 1][2].AsDouble(), rows[i][2].AsDouble());
    }
  }
}

TEST(LimitOpTest, TakesFirstN) {
  auto ctx = MakeCtx();
  auto limit = std::make_shared<LimitOp>(
      std::make_shared<CacheScanOp>(MakeCached(100)), 7);
  EXPECT_EQ(TotalRows(limit->Execute(*ctx).ValueOrDie()), 7u);
  auto limit_over = std::make_shared<LimitOp>(
      std::make_shared<CacheScanOp>(MakeCached(5)), 100);
  EXPECT_EQ(TotalRows(limit_over->Execute(*ctx).ValueOrDie()), 5u);
}

// Build side has keys 0..9 once each; probe has 100 rows with k in 0..9.
TEST(ShuffledHashJoinOpTest, InnerEquiJoin) {
  auto ctx = MakeCtx();
  auto build_schema = Schema::Make({{"bk", TypeId::kInt64, true},
                                    {"bv", TypeId::kString, true}});
  RowVec build_rows;
  for (int64_t i = 0; i < 10; ++i) {
    build_rows.push_back({Value(i), Value("b" + std::to_string(i))});
  }
  auto build = std::make_shared<RawTable>();
  build->name = "build";
  build->schema = build_schema;
  build->partitions = SplitRoundRobin(build_rows, 4);

  auto out_schema = Schema::Concat(*build_schema, *KvSchema());
  auto join = std::make_shared<ShuffledHashJoinOp>(
      std::make_shared<RowSourceOp>(build),
      std::make_shared<CacheScanOp>(MakeCached(100)),
      Bound(Col("bk"), *build_schema), Bound(Col("k"), *KvSchema()), out_schema);
  RowVec rows = CollectRows(join->Execute(*ctx).ValueOrDie());
  EXPECT_EQ(rows.size(), 100u);
  for (const Row& row : rows) {
    ASSERT_EQ(row.size(), 5u);
    EXPECT_EQ(row[0], row[2]);  // bk == k
    EXPECT_EQ(row[1].string_value(), "b" + std::to_string(row[0].AsInt64()));
  }
}

TEST(BroadcastHashJoinOpTest, MatchesShuffledJoinResults) {
  auto ctx = MakeCtx();
  auto build_schema = Schema::Make({{"bk", TypeId::kInt64, true}});
  RowVec build_rows;
  for (int64_t i = 0; i < 5; ++i) build_rows.push_back({Value(i)});
  auto build = std::make_shared<RawTable>();
  build->name = "b";
  build->schema = build_schema;
  build->partitions = SplitRoundRobin(build_rows, 2);

  auto out_schema = Schema::Concat(*build_schema, *KvSchema());
  auto bjoin = std::make_shared<BroadcastHashJoinOp>(
      std::make_shared<RowSourceOp>(build),
      std::make_shared<CacheScanOp>(MakeCached(60)),
      Bound(Col("bk"), *build_schema), Bound(Col("k"), *KvSchema()),
      /*broadcast_left=*/true, out_schema);
  auto sjoin = std::make_shared<ShuffledHashJoinOp>(
      std::make_shared<RowSourceOp>(build),
      std::make_shared<CacheScanOp>(MakeCached(60)),
      Bound(Col("bk"), *build_schema), Bound(Col("k"), *KvSchema()), out_schema);
  RowVec b = CollectRows(bjoin->Execute(*ctx).ValueOrDie());
  RowVec s = CollectRows(sjoin->Execute(*ctx).ValueOrDie());
  SortRows(&b);
  SortRows(&s);
  EXPECT_EQ(b, s);
  EXPECT_EQ(b.size(), 30u);  // keys 0..4, 6 probe rows each
}

TEST(BroadcastHashJoinOpTest, BroadcastRightPreservesColumnOrder) {
  auto ctx = MakeCtx();
  auto right_schema = Schema::Make({{"rk", TypeId::kInt64, true}});
  RowVec right_rows = {{Value(int64_t{1})}};
  auto right = std::make_shared<RawTable>();
  right->name = "r";
  right->schema = right_schema;
  right->partitions = SplitRoundRobin(right_rows, 1);

  auto out_schema = Schema::Concat(*KvSchema(), *right_schema);
  auto join = std::make_shared<BroadcastHashJoinOp>(
      std::make_shared<CacheScanOp>(MakeCached(20)),
      std::make_shared<RowSourceOp>(right), Bound(Col("k"), *KvSchema()),
      Bound(Col("rk"), *right_schema), /*broadcast_left=*/false, out_schema);
  RowVec rows = CollectRows(join->Execute(*ctx).ValueOrDie());
  EXPECT_EQ(rows.size(), 2u);  // k==1 occurs twice in 20 rows
  for (const Row& row : rows) {
    ASSERT_EQ(row.size(), 4u);
    EXPECT_EQ(row[0], Value(int64_t{1}));  // left columns first
    EXPECT_EQ(row[3], Value(int64_t{1}));  // right key last
  }
}

TEST(SortMergeJoinOpTest, MatchesHashJoinResults) {
  auto ctx = MakeCtx();
  auto build_schema = Schema::Make({{"bk", TypeId::kInt64, true},
                                    {"bv", TypeId::kString, true}});
  RowVec build_rows;
  for (int64_t i = 0; i < 30; ++i) {
    build_rows.push_back({Value(i % 12), Value("b" + std::to_string(i))});
  }
  auto build = std::make_shared<RawTable>();
  build->name = "b";
  build->schema = build_schema;
  build->partitions = SplitRoundRobin(build_rows, 3);

  auto out_schema = Schema::Concat(*build_schema, *KvSchema());
  auto smj = std::make_shared<SortMergeJoinOp>(
      std::make_shared<RowSourceOp>(build),
      std::make_shared<CacheScanOp>(MakeCached(90)),
      Bound(Col("bk"), *build_schema), Bound(Col("k"), *KvSchema()), out_schema);
  auto shj = std::make_shared<ShuffledHashJoinOp>(
      std::make_shared<RowSourceOp>(build),
      std::make_shared<CacheScanOp>(MakeCached(90)),
      Bound(Col("bk"), *build_schema), Bound(Col("k"), *KvSchema()), out_schema);
  RowVec a = CollectRows(smj->Execute(*ctx).ValueOrDie());
  RowVec b = CollectRows(shj->Execute(*ctx).ValueOrDie());
  SortRows(&a);
  SortRows(&b);
  EXPECT_EQ(a, b);
  EXPECT_FALSE(a.empty());
}

TEST(SortMergeJoinOpTest, DuplicateKeyRunsCrossProduct) {
  auto ctx = MakeCtx(2);
  auto schema = Schema::Make({{"k", TypeId::kInt64, true}});
  RowVec rows = {{Value(int64_t{1})}, {Value(int64_t{1})}, {Value(int64_t{2})}};
  auto mk = [&](const char* name) {
    auto t = std::make_shared<RawTable>();
    t->name = name;
    t->schema = schema;
    t->partitions = SplitRoundRobin(rows, 2);
    return t;
  };
  auto out_schema = Schema::Concat(*schema, *schema);
  auto smj = std::make_shared<SortMergeJoinOp>(
      std::make_shared<RowSourceOp>(mk("l")),
      std::make_shared<RowSourceOp>(mk("r")), Bound(Col("k"), *schema),
      Bound(Col("k"), *schema), out_schema);
  RowVec out = CollectRows(smj->Execute(*ctx).ValueOrDie());
  EXPECT_EQ(out.size(), 5u);  // 2x2 for key 1, 1x1 for key 2
}

TEST(JoinTest, NullKeysNeverMatch) {
  auto ctx = MakeCtx(2);
  auto schema = Schema::Make({{"k", TypeId::kInt64, true}});
  RowVec left_rows = {{Value::Null()}, {Value(int64_t{1})}};
  RowVec right_rows = {{Value::Null()}, {Value(int64_t{1})}};
  auto mk = [&](RowVec rows, const char* name) {
    auto t = std::make_shared<RawTable>();
    t->name = name;
    t->schema = schema;
    t->partitions = SplitRoundRobin(rows, 2);
    return t;
  };
  auto out_schema = Schema::Concat(*schema, *schema);
  auto join = std::make_shared<ShuffledHashJoinOp>(
      std::make_shared<RowSourceOp>(mk(left_rows, "l")),
      std::make_shared<RowSourceOp>(mk(right_rows, "r")),
      Bound(Col("k"), *schema), Bound(Col("k"), *schema), out_schema);
  RowVec rows = CollectRows(join->Execute(*ctx).ValueOrDie());
  EXPECT_EQ(rows.size(), 1u);  // only 1-1 matches; null-null does not
}

}  // namespace
}  // namespace idf
