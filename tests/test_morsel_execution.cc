// Morsel-driven execution tests: a skewed join must split its hot
// partition into multiple morsels (intra-partition parallelism) while
// producing exactly the rows the serial engine produced, and the fused
// scans must report their morsel dispatch.
#include <map>

#include <gtest/gtest.h>

#include "indexed/indexed_dataframe.h"
#include "indexed/indexed_operators.h"
#include "sql/session.h"

namespace idf {
namespace {

class MorselExecutionTest : public ::testing::Test {
 protected:
  void SetUp() override {
    EngineConfig cfg;
    cfg.num_partitions = 4;
    cfg.num_threads = 2;
    cfg.morsel_rows = 512;  // small grain so modest inputs split
    cfg.binary_shuffle_min_rows = 0;  // always binary: these tests target it
    session_ = Session::Make(cfg).ValueOrDie();
    build_schema_ = Schema::Make({{"k", TypeId::kInt64, false},
                                  {"name", TypeId::kString, false}});
    RowVec build_rows;
    for (int64_t i = 0; i < 100; ++i) {
      build_rows.push_back({Value(i), Value("b" + std::to_string(i))});
    }
    auto df =
        session_->CreateDataFrame(build_schema_, build_rows, "build").ValueOrDie();
    rel_ = IndexedDataFrame::CreateIndex(df, 0, "build_by_k").ValueOrDie()
               .relation();
    probe_schema_ = Schema::Make({{"fk", TypeId::kInt64, false},
                                  {"seq", TypeId::kInt64, false}});
  }

  /// ~90% of probe keys hit one build key (one hot index partition).
  DataFrame MakeSkewedProbe(size_t n) {
    RowVec rows;
    rows.reserve(n);
    for (size_t i = 0; i < n; ++i) {
      int64_t fk = (i % 10 == 0) ? static_cast<int64_t>(i % 100) : 7;
      rows.push_back({Value(fk), Value(static_cast<int64_t>(i))});
    }
    return session_->CreateDataFrame(probe_schema_, rows, "probe").ValueOrDie();
  }

  Result<PartitionVec> RunJoin(DataFrame probe, bool broadcast_probe) {
    auto probe_op = session_->PlanQuery(probe.plan()).ValueOrDie();
    SchemaPtr out_schema = Schema::Concat(*rel_->schema(), *probe_schema_);
    ExprPtr probe_key = BindExpr(Col("fk"), *probe_schema_).ValueOrDie();
    IndexedJoinOp join(rel_, probe_op, probe_key, /*indexed_on_left=*/true,
                       broadcast_probe, out_schema);
    return join.Execute(session_->exec());
  }

  SessionPtr session_;
  SchemaPtr build_schema_;
  SchemaPtr probe_schema_;
  IndexedRelationPtr rel_;
};

TEST_F(MorselExecutionTest, SkewedShuffledJoinIsCorrectAndSplitsHotPartition) {
  constexpr size_t kProbeRows = 20000;
  DataFrame probe = MakeSkewedProbe(kProbeRows);
  session_->metrics().Reset();
  PartitionVec parts = RunJoin(probe, /*broadcast_probe=*/false).ValueOrDie();

  // Every probe row matches exactly one build row.
  RowVec rows = CollectRows(parts);
  ASSERT_EQ(rows.size(), kProbeRows);
  std::map<int64_t, size_t> per_key;
  for (const Row& row : rows) {
    // Layout: [k, name, fk, seq]; the join key must match on both sides.
    ASSERT_EQ(row.size(), 4u);
    EXPECT_EQ(row[0], row[2]);
    ++per_key[row[0].int64_value()];
  }
  EXPECT_EQ(per_key[7], kProbeRows - kProbeRows / 10);

  // The hot partition (key 7 holds ~90% of the rows) must have been split
  // into multiple morsels rather than processed as one serial task.
  const auto& m = session_->metrics();
  EXPECT_GT(m.morsels_dispatched(),
            static_cast<uint64_t>(session_->exec().num_partitions()));
  // The probe side crossed the exchange encoded.
  EXPECT_GT(m.shuffle_encoded_bytes(), 0u);
  EXPECT_EQ(m.index_probes(), kProbeRows);
  EXPECT_EQ(m.index_hits(), kProbeRows);
}

TEST_F(MorselExecutionTest, BroadcastJoinMatchesShuffledJoinRowSet) {
  DataFrame probe = MakeSkewedProbe(5000);
  RowVec shuffled = CollectRows(RunJoin(probe, false).ValueOrDie());
  RowVec broadcast = CollectRows(RunJoin(probe, true).ValueOrDie());
  SortRows(&shuffled);
  SortRows(&broadcast);
  EXPECT_EQ(shuffled, broadcast);
}

TEST_F(MorselExecutionTest, ShuffledJoinAvoidsDecodingMissedProbeRows) {
  // Probe keys outside the build domain: every probe misses, and with a
  // bound column-ref key the full probe row is never materialized.
  RowVec rows;
  for (int64_t i = 0; i < 4000; ++i) {
    rows.push_back({Value(i + 1000), Value(i)});
  }
  DataFrame probe =
      session_->CreateDataFrame(probe_schema_, rows, "miss_probe").ValueOrDie();
  session_->metrics().Reset();
  PartitionVec parts = RunJoin(probe, /*broadcast_probe=*/false).ValueOrDie();
  EXPECT_EQ(TotalRows(parts), 0u);
  EXPECT_EQ(session_->metrics().decodes_avoided(), 4000u);
}

TEST_F(MorselExecutionTest, FusedFilterScanDispatchesMorsels) {
  // Grow the build side so the scan exceeds one 512-row morsel.
  RowVec extra;
  for (int64_t i = 0; i < 5000; ++i) {
    extra.push_back({Value(i % 100), Value("x" + std::to_string(i))});
  }
  ASSERT_TRUE(rel_->AppendRows(session_->exec(), extra).ok());

  ExprPtr pred =
      BindExpr(Gt(Col("k"), Lit(Value(int64_t{49}))), *build_schema_).ValueOrDie();
  IndexedScanFilterOp scan(rel_, pred,
                           PushedFilter::FromSplit(
                               SplitForCompilation(pred, *build_schema_)));
  session_->metrics().Reset();
  PartitionVec parts = scan.Execute(session_->exec()).ValueOrDie();
  // 100-row seed + 5000 extra, keys uniform over 0..99: half pass.
  EXPECT_EQ(TotalRows(parts), 5100u / 2);
  EXPECT_GT(session_->metrics().morsels_dispatched(), 1u);
  EXPECT_EQ(session_->metrics().rows_scanned(), 5100u);
}

TEST_F(MorselExecutionTest, MultiKeyLookupSplitsAcrossTasks) {
  // 80 hits (keys 0..79 exist) and 20 misses (keys 100..119 do not).
  std::vector<Value> keys;
  for (int64_t i = 0; i < 80; ++i) keys.push_back(Value(i));
  for (int64_t i = 100; i < 120; ++i) keys.push_back(Value(i));
  IndexLookupOp lookup(rel_, keys);
  session_->metrics().Reset();
  PartitionVec parts = lookup.Execute(session_->exec()).ValueOrDie();
  EXPECT_EQ(session_->metrics().index_probes(), 100u);
  EXPECT_EQ(session_->metrics().index_hits(), 80u);
  EXPECT_GT(session_->metrics().morsels_dispatched(), 1u);
  EXPECT_EQ(TotalRows(parts), 80u);
}

// ---------------------------------------------------------------------------
// Binary-shuffle threshold: joins with small probe sides fall back to the
// legacy row exchange (encode-once is pure overhead when every probe row
// gets decoded anyway, which dominates at the fig2 ~2k-row scale).
// ---------------------------------------------------------------------------

class ShuffleFallbackTest : public ::testing::Test {
 protected:
  /// Runs a shuffled all-hit indexed join with an n-row probe under the
  /// given threshold and returns the session (for metrics).
  SessionPtr RunAllHitJoin(size_t probe_rows, size_t binary_min_rows,
                           size_t* result_rows) {
    EngineConfig cfg;
    cfg.num_partitions = 4;
    cfg.num_threads = 2;
    cfg.morsel_rows = 512;
    cfg.binary_shuffle_min_rows = binary_min_rows;
    SessionPtr session = Session::Make(cfg).ValueOrDie();
    SchemaPtr build_schema = Schema::Make(
        {{"k", TypeId::kInt64, false}, {"name", TypeId::kString, false}});
    RowVec build;
    for (int64_t i = 0; i < 100; ++i) {
      build.push_back({Value(i), Value("b" + std::to_string(i))});
    }
    auto rel = IndexedDataFrame::CreateIndex(
                   session->CreateDataFrame(build_schema, build, "b").ValueOrDie(),
                   0, "b_by_k")
                   .ValueOrDie()
                   .relation();
    SchemaPtr probe_schema = Schema::Make(
        {{"fk", TypeId::kInt64, false}, {"seq", TypeId::kInt64, false}});
    RowVec probe;
    for (size_t i = 0; i < probe_rows; ++i) {
      probe.push_back({Value(static_cast<int64_t>(i % 100)),
                       Value(static_cast<int64_t>(i))});
    }
    DataFrame probe_df =
        session->CreateDataFrame(probe_schema, probe, "p").ValueOrDie();
    auto probe_op = session->PlanQuery(probe_df.plan()).ValueOrDie();
    ExprPtr probe_key = BindExpr(Col("fk"), *probe_schema).ValueOrDie();
    IndexedJoinOp join(rel, probe_op, probe_key, /*indexed_on_left=*/true,
                       /*broadcast_probe=*/false,
                       Schema::Concat(*build_schema, *probe_schema));
    session->metrics().Reset();
    PartitionVec parts = join.Execute(session->exec()).ValueOrDie();
    *result_rows = TotalRows(parts);
    return session;
  }
};

TEST_F(ShuffleFallbackTest, SmallAllHitProbeUsesRowShuffle) {
  size_t result_rows = 0;
  // 2000-row probe (the fig2 scale) under the 4096 default: the probe
  // must cross the exchange as rows, not encoded buffers.
  SessionPtr session = RunAllHitJoin(2000, 4096, &result_rows);
  EXPECT_EQ(result_rows, 2000u);
  EXPECT_EQ(session->metrics().shuffle_encoded_bytes(), 0u);
  EXPECT_GT(session->metrics().shuffled_rows(), 0u);
  EXPECT_EQ(session->metrics().index_hits(), 2000u);
}

TEST_F(ShuffleFallbackTest, LargeProbeStaysOnBinaryShuffle) {
  size_t result_rows = 0;
  SessionPtr session = RunAllHitJoin(8000, 4096, &result_rows);
  EXPECT_EQ(result_rows, 8000u);
  EXPECT_GT(session->metrics().shuffle_encoded_bytes(), 0u);
}

TEST_F(ShuffleFallbackTest, ZeroThresholdDisablesTheFallback) {
  size_t result_rows = 0;
  SessionPtr session = RunAllHitJoin(50, 0, &result_rows);
  EXPECT_EQ(result_rows, 50u);
  EXPECT_GT(session->metrics().shuffle_encoded_bytes(), 0u);
}

}  // namespace
}  // namespace idf
