// Tests for the Kafka-like partitioned Topic and TopicConsumer.
#include "stream/topic.h"

#include <atomic>
#include <set>
#include <thread>

#include <gtest/gtest.h>

namespace idf {
namespace {

TEST(TopicTest, AppendAssignsSequentialOffsets) {
  Topic<int> topic(2);
  EXPECT_EQ(topic.Append(0, 10), 0u);
  EXPECT_EQ(topic.Append(0, 11), 1u);
  EXPECT_EQ(topic.Append(1, 20), 0u);
  EXPECT_EQ(topic.EndOffset(0), 2u);
  EXPECT_EQ(topic.EndOffset(1), 1u);
  EXPECT_EQ(topic.TotalRecords(), 3u);
}

TEST(TopicTest, PollFromOffset) {
  Topic<int> topic(1);
  for (int i = 0; i < 10; ++i) topic.Append(0, i);
  auto records = topic.Poll(0, 4, 3, /*block=*/false);
  ASSERT_EQ(records.size(), 3u);
  EXPECT_EQ(records[0], 4);
  EXPECT_EQ(records[2], 6);
}

TEST(TopicTest, PollPastEndIsEmptyNonBlocking) {
  Topic<int> topic(1);
  topic.Append(0, 1);
  EXPECT_TRUE(topic.Poll(0, 5, 10, /*block=*/false).empty());
}

TEST(TopicTest, KeyedAppendIsSticky) {
  Topic<int> topic(4);
  int p1 = -1;
  int p2 = -1;
  topic.AppendKeyed(12345, 1, &p1);
  topic.AppendKeyed(12345, 2, &p2);
  EXPECT_EQ(p1, p2);
  auto records = topic.Poll(p1, 0, 10, /*block=*/false);
  ASSERT_EQ(records.size(), 2u);
}

TEST(TopicTest, RecordsAreRetainedForReplay) {
  Topic<int> topic(1);
  for (int i = 0; i < 5; ++i) topic.Append(0, i);
  auto first = topic.Poll(0, 0, 10, /*block=*/false);
  auto again = topic.Poll(0, 0, 10, /*block=*/false);
  EXPECT_EQ(first, again);
  EXPECT_EQ(first.size(), 5u);
}

TEST(TopicTest, BlockingPollWakesOnAppend) {
  Topic<int> topic(1);
  std::atomic<bool> got{false};
  std::thread consumer([&] {
    auto records = topic.Poll(0, 0, 1, /*block=*/true);
    got.store(!records.empty() && records[0] == 42);
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  topic.Append(0, 42);
  consumer.join();
  EXPECT_TRUE(got.load());
}

TEST(TopicTest, CloseReleasesBlockedConsumers) {
  Topic<int> topic(1);
  std::thread consumer([&] {
    auto records = topic.Poll(0, 0, 1, /*block=*/true);
    EXPECT_TRUE(records.empty());
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  topic.Close();
  consumer.join();
}

TEST(TopicConsumerTest, ConsumesAcrossPartitionsExactlyOnce) {
  Topic<int> topic(3);
  std::set<int> sent;
  for (int i = 0; i < 30; ++i) {
    topic.AppendKeyed(static_cast<uint64_t>(i), i);
    sent.insert(i);
  }
  topic.Close();
  TopicConsumer<int> consumer(&topic);
  std::set<int> seen;
  while (!consumer.AtEnd()) {
    for (int r : consumer.Poll(7, /*block=*/false)) {
      EXPECT_TRUE(seen.insert(r).second) << "duplicate " << r;
    }
  }
  EXPECT_EQ(seen, sent);
}

TEST(TopicConsumerTest, IndependentConsumersReplayTheStream) {
  Topic<int> topic(2);
  for (int i = 0; i < 10; ++i) topic.Append(i % 2, i);
  topic.Close();
  TopicConsumer<int> a(&topic);
  TopicConsumer<int> b(&topic);
  size_t a_total = 0;
  while (!a.AtEnd()) a_total += a.Poll(3, false).size();
  size_t b_total = 0;
  while (!b.AtEnd()) b_total += b.Poll(5, false).size();
  EXPECT_EQ(a_total, 10u);
  EXPECT_EQ(b_total, 10u);
}

TEST(TopicConsumerTest, SeekToBeginningReplays) {
  Topic<int> topic(1);
  for (int i = 0; i < 4; ++i) topic.Append(0, i);
  topic.Close();
  TopicConsumer<int> consumer(&topic);
  while (!consumer.AtEnd()) consumer.Poll(10, false);
  EXPECT_EQ(consumer.position(0), 4u);
  consumer.SeekToBeginning();
  EXPECT_EQ(consumer.position(0), 0u);
  EXPECT_EQ(consumer.Poll(10, false).size(), 4u);
}

TEST(TopicTest, ConcurrentProducersAndConsumers) {
  Topic<int> topic(4);
  constexpr int kPerProducer = 5000;
  std::vector<std::thread> producers;
  for (int w = 0; w < 3; ++w) {
    producers.emplace_back([&topic, w] {
      for (int i = 0; i < kPerProducer; ++i) {
        topic.AppendKeyed(static_cast<uint64_t>(w * kPerProducer + i),
                          w * kPerProducer + i);
      }
    });
  }
  std::atomic<size_t> consumed{0};
  std::thread consumer([&] {
    TopicConsumer<int> c(&topic);
    while (!c.AtEnd()) consumed.fetch_add(c.Poll(64, false).size());
  });
  for (auto& t : producers) t.join();
  topic.Close();
  consumer.join();
  EXPECT_EQ(consumed.load(), 3u * kPerProducer);
  EXPECT_EQ(topic.TotalRecords(), 3u * kPerProducer);
}

}  // namespace
}  // namespace idf
