// Unit tests for the executor thread pool.
#include "engine/thread_pool.h"

#include <algorithm>
#include <atomic>
#include <set>
#include <vector>

#include <gtest/gtest.h>

namespace idf {
namespace {

TEST(ThreadPoolTest, RunsSubmittedTasks) {
  ThreadPool pool(2);
  std::atomic<int> count{0};
  std::mutex mu;
  std::condition_variable cv;
  for (int i = 0; i < 100; ++i) {
    pool.Submit([&] {
      if (count.fetch_add(1) + 1 == 100) {
        // Notify under the mutex: otherwise the waiter can observe the
        // count, finish the test, and destroy the cv mid-notify.
        std::lock_guard<std::mutex> guard(mu);
        cv.notify_all();
      }
    });
  }
  std::unique_lock<std::mutex> lock(mu);
  cv.wait(lock, [&] { return count.load() == 100; });
  EXPECT_EQ(count.load(), 100);
}

TEST(ThreadPoolTest, ParallelForCoversRange) {
  ThreadPool pool(4);
  std::vector<std::atomic<int>> hits(1000);
  pool.ParallelFor(1000, [&](size_t i) { hits[i].fetch_add(1); });
  for (size_t i = 0; i < 1000; ++i) {
    EXPECT_EQ(hits[i].load(), 1) << i;
  }
}

TEST(ThreadPoolTest, ParallelForZeroIterations) {
  ThreadPool pool(2);
  bool ran = false;
  pool.ParallelFor(0, [&](size_t) { ran = true; });
  EXPECT_FALSE(ran);
}

TEST(ThreadPoolTest, ParallelForSingleIterationRunsInline) {
  ThreadPool pool(2);
  std::thread::id caller = std::this_thread::get_id();
  std::thread::id executed;
  pool.ParallelFor(1, [&](size_t) { executed = std::this_thread::get_id(); });
  EXPECT_EQ(executed, caller);
}

TEST(ThreadPoolTest, NestedParallelForDoesNotDeadlock) {
  ThreadPool pool(2);
  std::atomic<int> total{0};
  pool.ParallelFor(8, [&](size_t) {
    pool.ParallelFor(8, [&](size_t) { total.fetch_add(1); });
  });
  EXPECT_EQ(total.load(), 64);
}

TEST(ThreadPoolTest, ParallelForMoreIterationsThanThreads) {
  ThreadPool pool(1);
  std::atomic<int> total{0};
  pool.ParallelFor(5000, [&](size_t) { total.fetch_add(1); });
  EXPECT_EQ(total.load(), 5000);
}

TEST(ThreadPoolTest, SequentialParallelForsReusePool) {
  ThreadPool pool(3);
  for (int round = 0; round < 20; ++round) {
    std::atomic<int> total{0};
    pool.ParallelFor(100, [&](size_t) { total.fetch_add(1); });
    ASSERT_EQ(total.load(), 100);
  }
}

TEST(ThreadPoolTest, DestructorDrainsCleanly) {
  std::atomic<int> count{0};
  {
    ThreadPool pool(2);
    pool.ParallelFor(64, [&](size_t) { count.fetch_add(1); });
  }
  EXPECT_EQ(count.load(), 64);
}

TEST(ThreadPoolTest, NumThreadsReported) {
  ThreadPool pool(3);
  EXPECT_EQ(pool.num_threads(), 3);
}

TEST(ParallelForRangeTest, CoversRangeExactlyOnceWithAlignedChunks) {
  ThreadPool pool(4);
  constexpr size_t kN = 10007;  // prime: the last chunk is ragged
  constexpr size_t kGrain = 64;
  std::vector<std::atomic<int>> hits(kN);
  std::atomic<int> bad_chunks{0};
  size_t chunks = pool.ParallelForRange(kN, kGrain, [&](size_t begin, size_t end) {
    if (begin % kGrain != 0 || end != std::min(kN, begin + kGrain)) {
      bad_chunks.fetch_add(1);
    }
    for (size_t i = begin; i < end; ++i) hits[i].fetch_add(1);
  });
  EXPECT_EQ(chunks, (kN + kGrain - 1) / kGrain);
  EXPECT_EQ(bad_chunks.load(), 0);
  for (size_t i = 0; i < kN; ++i) ASSERT_EQ(hits[i].load(), 1) << i;
}

TEST(ParallelForRangeTest, EmptyRangeRunsNothing) {
  ThreadPool pool(2);
  bool ran = false;
  size_t chunks = pool.ParallelForRange(0, 64, [&](size_t, size_t) { ran = true; });
  EXPECT_EQ(chunks, 0u);
  EXPECT_FALSE(ran);
}

TEST(ParallelForRangeTest, SmallerThanGrainRunsInlineAsOneChunk) {
  ThreadPool pool(2);
  std::thread::id caller = std::this_thread::get_id();
  std::thread::id executed;
  size_t seen_begin = 99;
  size_t seen_end = 0;
  size_t chunks = pool.ParallelForRange(10, 64, [&](size_t begin, size_t end) {
    executed = std::this_thread::get_id();
    seen_begin = begin;
    seen_end = end;
  });
  EXPECT_EQ(chunks, 1u);
  EXPECT_EQ(executed, caller);
  EXPECT_EQ(seen_begin, 0u);
  EXPECT_EQ(seen_end, 10u);
}

TEST(ParallelForRangeTest, ZeroGrainTreatedAsOne) {
  ThreadPool pool(2);
  std::atomic<size_t> covered{0};
  size_t chunks = pool.ParallelForRange(17, 0, [&](size_t begin, size_t end) {
    covered.fetch_add(end - begin);
  });
  EXPECT_EQ(chunks, 17u);
  EXPECT_EQ(covered.load(), 17u);
}

TEST(ParallelForRangeTest, NestedCallsFromWorkersRunInline) {
  ThreadPool pool(2);
  std::atomic<size_t> total{0};
  pool.ParallelForRange(256, 16, [&](size_t begin, size_t end) {
    // Reentrant use from a worker must not deadlock on the pool.
    pool.ParallelForRange(end - begin, 4, [&](size_t b, size_t e) {
      total.fetch_add(e - b);
    });
  });
  EXPECT_EQ(total.load(), 256u);
}

TEST(ParallelForCancelTest, PreCancelledTokenSkipsAllIterations) {
  ThreadPool pool(2);
  CancellationToken token;
  token.Cancel();
  std::atomic<int> ran{0};
  pool.ParallelFor(1000, [&](size_t) { ran.fetch_add(1); }, &token);
  EXPECT_EQ(ran.load(), 0);
}

TEST(ParallelForCancelTest, MidFlightCancelDrainsAndReturns) {
  ThreadPool pool(4);
  CancellationToken token;
  std::atomic<int> ran{0};
  // Cancel from inside iteration 100-ish; the call must still return (the
  // drain keeps the completion count moving) having skipped most work.
  pool.ParallelFor(100000, [&](size_t) {
    if (ran.fetch_add(1) == 100) token.Cancel();
  }, &token);
  EXPECT_LT(ran.load(), 100000);
}

TEST(ParallelForRangeCancelTest, PreCancelledTokenSkipsAllChunks) {
  ThreadPool pool(2);
  CancellationToken token;
  token.Cancel();
  std::atomic<int> ran{0};
  pool.ParallelForRange(10000, 64, [&](size_t, size_t) { ran.fetch_add(1); },
                        &token);
  EXPECT_EQ(ran.load(), 0);
}

TEST(ParallelForRangeCancelTest, MidFlightCancelStopsWithinFewChunks) {
  ThreadPool pool(4);
  CancellationToken token;
  std::atomic<int> chunks_run{0};
  pool.ParallelForRange(1 << 20, 256, [&](size_t, size_t) {
    if (chunks_run.fetch_add(1) == 3) token.Cancel();
  }, &token);
  // 2^20/256 = 4096 chunks total; after the cancel at chunk ~4, only
  // chunks already claimed by the workers may still run.
  EXPECT_LT(chunks_run.load(), 4096);
}

TEST(ParallelForRangeCancelTest, InlinePathChecksTokenBetweenChunks) {
  ThreadPool pool(2);
  CancellationToken token;
  int chunks_run = 0;
  // n <= grain*1? Use grain so the range runs inline on the caller: a
  // 10-row job with grain 64 is a single inline chunk, so cancel before.
  token.Cancel();
  pool.ParallelForRange(10, 64, [&](size_t, size_t) { ++chunks_run; }, &token);
  EXPECT_EQ(chunks_run, 0);
}

TEST(ParallelForCancelTest, NullTokenMeansNeverCancelled) {
  ThreadPool pool(2);
  std::atomic<int> ran{0};
  pool.ParallelFor(500, [&](size_t) { ran.fetch_add(1); }, nullptr);
  EXPECT_EQ(ran.load(), 500);
}

TEST(ParallelForRangeTest, SkewedPerChunkWorkCompletes) {
  ThreadPool pool(4);
  std::atomic<uint64_t> sum{0};
  // Chunk 0 does ~all the work; the cursor hands the rest to idle workers.
  pool.ParallelForRange(4096, 64, [&](size_t begin, size_t end) {
    uint64_t local = 0;
    size_t spins = begin == 0 ? 200000 : 10;
    for (size_t s = 0; s < spins; ++s) local += s % 7;
    for (size_t i = begin; i < end; ++i) local += 1;
    sum.fetch_add(local >= (end - begin) ? end - begin : 0);
  });
  EXPECT_EQ(sum.load(), 4096u);
}

}  // namespace
}  // namespace idf
