// Unit tests for the executor thread pool.
#include "engine/thread_pool.h"

#include <atomic>
#include <set>

#include <gtest/gtest.h>

namespace idf {
namespace {

TEST(ThreadPoolTest, RunsSubmittedTasks) {
  ThreadPool pool(2);
  std::atomic<int> count{0};
  std::mutex mu;
  std::condition_variable cv;
  for (int i = 0; i < 100; ++i) {
    pool.Submit([&] {
      if (count.fetch_add(1) + 1 == 100) cv.notify_all();
    });
  }
  std::unique_lock<std::mutex> lock(mu);
  cv.wait(lock, [&] { return count.load() == 100; });
  EXPECT_EQ(count.load(), 100);
}

TEST(ThreadPoolTest, ParallelForCoversRange) {
  ThreadPool pool(4);
  std::vector<std::atomic<int>> hits(1000);
  pool.ParallelFor(1000, [&](size_t i) { hits[i].fetch_add(1); });
  for (size_t i = 0; i < 1000; ++i) {
    EXPECT_EQ(hits[i].load(), 1) << i;
  }
}

TEST(ThreadPoolTest, ParallelForZeroIterations) {
  ThreadPool pool(2);
  bool ran = false;
  pool.ParallelFor(0, [&](size_t) { ran = true; });
  EXPECT_FALSE(ran);
}

TEST(ThreadPoolTest, ParallelForSingleIterationRunsInline) {
  ThreadPool pool(2);
  std::thread::id caller = std::this_thread::get_id();
  std::thread::id executed;
  pool.ParallelFor(1, [&](size_t) { executed = std::this_thread::get_id(); });
  EXPECT_EQ(executed, caller);
}

TEST(ThreadPoolTest, NestedParallelForDoesNotDeadlock) {
  ThreadPool pool(2);
  std::atomic<int> total{0};
  pool.ParallelFor(8, [&](size_t) {
    pool.ParallelFor(8, [&](size_t) { total.fetch_add(1); });
  });
  EXPECT_EQ(total.load(), 64);
}

TEST(ThreadPoolTest, ParallelForMoreIterationsThanThreads) {
  ThreadPool pool(1);
  std::atomic<int> total{0};
  pool.ParallelFor(5000, [&](size_t) { total.fetch_add(1); });
  EXPECT_EQ(total.load(), 5000);
}

TEST(ThreadPoolTest, SequentialParallelForsReusePool) {
  ThreadPool pool(3);
  for (int round = 0; round < 20; ++round) {
    std::atomic<int> total{0};
    pool.ParallelFor(100, [&](size_t) { total.fetch_add(1); });
    ASSERT_EQ(total.load(), 100);
  }
}

TEST(ThreadPoolTest, DestructorDrainsCleanly) {
  std::atomic<int> count{0};
  {
    ThreadPool pool(2);
    pool.ParallelFor(64, [&](size_t) { count.fetch_add(1); });
  }
  EXPECT_EQ(count.load(), 64);
}

TEST(ThreadPoolTest, NumThreadsReported) {
  ThreadPool pool(3);
  EXPECT_EQ(pool.num_threads(), 3);
}

}  // namespace
}  // namespace idf
