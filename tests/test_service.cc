// QueryService tests: snapshot-pinned SQL execution, admission control
// (bounded in-flight + bounded queue with rejection), slot accounting
// across all outcomes, stats export, and the latency histogram itself.
#include <atomic>
#include <chrono>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "indexed/indexed_dataframe.h"
#include "service/query_service.h"

namespace idf {
namespace {

using namespace std::chrono_literals;

SchemaPtr TestSchema() {
  return Schema::Make(
      {{"id", TypeId::kInt64, false}, {"name", TypeId::kString, false}});
}

RowVec MakeRows(int64_t begin, int64_t end) {
  RowVec rows;
  rows.reserve(static_cast<size_t>(end - begin));
  for (int64_t i = begin; i < end; ++i) {
    rows.push_back({Value(i), Value("n" + std::to_string(i))});
  }
  return rows;
}

/// A service with one registered table holding ids [0, n).
QueryServicePtr MakeServiceWithTable(size_t n, ServiceConfig cfg = {}) {
  cfg.engine.num_threads = 2;
  cfg.engine.num_partitions = 4;
  auto service = QueryService::Make(cfg).ValueOrDie();
  auto session = Session::Make(cfg.engine).ValueOrDie();
  auto df = session
                ->CreateDataFrame(TestSchema(),
                                  MakeRows(0, static_cast<int64_t>(n)), "people")
                .ValueOrDie();
  auto rel =
      IndexedDataFrame::CreateIndex(df, 0, "people_by_id").ValueOrDie().relation();
  EXPECT_TRUE(service->RegisterTable("people", rel).ok());
  return service;
}

TEST(QueryServiceTest, ExecutesSqlOverRegisteredTable) {
  auto service = MakeServiceWithTable(1000);
  QueryResult r = service->Execute("SELECT name FROM people WHERE id = 42");
  ASSERT_TRUE(r.ok()) << r.status.ToString();
  ASSERT_EQ(r.rows.size(), 1u);
  EXPECT_EQ(r.rows[0][0].string_value(), "n42");
  EXPECT_EQ(r.epoch, 0u);
  EXPECT_GT(r.total_micros, 0u);
  ASSERT_NE(r.schema, nullptr);
  EXPECT_EQ(r.schema->num_fields(), 1);
}

TEST(QueryServiceTest, AppendsAdvanceTheEpochAndBecomeVisible) {
  auto service = MakeServiceWithTable(100);
  QueryResult before = service->Execute("SELECT COUNT(*) FROM people");
  ASSERT_TRUE(before.ok()) << before.status.ToString();
  EXPECT_EQ(before.rows[0][0].int64_value(), 100);
  EXPECT_EQ(before.epoch, 0u);

  ASSERT_TRUE(service->Append("people", MakeRows(100, 150)).ok());
  EXPECT_EQ(service->epoch(), 1u);

  QueryResult after = service->Execute("SELECT COUNT(*) FROM people");
  ASSERT_TRUE(after.ok());
  EXPECT_EQ(after.rows[0][0].int64_value(), 150);
  EXPECT_EQ(after.epoch, 1u);
}

TEST(QueryServiceTest, ErrorsAreReportedNotThrown) {
  auto service = MakeServiceWithTable(10);
  QueryResult bad_table = service->Execute("SELECT * FROM nope");
  EXPECT_FALSE(bad_table.ok());
  QueryResult bad_sql = service->Execute("SELEKT");
  EXPECT_FALSE(bad_sql.ok());
  EXPECT_EQ(service->Stats().failed, 2u);
  // Failures released their slots.
  EXPECT_EQ(service->inflight(), 0u);
  QueryResult ok = service->Execute("SELECT * FROM people WHERE id = 1");
  EXPECT_TRUE(ok.ok());
}

TEST(QueryServiceTest, RejectsBeyondQueueBoundAndRunsQueuedAfterRelease) {
  ServiceConfig cfg;
  cfg.max_inflight = 1;
  cfg.max_queue = 1;
  // A big table so the occupying query runs long enough to assert against.
  auto service = MakeServiceWithTable(400000, cfg);

  auto occupier_token = CancellationToken::Make();
  std::atomic<bool> occupier_done{false};
  QueryOptions occupier_opts;
  occupier_opts.cancel = occupier_token;
  std::thread occupier([&] {
    // Misses every key: a full scan (id is indexed, but name is not).
    service->Execute("SELECT COUNT(*) FROM people WHERE name = 'none'",
                     occupier_opts);
    occupier_done.store(true);
  });
  while (service->inflight() == 0 && !occupier_done.load()) {
    std::this_thread::yield();
  }

  std::atomic<bool> queued_ok{false};
  std::thread queued([&] {
    QueryResult r = service->Execute("SELECT * FROM people WHERE id = 7");
    queued_ok.store(r.ok());
  });
  while (service->queued() == 0 && !occupier_done.load()) {
    std::this_thread::yield();
  }

  if (!occupier_done.load()) {
    // Slot busy and queue full: an extra submission must bounce, fast.
    QueryResult rejected = service->Execute("SELECT * FROM people WHERE id = 1");
    EXPECT_TRUE(rejected.status.IsCapacityError())
        << rejected.status.ToString();
    EXPECT_EQ(service->Stats().rejected, 1u);
  }

  occupier_token->Cancel();
  occupier.join();
  queued.join();
  EXPECT_TRUE(queued_ok.load());
  EXPECT_EQ(service->inflight(), 0u);
  EXPECT_EQ(service->queued(), 0u);
}

TEST(QueryServiceTest, ConcurrentReadersAllSucceed) {
  ServiceConfig cfg;
  cfg.max_inflight = 4;
  cfg.max_queue = 64;
  auto service = MakeServiceWithTable(5000, cfg);
  constexpr int kThreads = 8;
  constexpr int kQueriesPerThread = 20;
  std::atomic<int> failures{0};
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      for (int q = 0; q < kQueriesPerThread; ++q) {
        int64_t id = (t * kQueriesPerThread + q) % 5000;
        QueryResult r = service->Execute("SELECT name FROM people WHERE id = " +
                                         std::to_string(id));
        if (!r.ok() || r.rows.size() != 1) failures.fetch_add(1);
      }
    });
  }
  for (std::thread& t : threads) t.join();
  EXPECT_EQ(failures.load(), 0);
  ServiceStats stats = service->Stats();
  EXPECT_EQ(stats.succeeded, static_cast<uint64_t>(kThreads * kQueriesPerThread));
  EXPECT_EQ(stats.total.count, stats.succeeded);
  EXPECT_GE(stats.total.p99_micros, stats.total.p50_micros);
  EXPECT_NE(stats.ToJson().find("\"p99_us\""), std::string::npos);
  EXPECT_NE(stats.ToString().find("p99="), std::string::npos);
}

TEST(QueryServiceTest, ValidatesConfig) {
  ServiceConfig cfg;
  cfg.max_inflight = 0;
  EXPECT_FALSE(QueryService::Make(cfg).ok());
}

TEST(LatencyHistogramTest, PercentilesTrackTheDistribution) {
  LatencyHistogram hist;
  // 1..1000us uniform: p50 ≈ 500, p99 ≈ 990; bucketing error ≤ ~25%.
  for (uint64_t v = 1; v <= 1000; ++v) hist.Record(v);
  EXPECT_EQ(hist.count(), 1000u);
  LatencyHistogram::Summary s = hist.Summarize();
  EXPECT_EQ(s.max_micros, 1000u);
  EXPECT_NEAR(static_cast<double>(s.p50_micros), 500.0, 150.0);
  EXPECT_NEAR(static_cast<double>(s.p99_micros), 990.0, 250.0);
  EXPECT_NEAR(s.mean_micros, 500.5, 1.0);
  EXPECT_LE(s.p50_micros, s.p95_micros);
  EXPECT_LE(s.p95_micros, s.p99_micros);
}

TEST(LatencyHistogramTest, ConcurrentRecordsAreAllCounted) {
  LatencyHistogram hist;
  constexpr int kThreads = 8;
  constexpr int kPerThread = 10000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&hist, t] {
      for (int i = 0; i < kPerThread; ++i) {
        hist.Record(static_cast<uint64_t>(t * 1000 + i % 997));
      }
    });
  }
  for (std::thread& t : threads) t.join();
  EXPECT_EQ(hist.count(), static_cast<uint64_t>(kThreads * kPerThread));
  EXPECT_EQ(hist.Summarize().count, hist.count());
}

TEST(LatencyHistogramTest, HandlesZeroAndHugeSamples) {
  LatencyHistogram hist;
  hist.Record(0);
  hist.Record(uint64_t{1} << 50);  // beyond the last octave: clamps
  LatencyHistogram::Summary s = hist.Summarize();
  EXPECT_EQ(s.count, 2u);
  EXPECT_EQ(s.max_micros, uint64_t{1} << 50);
  EXPECT_GE(s.p99_micros, s.p50_micros);
}

}  // namespace
}  // namespace idf
