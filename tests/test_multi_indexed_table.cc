// Tests for MultiIndexedTable: several indexes over one logical table with
// fan-out appends.
#include "indexed/multi_indexed_table.h"

#include <gtest/gtest.h>

namespace idf {
namespace {

class MultiIndexedTableTest : public ::testing::Test {
 protected:
  void SetUp() override {
    EngineConfig cfg;
    cfg.num_partitions = 4;
    cfg.num_threads = 2;
    session_ = Session::Make(cfg).ValueOrDie();
    schema_ = Schema::Make({{"id", TypeId::kInt64, false},
                            {"creator", TypeId::kInt64, false},
                            {"content", TypeId::kString, true}});
    RowVec rows;
    for (int64_t i = 0; i < 300; ++i) {
      rows.push_back({Value(1000 + i), Value(i % 20),
                      Value("post" + std::to_string(i))});
    }
    df_ = session_->CreateDataFrame(schema_, rows, "posts").ValueOrDie();
    table_ = std::make_shared<MultiIndexedTable>(
        MultiIndexedTable::Create(df_, {"id", "creator"}, "posts").ValueOrDie());
  }

  SessionPtr session_;
  SchemaPtr schema_;
  DataFrame df_;
  std::shared_ptr<MultiIndexedTable> table_;
};

TEST_F(MultiIndexedTableTest, CreateBuildsAllIndexes) {
  EXPECT_EQ(table_->IndexedColumns(), (std::vector<std::string>{"id", "creator"}));
  EXPECT_TRUE(table_->HasIndexOn("id"));
  EXPECT_TRUE(table_->HasIndexOn("creator"));
  EXPECT_FALSE(table_->HasIndexOn("content"));
  EXPECT_EQ(table_->NumRows(), 300u);
}

TEST_F(MultiIndexedTableTest, CreateRejectsBadInput) {
  EXPECT_TRUE(
      MultiIndexedTable::Create(df_, {}, "x").status().IsInvalidArgument());
  EXPECT_TRUE(MultiIndexedTable::Create(df_, {"id", "id"}, "x")
                  .status()
                  .IsInvalidArgument());
  EXPECT_TRUE(
      MultiIndexedTable::Create(df_, {"missing"}, "x").status().IsKeyError());
}

TEST_F(MultiIndexedTableTest, LookupsRouteToTheRightIndex) {
  EXPECT_EQ(table_->GetRows("id", Value(int64_t{1042}))
                .ValueOrDie()
                .Count()
                .ValueOrDie(),
            1u);
  EXPECT_EQ(table_->GetRows("creator", Value(int64_t{7}))
                .ValueOrDie()
                .Count()
                .ValueOrDie(),
            15u);  // 300 posts / 20 creators
  EXPECT_TRUE(table_->GetRows("content", Value("post1")).status().IsKeyError());
}

TEST_F(MultiIndexedTableTest, AppendFansOutToAllIndexes) {
  RowVec extra = {{Value(int64_t{9999}), Value(int64_t{7}), Value("fresh")}};
  ASSERT_TRUE(table_->AppendRowsDirect(extra).ok());
  EXPECT_EQ(table_->NumRows(), 301u);
  // Visible through BOTH indexes.
  EXPECT_EQ(table_->GetRows("id", Value(int64_t{9999}))
                .ValueOrDie()
                .Count()
                .ValueOrDie(),
            1u);
  EXPECT_EQ(table_->GetRows("creator", Value(int64_t{7}))
                .ValueOrDie()
                .Count()
                .ValueOrDie(),
            16u);
}

TEST_F(MultiIndexedTableTest, EncodeOnceFanOutLandsSameRowCountInEveryIndex) {
  RowVec extra;
  for (int64_t i = 0; i < 250; ++i) {
    extra.push_back({Value(5000 + i), Value(i % 13), Value("x" + std::to_string(i))});
  }
  ASSERT_TRUE(table_->AppendRowsDirect(extra).ok());
  // The batch is encoded once and fanned out; every index must hold
  // exactly the same row count (and the same bytes, per index storage).
  std::vector<size_t> counts;
  size_t data_bytes = 0;
  for (const std::string& col : table_->IndexedColumns()) {
    auto rel = table_->Index(col).ValueOrDie().relation();
    counts.push_back(rel->num_rows());
    if (data_bytes == 0) {
      data_bytes = rel->data_bytes();
    } else {
      EXPECT_EQ(rel->data_bytes(), data_bytes) << col;
    }
  }
  ASSERT_EQ(counts.size(), 2u);
  EXPECT_EQ(counts[0], 550u);
  EXPECT_EQ(counts[1], 550u);
}

TEST_F(MultiIndexedTableTest, AppendRowsValidatesSchema) {
  auto other = session_
                   ->CreateDataFrame(Schema::Make({{"x", TypeId::kInt64, false}}),
                                     {{Value(int64_t{1})}}, "o")
                   .ValueOrDie();
  EXPECT_TRUE(table_->AppendRows(other).IsInvalidArgument());
}

TEST_F(MultiIndexedTableTest, JoinPicksMatchingIndex) {
  auto probe_schema = Schema::Make({{"pid", TypeId::kInt64, false}});
  RowVec probe_rows = {{Value(int64_t{1003})}, {Value(int64_t{1007})}};
  auto probe =
      session_->CreateDataFrame(probe_schema, probe_rows, "probe").ValueOrDie();
  auto joined = table_->Join(probe, "id", "pid").ValueOrDie();
  std::string plan = joined.Explain().ValueOrDie();
  EXPECT_NE(plan.find("IndexedJoin [posts_by_id]"), std::string::npos) << plan;
  EXPECT_EQ(joined.Count().ValueOrDie(), 2u);
}

TEST_F(MultiIndexedTableTest, JoinOnUnindexedColumnFallsBack) {
  auto probe_schema = Schema::Make({{"c", TypeId::kString, false}});
  RowVec probe_rows = {{Value("post5")}};
  auto probe =
      session_->CreateDataFrame(probe_schema, probe_rows, "probe").ValueOrDie();
  auto joined = table_->Join(probe, "content", "c").ValueOrDie();
  std::string plan = joined.Explain().ValueOrDie();
  EXPECT_EQ(plan.find("IndexedJoin"), std::string::npos);
  EXPECT_EQ(joined.Count().ValueOrDie(), 1u);
}

TEST_F(MultiIndexedTableTest, ScanViewSeesAllRows) {
  auto scan = table_->ToDataFrame().ValueOrDie();
  EXPECT_EQ(scan.Count().ValueOrDie(), 300u);
}

TEST_F(MultiIndexedTableTest, StorageCostScalesWithIndexCount) {
  // Each index keeps its own partitioned copy: the documented cost of
  // multi-indexing in this design.
  auto single =
      MultiIndexedTable::Create(df_, {"id"}, "single").ValueOrDie();
  EXPECT_GT(table_->TotalDataBytes(), single.TotalDataBytes());
  EXPECT_GT(table_->TotalIndexBytes(), 0u);
}

TEST_F(MultiIndexedTableTest, IndexAccessorExposesIndexedDataFrame) {
  auto by_creator = table_->Index("creator").ValueOrDie();
  EXPECT_EQ(by_creator.relation()->indexed_column(), 1);
  auto filtered = by_creator.ToDataFrame()
                      .Filter(Eq(Col("creator"), Lit(Value(int64_t{3}))))
                      .ValueOrDie();
  std::string plan = filtered.Explain().ValueOrDie();
  EXPECT_NE(plan.find("IndexedLookup"), std::string::npos);
}

}  // namespace
}  // namespace idf
