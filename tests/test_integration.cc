// Randomized cross-engine equivalence: for random tables and random
// queries, the Indexed DataFrame pipeline must produce exactly the rows the
// vanilla pipeline produces. This is the property the paper's transparent
// Catalyst integration promises — indexed execution changes the plan, never
// the answer.
#include <atomic>
#include <thread>

#include <gtest/gtest.h>

#include "common/hash.h"
#include "indexed/indexed_dataframe.h"
#include "sql/session.h"

namespace idf {
namespace {

class RandomizedEquivalenceTest : public ::testing::TestWithParam<uint64_t> {};

RowVec RandomRows(Random64* rng, size_t n, int64_t key_range) {
  RowVec rows;
  for (size_t i = 0; i < n; ++i) {
    Value key = rng->Uniform(20) == 0
                    ? Value::Null()
                    : Value(static_cast<int64_t>(rng->Uniform(
                          static_cast<uint64_t>(key_range))));
    rows.push_back({key,
                    Value("s" + std::to_string(rng->Uniform(50))),
                    Value(static_cast<int64_t>(rng->Uniform(1000)))});
  }
  return rows;
}

TEST_P(RandomizedEquivalenceTest, FiltersJoinsAndAggregatesAgree) {
  Random64 rng(GetParam());
  EngineConfig cfg;
  cfg.num_partitions = 1 + static_cast<int>(rng.Uniform(7));
  cfg.num_threads = 1 + static_cast<int>(rng.Uniform(3));
  cfg.row_batch_bytes = 16 * 1024;
  auto session = Session::Make(cfg).ValueOrDie();

  auto schema = Schema::Make({{"k", TypeId::kInt64, true},
                              {"s", TypeId::kString, true},
                              {"w", TypeId::kInt64, true}});
  const int64_t key_range = 1 + static_cast<int64_t>(rng.Uniform(40));
  RowVec rows = RandomRows(&rng, 200 + rng.Uniform(800), key_range);
  auto df = session->CreateDataFrame(schema, rows, "rand").ValueOrDie();
  auto cached = df.Cache().ValueOrDie();
  auto indexed = IndexedDataFrame::CreateIndex(df, 0, "rand_idx").ValueOrDie();

  // --- equality filters (hits, misses, null literal semantics) ---
  for (int trial = 0; trial < 8; ++trial) {
    int64_t key = static_cast<int64_t>(rng.Uniform(
        static_cast<uint64_t>(key_range + 5)));  // sometimes missing
    auto vanilla = cached.Filter(Eq(Col("k"), Lit(Value(key))))
                       .ValueOrDie()
                       .Collect()
                       .ValueOrDie();
    auto via_index = indexed.ToDataFrame()
                         .Filter(Eq(Col("k"), Lit(Value(key))))
                         .ValueOrDie()
                         .Collect()
                         .ValueOrDie();
    auto via_getrows = indexed.GetRows(Value(key)).Collect().ValueOrDie();
    SortRows(&vanilla);
    SortRows(&via_index);
    SortRows(&via_getrows);
    EXPECT_EQ(vanilla, via_index) << "key " << key;
    EXPECT_EQ(vanilla, via_getrows) << "key " << key;
  }

  // --- joins against a random probe table ---
  auto probe_schema = Schema::Make({{"fk", TypeId::kInt64, true},
                                    {"tag", TypeId::kString, true}});
  RowVec probe_rows;
  size_t probe_n = 20 + rng.Uniform(200);
  for (size_t i = 0; i < probe_n; ++i) {
    Value key = rng.Uniform(15) == 0
                    ? Value::Null()
                    : Value(static_cast<int64_t>(
                          rng.Uniform(static_cast<uint64_t>(key_range + 3))));
    probe_rows.push_back({key, Value("t" + std::to_string(i))});
  }
  auto probe =
      session->CreateDataFrame(probe_schema, probe_rows, "probe").ValueOrDie();

  auto vanilla_join =
      cached.Join(probe, "k", "fk").ValueOrDie().Collect().ValueOrDie();
  auto indexed_join =
      indexed.Join(probe, "k", "fk").ValueOrDie().Collect().ValueOrDie();
  SortRows(&vanilla_join);
  SortRows(&indexed_join);
  EXPECT_EQ(vanilla_join, indexed_join);

  // --- aggregates over both representations ---
  auto vanilla_agg = cached.GroupByAgg({"k"}, {CountStar("c"), SumOf(Col("w"), "s")})
                         .ValueOrDie()
                         .Collect()
                         .ValueOrDie();
  auto indexed_agg = indexed.ToDataFrame()
                         .GroupByAgg({"k"}, {CountStar("c"), SumOf(Col("w"), "s")})
                         .ValueOrDie()
                         .Collect()
                         .ValueOrDie();
  SortRows(&vanilla_agg);
  SortRows(&indexed_agg);
  EXPECT_EQ(vanilla_agg, indexed_agg);

  // --- appends keep the engines equivalent ---
  RowVec extra = RandomRows(&rng, 100, key_range);
  auto extra_df = session->CreateDataFrame(schema, extra, "extra").ValueOrDie();
  auto indexed2 = indexed.AppendRows(extra_df).ValueOrDie();

  RowVec combined = rows;
  combined.insert(combined.end(), extra.begin(), extra.end());
  auto df2 = session->CreateDataFrame(schema, combined, "rand2").ValueOrDie();
  auto cached2 = df2.Cache().ValueOrDie();

  for (int trial = 0; trial < 4; ++trial) {
    int64_t key = static_cast<int64_t>(
        rng.Uniform(static_cast<uint64_t>(key_range)));
    auto vanilla = cached2.Filter(Eq(Col("k"), Lit(Value(key))))
                       .ValueOrDie()
                       .Collect()
                       .ValueOrDie();
    auto via_index = indexed2.GetRows(Value(key)).Collect().ValueOrDie();
    SortRows(&vanilla);
    SortRows(&via_index);
    EXPECT_EQ(vanilla, via_index) << "post-append key " << key;
  }
  size_t scan_count = indexed2.ToDataFrame().Count().ValueOrDie();
  EXPECT_EQ(scan_count, combined.size());
}

INSTANTIATE_TEST_SUITE_P(Seeds, RandomizedEquivalenceTest,
                         ::testing::Values(1, 2, 3, 4, 5, 11, 42, 1234));

TEST(IntegrationStressTest, ConcurrentAppendsAndQueriesStayConsistent) {
  EngineConfig cfg;
  cfg.num_partitions = 4;
  cfg.num_threads = 2;
  cfg.row_batch_bytes = 32 * 1024;
  auto session = Session::Make(cfg).ValueOrDie();
  auto schema = Schema::Make({{"k", TypeId::kInt64, false},
                              {"seq", TypeId::kInt64, false}});
  RowVec seed;
  for (int64_t i = 0; i < 50; ++i) seed.push_back({Value(i % 5), Value(int64_t{-1})});
  auto df = session->CreateDataFrame(schema, seed, "c").ValueOrDie();
  auto idf =
      IndexedDataFrame::CreateIndex(df, 0, "concurrent").ValueOrDie().Cache();

  std::atomic<bool> stop{false};
  std::atomic<uint64_t> violations{0};
  std::thread appender([&] {
    for (int64_t i = 0; i < 5000; ++i) {
      Status st = idf.relation()->AppendRow({Value(i % 5), Value(i)});
      if (!st.ok()) violations.fetch_add(1);
    }
    stop.store(true);
  });
  std::thread reader([&] {
    size_t last = 0;
    while (!stop.load()) {
      auto rows = idf.GetRows(Value(int64_t{2})).Collect();
      if (!rows.ok()) {
        violations.fetch_add(1);
        continue;
      }
      if (rows->size() < last) violations.fetch_add(1);  // never shrink
      last = rows->size();
      for (const Row& row : *rows) {
        if (!(row[0] == Value(int64_t{2}))) violations.fetch_add(1);
      }
    }
  });
  appender.join();
  reader.join();
  EXPECT_EQ(violations.load(), 0u);
  EXPECT_EQ(idf.GetRows(Value(int64_t{2})).Count().ValueOrDie(),
            10u + 1000u);
}

TEST(IntegrationTest, TwoIndexesOverTheSameData) {
  // The SNB context indexes `post` twice (by creator and by id); verify the
  // pattern directly: two IndexedDataFrames over one source, each routing
  // by its own column.
  auto session = Session::Make().ValueOrDie();
  auto schema = Schema::Make({{"a", TypeId::kInt64, false},
                              {"b", TypeId::kInt64, false}});
  RowVec rows;
  for (int64_t i = 0; i < 100; ++i) rows.push_back({Value(i), Value(i % 10)});
  auto df = session->CreateDataFrame(schema, rows, "dual").ValueOrDie();
  auto by_a = IndexedDataFrame::CreateIndex(df, "a", "by_a").ValueOrDie();
  auto by_b = IndexedDataFrame::CreateIndex(df, "b", "by_b").ValueOrDie();
  EXPECT_EQ(by_a.GetRows(Value(int64_t{42})).Count().ValueOrDie(), 1u);
  EXPECT_EQ(by_b.GetRows(Value(int64_t{4})).Count().ValueOrDie(), 10u);
  // Appending to one does not affect the other.
  auto extra =
      session->CreateDataFrame(schema, {{Value(int64_t{1000}), Value(int64_t{4})}},
                               "x")
          .ValueOrDie();
  by_b.AppendRows(extra).ValueOrDie();
  EXPECT_EQ(by_b.GetRows(Value(int64_t{4})).Count().ValueOrDie(), 11u);
  EXPECT_EQ(by_a.GetRows(Value(int64_t{1000})).Count().ValueOrDie(), 0u);
}

}  // namespace
}  // namespace idf
