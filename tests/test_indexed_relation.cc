// Unit tests for IndexedRelation: hash-partitioned build, appends,
// multi-partition snapshots, version counting.
#include "indexed/indexed_relation.h"

#include <atomic>
#include <set>
#include <thread>

#include <gtest/gtest.h>

#include "common/logging.h"

namespace idf {
namespace {

ExecutorContextPtr MakeCtx(int partitions = 4, int threads = 2) {
  EngineConfig cfg;
  cfg.num_partitions = partitions;
  cfg.num_threads = threads;
  cfg.row_batch_bytes = 16 * 1024;
  return ExecutorContext::Make(cfg).ValueOrDie();
}

SchemaPtr KvSchema() {
  return Schema::Make({{"k", TypeId::kInt64, true}, {"v", TypeId::kString, true}});
}

RowVec KvRows(int n, int keys = 10) {
  RowVec rows;
  for (int64_t i = 0; i < n; ++i) {
    rows.push_back({Value(i % keys), Value("r" + std::to_string(i))});
  }
  return rows;
}

TEST(IndexedRelationTest, BuildAndLookup) {
  auto ctx = MakeCtx();
  auto rel = IndexedRelation::Build(*ctx, "t", KvSchema(), 0, KvRows(1000))
                 .ValueOrDie();
  EXPECT_EQ(rel->num_rows(), 1000u);
  EXPECT_EQ(rel->num_partitions(), 4);
  for (int64_t k = 0; k < 10; ++k) {
    RowVec rows = rel->GetRows(Value(k));
    EXPECT_EQ(rows.size(), 100u) << k;
    for (const Row& row : rows) EXPECT_EQ(row[0], Value(k));
  }
  EXPECT_TRUE(rel->GetRows(Value(int64_t{999})).empty());
}

TEST(IndexedRelationTest, RowsLiveInTheirHashPartition) {
  auto ctx = MakeCtx(8);
  auto rel = IndexedRelation::Build(*ctx, "t", KvSchema(), 0, KvRows(800, 40))
                 .ValueOrDie();
  for (int64_t k = 0; k < 40; ++k) {
    int home = rel->partitioner().PartitionOf(Value(k));
    // The key's rows are in the home partition and nowhere else.
    EXPECT_EQ(rel->partition(home).GetRows(Value(k)).size(), 20u);
    for (int p = 0; p < rel->num_partitions(); ++p) {
      if (p == home) continue;
      EXPECT_TRUE(rel->partition(p).GetRows(Value(k)).empty());
    }
  }
}

TEST(IndexedRelationTest, MakeRejectsBadColumn) {
  EngineConfig cfg;
  EXPECT_TRUE(
      IndexedRelation::Make("t", KvSchema(), 5, cfg).status().IsIndexError());
  EXPECT_TRUE(
      IndexedRelation::Make("t", KvSchema(), -1, cfg).status().IsIndexError());
}

TEST(IndexedRelationTest, AppendRowsBumpsVersion) {
  auto ctx = MakeCtx();
  auto rel =
      IndexedRelation::Build(*ctx, "t", KvSchema(), 0, KvRows(100)).ValueOrDie();
  uint64_t v0 = rel->version();
  ASSERT_TRUE(rel->AppendRows(*ctx, KvRows(50)).ok());
  EXPECT_EQ(rel->version(), v0 + 1);
  EXPECT_EQ(rel->num_rows(), 150u);
}

TEST(IndexedRelationTest, AppendRowValidates) {
  auto ctx = MakeCtx();
  auto rel =
      IndexedRelation::Build(*ctx, "t", KvSchema(), 0, KvRows(10)).ValueOrDie();
  EXPECT_TRUE(rel->AppendRow({Value(int64_t{1})}).IsInvalidArgument());
  EXPECT_TRUE(
      rel->AppendRow({Value("wrong"), Value("type")}).IsTypeError());
}

TEST(IndexedRelationTest, SingleRowAppendVisibleImmediately) {
  auto ctx = MakeCtx();
  auto rel =
      IndexedRelation::Build(*ctx, "t", KvSchema(), 0, {}).ValueOrDie();
  ASSERT_TRUE(rel->AppendRow({Value(int64_t{42}), Value("hello")}).ok());
  RowVec rows = rel->GetRows(Value(int64_t{42}));
  ASSERT_EQ(rows.size(), 1u);
  EXPECT_EQ(rows[0][1], Value("hello"));
}

TEST(IndexedRelationTest, SnapshotIsConsistentAcrossPartitions) {
  auto ctx = MakeCtx();
  auto rel =
      IndexedRelation::Build(*ctx, "t", KvSchema(), 0, KvRows(400)).ValueOrDie();
  IndexedRelationSnapshot snap = rel->Snapshot();
  ASSERT_TRUE(rel->AppendRows(*ctx, KvRows(400)).ok());
  EXPECT_EQ(snap.num_rows(), 400u);
  for (int64_t k = 0; k < 10; ++k) {
    EXPECT_EQ(snap.GetRows(Value(k)).size(), 40u);
    EXPECT_EQ(rel->GetRows(Value(k)).size(), 80u);
  }
}

TEST(IndexedRelationTest, NullKeyLookupIsEmpty) {
  auto ctx = MakeCtx();
  auto rel =
      IndexedRelation::Build(*ctx, "t", KvSchema(), 0, KvRows(10)).ValueOrDie();
  EXPECT_TRUE(rel->GetRows(Value::Null()).empty());
  EXPECT_TRUE(rel->Snapshot().GetRows(Value::Null()).empty());
}

TEST(IndexedRelationTest, ConcurrentAppendersSerializePerPartition) {
  auto ctx = MakeCtx(4, 4);
  auto rel =
      IndexedRelation::Build(*ctx, "t", KvSchema(), 0, {}).ValueOrDie();
  std::vector<std::thread> writers;
  constexpr int kWriters = 4;
  constexpr int kRowsPerWriter = 2000;
  for (int w = 0; w < kWriters; ++w) {
    writers.emplace_back([&rel, w] {
      for (int i = 0; i < kRowsPerWriter; ++i) {
        Row row = {Value(int64_t{i % 10}),
                   Value("w" + std::to_string(w) + "_" + std::to_string(i))};
        IDF_CHECK_OK(rel->AppendRow(row));
      }
    });
  }
  for (auto& t : writers) t.join();
  EXPECT_EQ(rel->num_rows(), static_cast<size_t>(kWriters * kRowsPerWriter));
  size_t total = 0;
  for (int64_t k = 0; k < 10; ++k) total += rel->GetRows(Value(k)).size();
  EXPECT_EQ(total, static_cast<size_t>(kWriters * kRowsPerWriter));
}

TEST(IndexedRelationTest, MemoryOverheadIsModest) {
  auto ctx = MakeCtx();
  auto rel = IndexedRelation::Build(*ctx, "t", KvSchema(), 0,
                                    KvRows(20000, 5000))
                 .ValueOrDie();
  // The paper claims "relatively low memory overhead in addition to the
  // original data"; the index should cost less than ~3x the data here
  // (small rows are the worst case for relative overhead).
  EXPECT_GT(rel->data_bytes(), 0u);
  EXPECT_LT(rel->index_bytes(),
            3 * rel->data_bytes() + (1u << 20));
}

TEST(IndexedRelationTest, BatchedAppendLocksEachTouchedPartitionOnce) {
  auto ctx = MakeCtx(8);
  auto rel = IndexedRelation::Build(*ctx, "t", KvSchema(), 0, {}).ValueOrDie();

  // Few keys, so some of the 8 partitions are provably untouched.
  RowVec rows = KvRows(500, 3);
  std::set<int> touched;
  for (const Row& row : rows) {
    touched.insert(rel->partitioner().PartitionOf(row[0]));
  }
  ASSERT_GT(touched.size(), 1u);
  ASSERT_LT(touched.size(), 8u);

  ctx->metrics().Reset();
  ASSERT_TRUE(rel->AppendRows(*ctx, rows).ok());
  // The acceptance criterion of the batched write path: lock acquisitions
  // per batch == partitions touched, and the whole batch is one commit.
  EXPECT_EQ(ctx->metrics().append_partition_locks(), touched.size());
  EXPECT_EQ(ctx->metrics().append_batches(), 1u);
}

TEST(IndexedRelationTest, BatchedAndPerRowAppendsAreEquivalent) {
  auto ctx = MakeCtx();
  RowVec rows = KvRows(600, 17);
  auto batched =
      IndexedRelation::Make("b", KvSchema(), 0, ctx->config()).ValueOrDie();
  auto per_row =
      IndexedRelation::Make("p", KvSchema(), 0, ctx->config()).ValueOrDie();
  ASSERT_TRUE(batched->AppendRows(*ctx, rows).ok());
  for (const Row& row : rows) ASSERT_TRUE(per_row->AppendRow(row).ok());

  ASSERT_EQ(batched->num_rows(), per_row->num_rows());
  for (int64_t k = 0; k < 17; ++k) {
    RowVec b = batched->GetRows(Value(k));
    RowVec p = per_row->GetRows(Value(k));
    ASSERT_EQ(b.size(), p.size()) << k;
    // Same rows in the same newest-first order.
    for (size_t i = 0; i < b.size(); ++i) EXPECT_EQ(b[i], p[i]) << k;
  }
}

TEST(IndexedRelationTest, AppendEncodedRejectsMismatchedBatch) {
  auto ctx = MakeCtx();
  auto rel = IndexedRelation::Build(*ctx, "t", KvSchema(), 0, {}).ValueOrDie();
  RowVec rows = KvRows(10);
  auto enc = EncodeRowBatch(*ctx, *KvSchema(), rows).ValueOrDie();
  RowVec fewer(rows.begin(), rows.begin() + 5);
  EXPECT_TRUE(rel->AppendEncoded(*ctx, fewer, enc).IsInvalidArgument());
  EXPECT_EQ(rel->num_rows(), 0u);
}

TEST(IndexedRelationTest, ChainStatsTrackAppendedChains) {
  auto ctx = MakeCtx();
  auto rel = IndexedRelation::Build(*ctx, "t", KvSchema(), 0, {}).ValueOrDie();
  ASSERT_TRUE(rel->AppendRows(*ctx, KvRows(400, 8)).ok());
  ChainStatsSnapshot stats = rel->ChainStats();
  EXPECT_EQ(stats.num_keys, 8u);
  EXPECT_EQ(stats.total_links, 400u);
  EXPECT_EQ(stats.max_chain_len, 50u);
  EXPECT_DOUBLE_EQ(stats.MeanChainLen(), 50.0);
  uint64_t hist_total = 0;
  for (uint64_t c : stats.chain_len_histogram) hist_total += c;
  EXPECT_EQ(hist_total, stats.num_keys);
}

TEST(IndexedRelationTest, BuildEmptyRelationWorks) {
  auto ctx = MakeCtx();
  auto rel = IndexedRelation::Build(*ctx, "t", KvSchema(), 0, {}).ValueOrDie();
  EXPECT_EQ(rel->num_rows(), 0u);
  EXPECT_TRUE(rel->GetRows(Value(int64_t{1})).empty());
  EXPECT_EQ(rel->Snapshot().num_rows(), 0u);
}

}  // namespace
}  // namespace idf
