// Unit tests for the dynamically typed Value cell.
#include "types/value.h"

#include <gtest/gtest.h>

namespace idf {
namespace {

TEST(ValueTest, DefaultIsNull) {
  Value v;
  EXPECT_TRUE(v.is_null());
  EXPECT_TRUE(Value::Null().is_null());
}

TEST(ValueTest, TypePredicates) {
  EXPECT_TRUE(Value(true).is_bool());
  EXPECT_TRUE(Value(int32_t{1}).is_int32());
  EXPECT_TRUE(Value(int64_t{1}).is_int64());
  EXPECT_TRUE(Value(1.5).is_double());
  EXPECT_TRUE(Value("x").is_string());
  EXPECT_TRUE(Value(std::string("x")).is_string());
}

TEST(ValueTest, Accessors) {
  EXPECT_EQ(Value(true).bool_value(), true);
  EXPECT_EQ(Value(int32_t{-3}).int32_value(), -3);
  EXPECT_EQ(Value(int64_t{1} << 40).int64_value(), int64_t{1} << 40);
  EXPECT_DOUBLE_EQ(Value(2.25).double_value(), 2.25);
  EXPECT_EQ(Value("abc").string_value(), "abc");
}

TEST(ValueTest, AsInt64WidensIntegers) {
  EXPECT_EQ(Value(int32_t{7}).AsInt64(), 7);
  EXPECT_EQ(Value(int64_t{7}).AsInt64(), 7);
  EXPECT_EQ(Value(true).AsInt64(), 1);
  EXPECT_EQ(Value(false).AsInt64(), 0);
}

TEST(ValueTest, AsDoubleWidens) {
  EXPECT_DOUBLE_EQ(Value(int32_t{3}).AsDouble(), 3.0);
  EXPECT_DOUBLE_EQ(Value(1.5).AsDouble(), 1.5);
}

TEST(ValueTest, EqualityWithinTypes) {
  EXPECT_EQ(Value(int64_t{5}), Value(int64_t{5}));
  EXPECT_NE(Value(int64_t{5}), Value(int64_t{6}));
  EXPECT_EQ(Value("a"), Value("a"));
  EXPECT_NE(Value("a"), Value("b"));
}

TEST(ValueTest, EqualityAcrossNumericWidths) {
  EXPECT_EQ(Value(int32_t{5}), Value(int64_t{5}));
  EXPECT_EQ(Value(int64_t{5}), Value(5.0));
  EXPECT_NE(Value(int64_t{5}), Value(5.5));
}

TEST(ValueTest, NullEqualsNullInStrictSemantics) {
  // Strict (group-by) equality, not SQL 3VL (which lives in ComparisonExpr).
  EXPECT_EQ(Value::Null(), Value::Null());
  EXPECT_NE(Value::Null(), Value(int64_t{0}));
}

TEST(ValueTest, StringNeverEqualsNumber) {
  EXPECT_NE(Value("5"), Value(int64_t{5}));
}

TEST(ValueTest, OrderingNumeric) {
  EXPECT_LT(Value(int64_t{1}), Value(int64_t{2}));
  EXPECT_FALSE(Value(int64_t{2}) < Value(int64_t{1}));
  EXPECT_LT(Value(int32_t{1}), Value(1.5));
}

TEST(ValueTest, OrderingStrings) {
  EXPECT_LT(Value("a"), Value("b"));
  EXPECT_FALSE(Value("b") < Value("a"));
}

TEST(ValueTest, NullSortsFirst) {
  EXPECT_LT(Value::Null(), Value(int64_t{-100}));
  EXPECT_FALSE(Value(int64_t{-100}) < Value::Null());
  EXPECT_FALSE(Value::Null() < Value::Null());
}

TEST(ValueTest, NumbersSortBeforeStrings) {
  EXPECT_LT(Value(int64_t{999}), Value("0"));
}

TEST(ValueTest, HashConsistentWithNumericEquality) {
  // 3 (int32), 3 (int64) and 3.0 must hash identically so that mixed-width
  // keys partition and index consistently.
  EXPECT_EQ(Value(int32_t{3}).Hash(), Value(int64_t{3}).Hash());
  EXPECT_EQ(Value(int64_t{3}).Hash(), Value(3.0).Hash());
  EXPECT_NE(Value(int64_t{3}).Hash(), Value(int64_t{4}).Hash());
}

TEST(ValueTest, HashStringsStable) {
  EXPECT_EQ(Value("abc").Hash(), Value(std::string("abc")).Hash());
  EXPECT_NE(Value("abc").Hash(), Value("abd").Hash());
}

TEST(ValueTest, ToStringRendering) {
  EXPECT_EQ(Value::Null().ToString(), "null");
  EXPECT_EQ(Value(true).ToString(), "true");
  EXPECT_EQ(Value(int64_t{12}).ToString(), "12");
  EXPECT_EQ(Value("hi").ToString(), "\"hi\"");
}

TEST(ValueTest, CheckTypeAcceptsMatching) {
  EXPECT_TRUE(Value(int64_t{1}).CheckType(TypeId::kInt64).ok());
  EXPECT_TRUE(Value(int32_t{1}).CheckType(TypeId::kInt64).ok());  // widening
  EXPECT_TRUE(Value(int64_t{1}).CheckType(TypeId::kTimestamp).ok());
  EXPECT_TRUE(Value("x").CheckType(TypeId::kString).ok());
  EXPECT_TRUE(Value::Null().CheckType(TypeId::kInt32).ok());
  EXPECT_TRUE(Value(int64_t{1}).CheckType(TypeId::kFloat64).ok());
}

TEST(ValueTest, CheckTypeRejectsMismatched) {
  EXPECT_TRUE(Value("x").CheckType(TypeId::kInt64).IsTypeError());
  EXPECT_TRUE(Value(1.5).CheckType(TypeId::kInt64).IsTypeError());
  EXPECT_TRUE(Value(int64_t{1}).CheckType(TypeId::kString).IsTypeError());
  EXPECT_TRUE(Value(int64_t{1}).CheckType(TypeId::kBool).IsTypeError());
}

TEST(ValueTest, CastWideningAndNarrowing) {
  EXPECT_EQ(Value(int32_t{5}).CastTo(TypeId::kInt64).ValueOrDie(),
            Value(int64_t{5}));
  EXPECT_EQ(Value(int64_t{5}).CastTo(TypeId::kInt32).ValueOrDie(),
            Value(int32_t{5}));
  EXPECT_TRUE(Value(int64_t{1} << 40)
                  .CastTo(TypeId::kInt32)
                  .status()
                  .IsInvalidArgument());
  EXPECT_EQ(Value(int64_t{5}).CastTo(TypeId::kFloat64).ValueOrDie(), Value(5.0));
}

TEST(ValueTest, CastNullIsNull) {
  EXPECT_TRUE(Value::Null().CastTo(TypeId::kString).ValueOrDie().is_null());
}

TEST(ValueTest, CastToStringRenders) {
  EXPECT_EQ(Value(int64_t{7}).CastTo(TypeId::kString).ValueOrDie(), Value("7"));
}

TEST(ValueTest, CastStringToNumberFails) {
  EXPECT_TRUE(Value("7").CastTo(TypeId::kInt64).status().IsTypeError());
}

}  // namespace
}  // namespace idf
