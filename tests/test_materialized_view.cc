// Differential tests for the standing-query subsystem (src/view): after
// any interleaving of appends, a subscription's incrementally maintained
// snapshot must be byte-equal to a from-scratch execution of the same SQL
// against the current epoch — across every maintenance strategy (compiled
// select, grouped and global aggregate, indexed join, recompute fallback),
// NULL-bearing group and join keys, post-ops (HAVING / ORDER BY / LIMIT),
// arrangement sharing, and concurrent subscribe/unsubscribe while an
// appender commits. Runs under TSan in CI.
#include <atomic>
#include <random>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "indexed/indexed_dataframe.h"
#include "service/query_service.h"
#include "sql/session.h"
#include "types/row.h"

namespace idf {
namespace {

SchemaPtr OrdersSchema() {
  return Schema::Make({{"oid", TypeId::kInt64, false},
                       {"user_id", TypeId::kInt64, true},  // nullable join key
                       {"amount", TypeId::kInt64, false},
                       {"status", TypeId::kString, true}});  // nullable group key
}

SchemaPtr UsersSchema() {
  return Schema::Make({{"uid", TypeId::kInt64, true},  // nullable join key
                       {"name", TypeId::kString, false}});
}

/// Service with two indexed tables: orders (indexed on user_id) and users
/// (indexed on uid) — both join columns indexed, so join views maintain
/// incrementally instead of degrading to recompute.
QueryServicePtr MakeViewService() {
  ServiceConfig cfg;
  cfg.engine.num_threads = 2;
  cfg.engine.num_partitions = 4;
  auto service = QueryService::Make(cfg).ValueOrDie();
  auto session = Session::Make(cfg.engine).ValueOrDie();
  auto odf = session->CreateDataFrame(OrdersSchema(), {}, "orders").ValueOrDie();
  auto orel = IndexedDataFrame::CreateIndex(odf, 1, "orders_by_user")
                  .ValueOrDie()
                  .relation();
  EXPECT_TRUE(service->RegisterTable("orders", orel).ok());
  auto udf = session->CreateDataFrame(UsersSchema(), {}, "users").ValueOrDie();
  auto urel =
      IndexedDataFrame::CreateIndex(udf, 0, "users_by_uid").ValueOrDie().relation();
  EXPECT_TRUE(service->RegisterTable("users", urel).ok());
  return service;
}

/// Deterministic random order rows; ~1/8 NULL user_id, ~1/8 NULL status.
RowVec RandomOrders(std::mt19937* rng, int64_t* next_oid, size_t n) {
  static const char* kStatuses[] = {"new", "paid", "shipped"};
  RowVec rows;
  rows.reserve(n);
  for (size_t i = 0; i < n; ++i) {
    Value user = ((*rng)() % 8 == 0)
                     ? Value::Null()
                     : Value(static_cast<int64_t>((*rng)() % 20));
    Value status = ((*rng)() % 8 == 0)
                       ? Value::Null()
                       : Value(kStatuses[(*rng)() % 3]);
    rows.push_back({Value((*next_oid)++),
                    user,
                    Value(static_cast<int64_t>((*rng)() % 100)),
                    status});
  }
  return rows;
}

/// Deterministic random user rows; ~1/8 NULL uid (stored but unindexed —
/// inner joins must never match them).
RowVec RandomUsers(std::mt19937* rng, int64_t* next_uid, size_t n) {
  RowVec rows;
  rows.reserve(n);
  for (size_t i = 0; i < n; ++i) {
    Value uid =
        ((*rng)() % 8 == 0) ? Value::Null() : Value((*next_uid)++);
    std::string name("u");
    name += std::to_string((*next_uid)++);
    rows.push_back({uid, Value(std::move(name))});
  }
  return rows;
}

/// The differential oracle: the maintained snapshot must equal a
/// from-scratch execution of the subscription's own SQL at the current
/// epoch. `ordered` compares row-for-row (ORDER BY views); otherwise both
/// sides are canonicalized with SortRows.
::testing::AssertionResult MatchesRecompute(QueryService* service,
                                            const ViewSubscriptionPtr& sub,
                                            bool ordered = false) {
  QueryResult full = service->Execute(sub->sql());
  if (!full.ok()) {
    return ::testing::AssertionFailure()
           << "recompute failed: " << full.status.ToString();
  }
  ViewSnapshotPtr snap = sub->Snapshot();
  if (snap == nullptr || snap->rows == nullptr) {
    return ::testing::AssertionFailure() << "null snapshot";
  }
  RowVec got = *snap->rows;
  RowVec want = std::move(full.rows);
  if (!ordered) {
    SortRows(&got);
    SortRows(&want);
  }
  if (got.size() != want.size()) {
    return ::testing::AssertionFailure()
           << "row count: maintained=" << got.size()
           << " recomputed=" << want.size() << " for \"" << sub->sql() << '"';
  }
  for (size_t i = 0; i < got.size(); ++i) {
    if (!(got[i] == want[i])) {
      return ::testing::AssertionFailure()
             << "row " << i << ": maintained=" << RowToString(got[i])
             << " recomputed=" << RowToString(want[i]) << " for \""
             << sub->sql() << '"';
    }
  }
  return ::testing::AssertionSuccess();
}

TEST(MaterializedViewTest, SelectViewTracksAppendsIncrementally) {
  auto service = MakeViewService();
  auto sub = service
                 ->Subscribe(
                     "SELECT oid, amount FROM orders "
                     "WHERE amount > 50 AND status = 'paid'")
                 .ValueOrDie();
  EXPECT_EQ(sub->kind(), ViewKind::kSelect);
  EXPECT_TRUE(MatchesRecompute(service.get(), sub));  // empty table

  std::mt19937 rng(7);
  int64_t oid = 0;
  for (int pass = 0; pass < 8; ++pass) {
    ASSERT_TRUE(
        service->Append("orders", RandomOrders(&rng, &oid, 1 + rng() % 40))
            .ok());
    ASSERT_TRUE(MatchesRecompute(service.get(), sub));
  }
  ServiceStats stats = service->Stats();
  EXPECT_GT(stats.deltas_propagated, 0u);
  EXPECT_GT(stats.rows_maintained_incrementally, 0u);
  ASSERT_TRUE(service->Unsubscribe(sub).ok());
}

TEST(MaterializedViewTest, GroupedAggregateWithNullKeysMatchesRecompute) {
  auto service = MakeViewService();
  auto sub = service
                 ->Subscribe(
                     "SELECT status, COUNT(*), SUM(amount) FROM orders "
                     "GROUP BY status")
                 .ValueOrDie();
  EXPECT_EQ(sub->kind(), ViewKind::kAggregate);

  std::mt19937 rng(11);
  int64_t oid = 0;
  for (int pass = 0; pass < 8; ++pass) {
    ASSERT_TRUE(
        service->Append("orders", RandomOrders(&rng, &oid, 1 + rng() % 30))
            .ok());
    ASSERT_TRUE(MatchesRecompute(service.get(), sub));
  }
  ASSERT_TRUE(service->Unsubscribe(sub).ok());
}

TEST(MaterializedViewTest, GlobalAggregateCorrectFromEmptyTableOnward) {
  auto service = MakeViewService();
  auto sub =
      service->Subscribe("SELECT COUNT(*), SUM(amount) FROM orders")
          .ValueOrDie();
  EXPECT_EQ(sub->kind(), ViewKind::kAggregate);
  // Empty table: one default row (COUNT 0), same as the from-scratch plan.
  ASSERT_TRUE(MatchesRecompute(service.get(), sub));
  ASSERT_EQ(sub->Snapshot()->rows->size(), 1u);
  EXPECT_EQ((*sub->Snapshot()->rows)[0][0].int64_value(), 0);

  std::mt19937 rng(13);
  int64_t oid = 0;
  for (int pass = 0; pass < 5; ++pass) {
    ASSERT_TRUE(
        service->Append("orders", RandomOrders(&rng, &oid, 1 + rng() % 25))
            .ok());
    ASSERT_TRUE(MatchesRecompute(service.get(), sub));
  }
  ASSERT_TRUE(service->Unsubscribe(sub).ok());
}

TEST(MaterializedViewTest, JoinViewWithNullKeysMatchesRecompute) {
  auto service = MakeViewService();
  auto sub = service
                 ->Subscribe(
                     "SELECT o.oid, u.name FROM orders o "
                     "JOIN users u ON o.user_id = u.uid")
                 .ValueOrDie();
  // Both join columns are indexed, so the view maintains incrementally.
  EXPECT_EQ(sub->kind(), ViewKind::kJoin);

  std::mt19937 rng(17);
  int64_t oid = 0, uid = 0;
  for (int pass = 0; pass < 10; ++pass) {
    // Interleave sides, sometimes both in one pass (same-pass cross
    // deltas must count exactly once), with NULL keys on both sides.
    if (pass % 3 != 1) {
      ASSERT_TRUE(
          service->Append("users", RandomUsers(&rng, &uid, 1 + rng() % 6))
              .ok());
    }
    if (pass % 3 != 2) {
      ASSERT_TRUE(
          service->Append("orders", RandomOrders(&rng, &oid, 1 + rng() % 20))
              .ok());
    }
    ASSERT_TRUE(MatchesRecompute(service.get(), sub));
  }
  // The incremental join path must have survived every pass (a
  // maintenance error would silently degrade to recompute and still
  // satisfy the differential check).
  EXPECT_EQ(service->views().Stats().maintenance_errors, 0u);
  ASSERT_TRUE(service->Unsubscribe(sub).ok());
}

TEST(MaterializedViewTest, JoinWithResidualWhereRunsAsPostOp) {
  auto service = MakeViewService();
  auto sub = service
                 ->Subscribe(
                     "SELECT o.oid, u.name FROM orders o "
                     "JOIN users u ON o.user_id = u.uid "
                     "WHERE o.amount > 40")
                 .ValueOrDie();
  std::mt19937 rng(19);
  int64_t oid = 0, uid = 0;
  ASSERT_TRUE(service->Append("users", RandomUsers(&rng, &uid, 15)).ok());
  for (int pass = 0; pass < 6; ++pass) {
    ASSERT_TRUE(
        service->Append("orders", RandomOrders(&rng, &oid, 1 + rng() % 20))
            .ok());
    ASSERT_TRUE(MatchesRecompute(service.get(), sub));
  }
  ASSERT_TRUE(service->Unsubscribe(sub).ok());
}

TEST(MaterializedViewTest, RecomputeFallbackStaysCorrect) {
  auto service = MakeViewService();
  // Aggregate over a join has no incremental strategy: classified as
  // recompute and re-executed against each new epoch.
  auto sub = service
                 ->Subscribe(
                     "SELECT u.name, COUNT(*) FROM orders o "
                     "JOIN users u ON o.user_id = u.uid GROUP BY u.name")
                 .ValueOrDie();
  EXPECT_EQ(sub->kind(), ViewKind::kRecompute);

  std::mt19937 rng(23);
  int64_t oid = 0, uid = 0;
  ASSERT_TRUE(service->Append("users", RandomUsers(&rng, &uid, 10)).ok());
  for (int pass = 0; pass < 4; ++pass) {
    ASSERT_TRUE(
        service->Append("orders", RandomOrders(&rng, &oid, 1 + rng() % 15))
            .ok());
    ASSERT_TRUE(MatchesRecompute(service.get(), sub));
  }
  EXPECT_GT(service->Stats().views_recomputed, 0u);
  ASSERT_TRUE(service->Unsubscribe(sub).ok());
}

TEST(MaterializedViewTest, HavingOrderByLimitPostOpsMatchOrdered) {
  auto service = MakeViewService();
  // Deterministic data so sort keys are distinct (no tie ambiguity in the
  // ordered comparison): per-status totals 3*70, 2*80, 1*90.
  RowVec rows;
  int64_t oid = 0;
  for (int i = 0; i < 3; ++i) rows.push_back({Value(oid++), Value(int64_t{1}), Value(int64_t{70}), Value("new")});
  for (int i = 0; i < 2; ++i) rows.push_back({Value(oid++), Value(int64_t{2}), Value(int64_t{80}), Value("paid")});
  rows.push_back({Value(oid++), Value(int64_t{3}), Value(int64_t{90}), Value("shipped")});
  auto sub = service
                 ->Subscribe(
                     "SELECT status, SUM(amount) AS total FROM orders "
                     "GROUP BY status HAVING COUNT(*) > 1 "
                     "ORDER BY total DESC LIMIT 2")
                 .ValueOrDie();
  ASSERT_TRUE(service->Append("orders", rows).ok());
  ASSERT_TRUE(MatchesRecompute(service.get(), sub, /*ordered=*/true));
  auto snap = sub->Snapshot();
  ASSERT_EQ(snap->rows->size(), 2u);  // HAVING drops 'shipped', LIMIT 2
  EXPECT_EQ((*snap->rows)[0][0].string_value(), "new");     // 210
  EXPECT_EQ((*snap->rows)[1][0].string_value(), "paid");    // 160

  // Push 'paid' past 'new': incremental state must re-rank on publish.
  ASSERT_TRUE(service
                  ->Append("orders", {{Value(oid++), Value(int64_t{2}),
                                       Value(int64_t{99}), Value("paid")}})
                  .ok());
  ASSERT_TRUE(MatchesRecompute(service.get(), sub, /*ordered=*/true));
  EXPECT_EQ((*sub->Snapshot()->rows)[0][0].string_value(), "paid");  // 259
  ASSERT_TRUE(service->Unsubscribe(sub).ok());
}

TEST(MaterializedViewTest, MidStreamSubscribeSeesExistingRows) {
  auto service = MakeViewService();
  std::mt19937 rng(29);
  int64_t oid = 0;
  ASSERT_TRUE(service->Append("orders", RandomOrders(&rng, &oid, 50)).ok());

  auto sub =
      service->Subscribe("SELECT status, COUNT(*) FROM orders GROUP BY status")
          .ValueOrDie();
  // The initial state is built from an epoch pin, not from future deltas.
  ASSERT_TRUE(MatchesRecompute(service.get(), sub));

  ASSERT_TRUE(service->Append("orders", RandomOrders(&rng, &oid, 30)).ok());
  ASSERT_TRUE(MatchesRecompute(service.get(), sub));
  ASSERT_TRUE(service->Unsubscribe(sub).ok());

  // A join subscribed over already-populated tables seeds its state from
  // the pin (left rows probe the right index at subscribe time).
  int64_t uid = 0;
  ASSERT_TRUE(service->Append("users", RandomUsers(&rng, &uid, 12)).ok());
  auto join_sub = service
                      ->Subscribe(
                          "SELECT o.oid, u.name FROM orders o "
                          "JOIN users u ON o.user_id = u.uid")
                      .ValueOrDie();
  EXPECT_EQ(join_sub->kind(), ViewKind::kJoin);
  ASSERT_TRUE(MatchesRecompute(service.get(), join_sub));
  ASSERT_TRUE(service->Append("orders", RandomOrders(&rng, &oid, 20)).ok());
  ASSERT_TRUE(service->Append("users", RandomUsers(&rng, &uid, 5)).ok());
  ASSERT_TRUE(MatchesRecompute(service.get(), join_sub));
  EXPECT_EQ(service->views().Stats().maintenance_errors, 0u);
  ASSERT_TRUE(service->Unsubscribe(join_sub).ok());
}

TEST(MaterializedViewTest, IdenticalPlansShareOneArrangement) {
  auto service = MakeViewService();
  const std::string sql = "SELECT status, COUNT(*) FROM orders GROUP BY status";
  auto a = service->Subscribe(sql).ValueOrDie();
  // Same plan, different whitespace: fingerprints match.
  auto b = service
               ->Subscribe(
                   "SELECT  status,  COUNT(*)  FROM orders  GROUP BY status")
               .ValueOrDie();
  auto c = service->Subscribe(sql).ValueOrDie();
  EXPECT_EQ(service->views().num_views(), 1u);
  ServiceStats stats = service->Stats();
  EXPECT_EQ(stats.views_registered, 1u);
  EXPECT_EQ(stats.view_subscribers, 3u);
  EXPECT_EQ(stats.arrangements_shared, 2u);

  // A different plan gets its own arrangement.
  auto d = service->Subscribe("SELECT COUNT(*) FROM orders").ValueOrDie();
  EXPECT_EQ(service->views().num_views(), 2u);

  // All subscribers observe the same maintained state.
  std::mt19937 rng(31);
  int64_t oid = 0;
  ASSERT_TRUE(service->Append("orders", RandomOrders(&rng, &oid, 40)).ok());
  EXPECT_EQ(*a->Snapshot()->rows, *b->Snapshot()->rows);
  EXPECT_EQ(*a->Snapshot()->rows, *c->Snapshot()->rows);

  // Teardown: the arrangement survives until its last subscriber leaves.
  ASSERT_TRUE(service->Unsubscribe(a).ok());
  ASSERT_TRUE(service->Unsubscribe(b).ok());
  EXPECT_EQ(service->views().num_views(), 2u);
  ASSERT_TRUE(service->Unsubscribe(c).ok());
  EXPECT_EQ(service->views().num_views(), 1u);
  EXPECT_FALSE(service->Unsubscribe(c).ok());  // already unsubscribed
  ASSERT_TRUE(service->Unsubscribe(d).ok());
  EXPECT_EQ(service->views().num_views(), 0u);

  // A detached handle still serves its last snapshot (it just stops
  // advancing).
  EXPECT_NE(a->Snapshot(), nullptr);
}

TEST(MaterializedViewTest, CallbacksDeliverMonotonicVersions) {
  auto service = MakeViewService();
  std::vector<uint64_t> versions;
  std::vector<uint64_t> epochs;
  auto sub = service
                 ->Subscribe("SELECT COUNT(*) FROM orders",
                             [&](const ViewSnapshot& snap) {
                               versions.push_back(snap.version);
                               epochs.push_back(snap.epoch);
                             })
                 .ValueOrDie();
  std::mt19937 rng(37);
  int64_t oid = 0;
  const int kAppends = 6;
  for (int i = 0; i < kAppends; ++i) {
    ASSERT_TRUE(service->Append("orders", RandomOrders(&rng, &oid, 5)).ok());
  }
  // Single-threaded appends: one publish (and one callback) per commit.
  ASSERT_EQ(versions.size(), static_cast<size_t>(kAppends));
  for (size_t i = 1; i < versions.size(); ++i) {
    EXPECT_GT(versions[i], versions[i - 1]);
    EXPECT_GT(epochs[i], epochs[i - 1]);
  }
  EXPECT_EQ(epochs.back(), service->epoch());
  EXPECT_EQ(sub->Snapshot()->version, versions.back());
  ASSERT_TRUE(service->Unsubscribe(sub).ok());
}

TEST(MaterializedViewTest, RandomizedInterleavingsAcrossAllViewKinds) {
  auto service = MakeViewService();
  std::mt19937 rng(41);
  int64_t oid = 0, uid = 0;
  ASSERT_TRUE(service->Append("users", RandomUsers(&rng, &uid, 8)).ok());

  std::vector<ViewSubscriptionPtr> subs;
  subs.push_back(
      service->Subscribe("SELECT oid FROM orders WHERE amount > 30")
          .ValueOrDie());
  subs.push_back(service
                     ->Subscribe(
                         "SELECT user_id, COUNT(*), SUM(amount) FROM orders "
                         "GROUP BY user_id")
                     .ValueOrDie());
  subs.push_back(service
                     ->Subscribe(
                         "SELECT o.oid, u.name FROM orders o "
                         "JOIN users u ON o.user_id = u.uid")
                     .ValueOrDie());
  subs.push_back(service
                     ->Subscribe(
                         "SELECT u.name, SUM(o.amount) FROM orders o "
                         "JOIN users u ON o.user_id = u.uid GROUP BY u.name")
                     .ValueOrDie());

  for (int step = 0; step < 30; ++step) {
    if (rng() % 4 == 0) {
      ASSERT_TRUE(
          service->Append("users", RandomUsers(&rng, &uid, 1 + rng() % 4))
              .ok());
    } else {
      ASSERT_TRUE(
          service->Append("orders", RandomOrders(&rng, &oid, 1 + rng() % 12))
              .ok());
    }
    if (step == 10) {
      // Mid-stream subscriber must converge with the rest.
      subs.push_back(
          service->Subscribe("SELECT status, MAX(amount) FROM orders "
                             "GROUP BY status")
              .ValueOrDie());
    }
    if (step % 5 == 4) {
      for (const auto& sub : subs) {
        ASSERT_TRUE(MatchesRecompute(service.get(), sub)) << "step " << step;
      }
    }
  }
  for (const auto& sub : subs) {
    ASSERT_TRUE(MatchesRecompute(service.get(), sub));
    ASSERT_TRUE(service->Unsubscribe(sub).ok());
  }
  EXPECT_EQ(service->views().num_views(), 0u);
  // Planned recomputes (the aggregate-over-join view) are not errors;
  // nothing may have degraded.
  EXPECT_EQ(service->views().Stats().maintenance_errors, 0u);
}

TEST(MaterializedViewTest, ConcurrentSubscribeUnsubscribeWhileAppending) {
  auto service = MakeViewService();
  std::mt19937 seed_rng(43);
  int64_t uid = 0;
  ASSERT_TRUE(service->Append("users", RandomUsers(&seed_rng, &uid, 10)).ok());

  // One subscription held for the whole run: the final differential check
  // proves no delta was lost or double-applied under churn.
  auto held = service
                  ->Subscribe(
                      "SELECT status, COUNT(*), SUM(amount) FROM orders "
                      "GROUP BY status")
                  .ValueOrDie();

  std::atomic<bool> stop{false};
  std::atomic<int64_t> oid_counter{0};

  std::thread appender([&] {
    std::mt19937 rng(47);
    for (int i = 0; i < 60; ++i) {
      RowVec rows;
      for (size_t r = 0; r < 1 + rng() % 8; ++r) {
        rows.push_back({Value(oid_counter.fetch_add(1)),
                        Value(static_cast<int64_t>(rng() % 10)),
                        Value(static_cast<int64_t>(rng() % 100)),
                        Value("s" + std::to_string(rng() % 3))});
      }
      ASSERT_TRUE(service->Append("orders", rows).ok());
    }
    stop.store(true, std::memory_order_release);
  });

  // Churners subscribe, poll (versions must be monotone per handle),
  // and unsubscribe — racing the appender's maintenance passes.
  const char* kSqls[] = {
      "SELECT status, COUNT(*), SUM(amount) FROM orders GROUP BY status",
      "SELECT oid FROM orders WHERE amount > 50",
      "SELECT COUNT(*) FROM orders",
  };
  std::vector<std::thread> churners;
  for (int t = 0; t < 3; ++t) {
    churners.emplace_back([&, t] {
      while (!stop.load(std::memory_order_acquire)) {
        auto r = service->Subscribe(kSqls[t]);
        ASSERT_TRUE(r.ok()) << r.status().ToString();
        ViewSubscriptionPtr sub = r.ValueOrDie();
        uint64_t last = 0;
        for (int p = 0; p < 5; ++p) {
          ViewSnapshotPtr snap = sub->Snapshot();
          ASSERT_NE(snap, nullptr);
          ASSERT_GE(snap->version, last);
          last = snap->version;
          std::this_thread::yield();
        }
        ASSERT_TRUE(service->Unsubscribe(sub).ok());
      }
    });
  }

  appender.join();
  for (auto& t : churners) t.join();

  ASSERT_TRUE(MatchesRecompute(service.get(), held));
  ASSERT_TRUE(service->Unsubscribe(held).ok());
  EXPECT_EQ(service->views().num_views(), 0u);

  ServiceStats stats = service->Stats();
  EXPECT_EQ(stats.view_subscribers, 0u);
  EXPECT_GT(stats.deltas_propagated, 0u);
  EXPECT_GT(stats.arrangements_shared, 0u);  // churner 0 shares with `held`
}

TEST(MaterializedViewTest, StatsExportIncludesViewCounters) {
  auto service = MakeViewService();
  auto sub =
      service->Subscribe("SELECT COUNT(*) FROM orders").ValueOrDie();
  ASSERT_TRUE(
      service->Append("orders", {{Value(int64_t{1}), Value(int64_t{1}),
                                  Value(int64_t{10}), Value("new")}})
          .ok());
  std::string json = service->Stats().ToJson();
  for (const char* key :
       {"\"views_registered\"", "\"view_subscribers\"",
        "\"arrangements_shared\"", "\"deltas_propagated\"",
        "\"rows_maintained_incrementally\"", "\"views_recomputed\""}) {
    EXPECT_NE(json.find(key), std::string::npos) << key << " missing:\n"
                                                 << json;
  }
  EXPECT_NE(service->Stats().ToString().find("views:"), std::string::npos);
  ASSERT_TRUE(service->Unsubscribe(sub).ok());
}

TEST(MaterializedViewTest, SecondaryOnlyJoinColumnDowngradesToRecompute) {
  // A join keyed on a column that carries only a bitmap/range secondary
  // index must NOT be classified as incrementally maintainable: secondary
  // cuts are published per append batch, not pinned per epoch, so the
  // view subsystem only trusts primary cTrie arrangements. The view must
  // downgrade to recompute at subscribe time (never via a maintenance
  // error) and stay correct under live appends.
  ServiceConfig cfg;
  cfg.engine.num_threads = 2;
  cfg.engine.num_partitions = 4;
  auto service = QueryService::Make(cfg).ValueOrDie();
  auto session = Session::Make(cfg.engine).ValueOrDie();
  auto odf = session->CreateDataFrame(OrdersSchema(), {}, "orders").ValueOrDie();
  auto orel = IndexedDataFrame::CreateIndex(odf, 1, "orders_by_user")
                  .ValueOrDie()
                  .relation();
  // `amount` gets a range secondary index — queries can probe it, but the
  // join below is keyed on it and must not treat it as a join arrangement.
  ASSERT_TRUE(orel->AddSecondaryIndex("amount", SecondaryIndexKind::kRange).ok());
  ASSERT_TRUE(service->RegisterTable("orders", orel).ok());
  auto udf = session->CreateDataFrame(UsersSchema(), {}, "users").ValueOrDie();
  auto urel =
      IndexedDataFrame::CreateIndex(udf, 0, "users_by_uid").ValueOrDie().relation();
  ASSERT_TRUE(service->RegisterTable("users", urel).ok());

  auto sub = service
                 ->Subscribe(
                     "SELECT o.oid, u.name FROM orders o "
                     "JOIN users u ON o.amount = u.uid")
                 .ValueOrDie();
  EXPECT_EQ(sub->kind(), ViewKind::kRecompute);

  std::mt19937 rng(41);
  int64_t oid = 0, uid = 0;
  ASSERT_TRUE(service->Append("users", RandomUsers(&rng, &uid, 12)).ok());
  for (int pass = 0; pass < 4; ++pass) {
    ASSERT_TRUE(
        service->Append("orders", RandomOrders(&rng, &oid, 1 + rng() % 15))
            .ok());
    ASSERT_TRUE(MatchesRecompute(service.get(), sub));
  }
  // The downgrade happened at classification, not by a failed incremental
  // pass degrading mid-stream.
  EXPECT_EQ(service->views().Stats().maintenance_errors, 0u);
  ASSERT_TRUE(service->Unsubscribe(sub).ok());
}

TEST(MaterializedViewTest, SubscribeRejectsInvalidSql) {
  auto service = MakeViewService();
  EXPECT_FALSE(service->Subscribe("SELECT FROM WHERE").ok());
  EXPECT_FALSE(service->Subscribe("SELECT x FROM no_such_table").ok());
  EXPECT_EQ(service->views().num_views(), 0u);
  // A failed subscribe leaves the delta feed disabled.
  EXPECT_FALSE(service->views().wants_deltas());
}

}  // namespace
}  // namespace idf
