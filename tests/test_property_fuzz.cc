// Property-based and fuzz-style tests: randomized inputs against model
// implementations and malformed-input robustness.
#include <map>
#include <string>

#include <gtest/gtest.h>

#include "common/hash.h"
#include "ctrie/ctrie.h"
#include "io/csv.h"
#include "sql/session.h"
#include "storage/row_batch.h"

namespace idf {
namespace {

// ---------------------------------------------------------------------------
// CTrie vs std::map model, with snapshot validation
// ---------------------------------------------------------------------------

class CTrieModelTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(CTrieModelTest, RandomOpsMatchModelAndSnapshotsStayFrozen) {
  Random64 rng(GetParam());
  // Degenerate hashes on some seeds to force collision paths.
  CTrie::HashFn hash = nullptr;
  if (GetParam() % 2 != 0) {
    hash = [](uint64_t k) { return k % 97; };
  }
  CTrie trie(hash);
  std::map<uint64_t, uint64_t> model;
  std::vector<std::pair<CTrie, std::map<uint64_t, uint64_t>>> snapshots;

  const uint64_t key_space = 1 + rng.Uniform(500);
  for (int op = 0; op < 20000; ++op) {
    uint64_t key = rng.Uniform(key_space);
    switch (rng.Uniform(10)) {
      case 0:
      case 1:
      case 2: {  // remove
        auto got = trie.Remove(key);
        auto it = model.find(key);
        if (it == model.end()) {
          ASSERT_FALSE(got.has_value()) << "op " << op;
        } else {
          ASSERT_TRUE(got.has_value());
          ASSERT_EQ(*got, it->second);
          model.erase(it);
        }
        break;
      }
      case 3: {  // lookup
        auto got = trie.Lookup(key);
        auto it = model.find(key);
        ASSERT_EQ(got.has_value(), it != model.end()) << "op " << op;
        if (got.has_value()) ASSERT_EQ(*got, it->second);
        break;
      }
      case 4: {  // snapshot (keep a few)
        if (snapshots.size() < 4) {
          snapshots.emplace_back(trie.ReadOnlySnapshot(), model);
        }
        break;
      }
      default: {  // insert/update
        uint64_t value = rng.Next();
        auto prev = trie.Insert(key, value);
        auto it = model.find(key);
        if (it == model.end()) {
          ASSERT_FALSE(prev.has_value()) << "op " << op;
        } else {
          ASSERT_TRUE(prev.has_value());
          ASSERT_EQ(*prev, it->second);
        }
        model[key] = value;
        break;
      }
    }
  }

  // Final state equals the model.
  ASSERT_EQ(trie.Size(), model.size());
  for (const auto& [k, v] : model) {
    auto got = trie.Lookup(k);
    ASSERT_TRUE(got.has_value()) << k;
    ASSERT_EQ(*got, v);
  }
  // Every snapshot still equals the model at its capture point.
  for (auto& [snap, snap_model] : snapshots) {
    ASSERT_EQ(snap.Size(), snap_model.size());
    std::map<uint64_t, uint64_t> contents;
    snap.ForEach([&contents](uint64_t k, uint64_t v) { contents[k] = v; });
    ASSERT_EQ(contents, snap_model);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, CTrieModelTest,
                         ::testing::Values(1, 2, 3, 5, 8, 13, 21, 34));

// ---------------------------------------------------------------------------
// Row encoding over random schemas
// ---------------------------------------------------------------------------

class RowCodecFuzzTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(RowCodecFuzzTest, RandomSchemasRoundTrip) {
  Random64 rng(GetParam());
  for (int trial = 0; trial < 200; ++trial) {
    int num_fields = 1 + static_cast<int>(rng.Uniform(20));
    std::vector<Field> fields;
    for (int f = 0; f < num_fields; ++f) {
      TypeId type = static_cast<TypeId>(rng.Uniform(6));
      fields.push_back({"c" + std::to_string(f), type, true});
    }
    auto schema = Schema::Make(std::move(fields));

    Row row;
    for (int f = 0; f < num_fields; ++f) {
      if (rng.Uniform(5) == 0) {
        row.push_back(Value::Null());
        continue;
      }
      switch (schema->field(f).type) {
        case TypeId::kBool:
          row.push_back(Value(rng.Uniform(2) == 0));
          break;
        case TypeId::kInt32:
          row.push_back(Value(static_cast<int32_t>(rng.Next())));
          break;
        case TypeId::kInt64:
        case TypeId::kTimestamp:
          row.push_back(Value(static_cast<int64_t>(rng.Next())));
          break;
        case TypeId::kFloat64:
          row.push_back(Value(rng.NextDouble() * 1e9));
          break;
        case TypeId::kString: {
          std::string s;
          size_t len = rng.Uniform(50);
          for (size_t i = 0; i < len; ++i) {
            s.push_back(static_cast<char>(rng.Uniform(256)));
          }
          row.push_back(Value(std::move(s)));
          break;
        }
      }
    }
    std::vector<uint8_t> buf;
    ASSERT_TRUE(EncodeRow(*schema, row, &buf).ok()) << trial;
    ASSERT_EQ(DecodeRow(buf.data(), *schema), row) << trial;
    ASSERT_EQ(EncodedRowSize(buf.data(), *schema), buf.size()) << trial;
    // Per-column decode agrees with the full decode.
    for (int f = 0; f < num_fields; ++f) {
      ASSERT_EQ(DecodeColumn(buf.data(), *schema, f), row[static_cast<size_t>(f)]);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, RowCodecFuzzTest, ::testing::Values(101, 202, 303));

// ---------------------------------------------------------------------------
// SQL parser robustness: malformed input must error, never crash
// ---------------------------------------------------------------------------

TEST(SqlFuzzTest, TruncationsOfValidQueriesNeverCrash) {
  auto session = Session::Make().ValueOrDie();
  auto schema = Schema::Make({{"a", TypeId::kInt64, false},
                              {"b", TypeId::kString, true}});
  auto df = session->CreateDataFrame(schema, {{Value(int64_t{1}), Value("x")}},
                                     "t")
                .ValueOrDie();
  ASSERT_TRUE(session->RegisterTable("t", df).ok());
  const std::string query =
      "SELECT a, COUNT(*) AS n FROM t WHERE a BETWEEN 1 AND 5 AND b IN "
      "('x','y') GROUP BY a HAVING n > 0 ORDER BY a DESC LIMIT 3";
  for (size_t len = 0; len <= query.size(); ++len) {
    auto result = session->Sql(query.substr(0, len));
    if (len == query.size()) {
      EXPECT_TRUE(result.ok()) << result.status().ToString();
    }
    // Shorter prefixes may parse or fail; either way, no crash and a
    // Status-carrying result.
    if (!result.ok()) {
      EXPECT_FALSE(result.status().message().empty());
    }
  }
}

TEST(SqlFuzzTest, RandomTokenSoupNeverCrashes) {
  auto session = Session::Make().ValueOrDie();
  auto schema = Schema::Make({{"a", TypeId::kInt64, false}});
  auto df =
      session->CreateDataFrame(schema, {{Value(int64_t{1})}}, "t").ValueOrDie();
  ASSERT_TRUE(session->RegisterTable("t", df).ok());
  const char* fragments[] = {"SELECT", "FROM",  "WHERE", "t",     "a",
                             "*",      ",",     "(",     ")",     "=",
                             "1",      "'s'",   "AND",   "JOIN",  "ON",
                             "GROUP",  "BY",    "COUNT", "LIMIT", ".",
                             "LEFT",   "<",     "-",     "BETWEEN"};
  Random64 rng(2026);
  for (int trial = 0; trial < 3000; ++trial) {
    std::string q;
    size_t len = 1 + rng.Uniform(15);
    for (size_t i = 0; i < len; ++i) {
      q += fragments[rng.Uniform(sizeof(fragments) / sizeof(fragments[0]))];
      q += ' ';
    }
    auto result = session->Sql(q);  // must never crash
    if (result.ok()) {
      // A random accidental success must still collect without crashing.
      (void)result->Collect();
    }
  }
}

TEST(SqlFuzzTest, RandomBytesNeverCrashLexer) {
  auto session = Session::Make().ValueOrDie();
  Random64 rng(7);
  for (int trial = 0; trial < 2000; ++trial) {
    std::string q = "SELECT ";
    size_t len = rng.Uniform(40);
    for (size_t i = 0; i < len; ++i) {
      q.push_back(static_cast<char>(32 + rng.Uniform(95)));  // printable
    }
    (void)session->Sql(q);
  }
}

// ---------------------------------------------------------------------------
// CSV robustness: malformed files error, never crash
// ---------------------------------------------------------------------------

TEST(CsvFuzzTest, RandomPayloadsNeverCrash) {
  auto schema = Schema::Make({{"a", TypeId::kInt64, true},
                              {"b", TypeId::kString, true}});
  Random64 rng(99);
  const char chars[] = "ab1,\"\n'x;|\\ -.";
  for (int trial = 0; trial < 3000; ++trial) {
    std::string data = "a,b\n";
    size_t len = rng.Uniform(60);
    for (size_t i = 0; i < len; ++i) {
      data.push_back(chars[rng.Uniform(sizeof(chars) - 1)]);
    }
    auto result = io::FromCsvString(data, *schema);
    if (result.ok()) {
      for (const Row& row : *result) {
        EXPECT_EQ(row.size(), 2u);
      }
    }
  }
}

TEST(CsvFuzzTest, RoundTripRandomTables) {
  Random64 rng(4242);
  for (int trial = 0; trial < 50; ++trial) {
    auto schema = Schema::Make({{"i", TypeId::kInt64, true},
                                {"s", TypeId::kString, true},
                                {"d", TypeId::kFloat64, true}});
    RowVec rows;
    size_t n = rng.Uniform(40);
    for (size_t r = 0; r < n; ++r) {
      std::string s;
      size_t len = rng.Uniform(20);
      for (size_t i = 0; i < len; ++i) {
        s.push_back("a,\"\n'x"[rng.Uniform(6)]);
      }
      rows.push_back({rng.Uniform(3) == 0 ? Value::Null()
                                          : Value(static_cast<int64_t>(rng.Next())),
                      rng.Uniform(3) == 0 ? Value::Null() : Value(std::move(s)),
                      rng.Uniform(3) == 0 ? Value::Null()
                                          : Value(rng.NextDouble())});
    }
    std::string data = io::ToCsvString(*schema, rows);
    auto parsed = io::FromCsvString(data, *schema);
    ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
    ASSERT_EQ(*parsed, rows) << trial;
  }
}

}  // namespace
}  // namespace idf
