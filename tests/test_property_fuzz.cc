// Property-based and fuzz-style tests: randomized inputs against model
// implementations and malformed-input robustness.
#include <map>
#include <string>

#include <gtest/gtest.h>

#include "common/hash.h"
#include "ctrie/ctrie.h"
#include "indexed/indexed_partition.h"
#include "io/csv.h"
#include "sql/predicate_compiler.h"
#include "sql/session.h"
#include "sql/vectorized_eval.h"
#include "storage/row_batch.h"

namespace idf {
namespace {

// ---------------------------------------------------------------------------
// CTrie vs std::map model, with snapshot validation
// ---------------------------------------------------------------------------

class CTrieModelTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(CTrieModelTest, RandomOpsMatchModelAndSnapshotsStayFrozen) {
  Random64 rng(GetParam());
  // Degenerate hashes on some seeds to force collision paths.
  CTrie::HashFn hash = nullptr;
  if (GetParam() % 2 != 0) {
    hash = [](uint64_t k) { return k % 97; };
  }
  CTrie trie(hash);
  std::map<uint64_t, uint64_t> model;
  std::vector<std::pair<CTrie, std::map<uint64_t, uint64_t>>> snapshots;

  const uint64_t key_space = 1 + rng.Uniform(500);
  for (int op = 0; op < 20000; ++op) {
    uint64_t key = rng.Uniform(key_space);
    switch (rng.Uniform(10)) {
      case 0:
      case 1:
      case 2: {  // remove
        auto got = trie.Remove(key);
        auto it = model.find(key);
        if (it == model.end()) {
          ASSERT_FALSE(got.has_value()) << "op " << op;
        } else {
          ASSERT_TRUE(got.has_value());
          ASSERT_EQ(*got, it->second);
          model.erase(it);
        }
        break;
      }
      case 3: {  // lookup
        auto got = trie.Lookup(key);
        auto it = model.find(key);
        ASSERT_EQ(got.has_value(), it != model.end()) << "op " << op;
        if (got.has_value()) ASSERT_EQ(*got, it->second);
        break;
      }
      case 4: {  // snapshot (keep a few)
        if (snapshots.size() < 4) {
          snapshots.emplace_back(trie.ReadOnlySnapshot(), model);
        }
        break;
      }
      default: {  // insert/update
        uint64_t value = rng.Next();
        auto prev = trie.Insert(key, value);
        auto it = model.find(key);
        if (it == model.end()) {
          ASSERT_FALSE(prev.has_value()) << "op " << op;
        } else {
          ASSERT_TRUE(prev.has_value());
          ASSERT_EQ(*prev, it->second);
        }
        model[key] = value;
        break;
      }
    }
  }

  // Final state equals the model.
  ASSERT_EQ(trie.Size(), model.size());
  for (const auto& [k, v] : model) {
    auto got = trie.Lookup(k);
    ASSERT_TRUE(got.has_value()) << k;
    ASSERT_EQ(*got, v);
  }
  // Every snapshot still equals the model at its capture point.
  for (auto& [snap, snap_model] : snapshots) {
    ASSERT_EQ(snap.Size(), snap_model.size());
    std::map<uint64_t, uint64_t> contents;
    snap.ForEach([&contents](uint64_t k, uint64_t v) { contents[k] = v; });
    ASSERT_EQ(contents, snap_model);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, CTrieModelTest,
                         ::testing::Values(1, 2, 3, 5, 8, 13, 21, 34));

// ---------------------------------------------------------------------------
// Row encoding over random schemas
// ---------------------------------------------------------------------------

class RowCodecFuzzTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(RowCodecFuzzTest, RandomSchemasRoundTrip) {
  Random64 rng(GetParam());
  for (int trial = 0; trial < 200; ++trial) {
    int num_fields = 1 + static_cast<int>(rng.Uniform(20));
    std::vector<Field> fields;
    for (int f = 0; f < num_fields; ++f) {
      TypeId type = static_cast<TypeId>(rng.Uniform(6));
      fields.push_back({"c" + std::to_string(f), type, true});
    }
    auto schema = Schema::Make(std::move(fields));

    Row row;
    for (int f = 0; f < num_fields; ++f) {
      if (rng.Uniform(5) == 0) {
        row.push_back(Value::Null());
        continue;
      }
      switch (schema->field(f).type) {
        case TypeId::kBool:
          row.push_back(Value(rng.Uniform(2) == 0));
          break;
        case TypeId::kInt32:
          row.push_back(Value(static_cast<int32_t>(rng.Next())));
          break;
        case TypeId::kInt64:
        case TypeId::kTimestamp:
          row.push_back(Value(static_cast<int64_t>(rng.Next())));
          break;
        case TypeId::kFloat64:
          row.push_back(Value(rng.NextDouble() * 1e9));
          break;
        case TypeId::kString: {
          std::string s;
          size_t len = rng.Uniform(50);
          for (size_t i = 0; i < len; ++i) {
            s.push_back(static_cast<char>(rng.Uniform(256)));
          }
          row.push_back(Value(std::move(s)));
          break;
        }
      }
    }
    std::vector<uint8_t> buf;
    ASSERT_TRUE(EncodeRow(*schema, row, &buf).ok()) << trial;
    ASSERT_EQ(DecodeRow(buf.data(), *schema), row) << trial;
    ASSERT_EQ(EncodedRowSize(buf.data(), *schema), buf.size()) << trial;
    // Per-column decode agrees with the full decode.
    for (int f = 0; f < num_fields; ++f) {
      ASSERT_EQ(DecodeColumn(buf.data(), *schema, f), row[static_cast<size_t>(f)]);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, RowCodecFuzzTest, ::testing::Values(101, 202, 303));

// ---------------------------------------------------------------------------
// SQL parser robustness: malformed input must error, never crash
// ---------------------------------------------------------------------------

TEST(SqlFuzzTest, TruncationsOfValidQueriesNeverCrash) {
  auto session = Session::Make().ValueOrDie();
  auto schema = Schema::Make({{"a", TypeId::kInt64, false},
                              {"b", TypeId::kString, true}});
  auto df = session->CreateDataFrame(schema, {{Value(int64_t{1}), Value("x")}},
                                     "t")
                .ValueOrDie();
  ASSERT_TRUE(session->RegisterTable("t", df).ok());
  const std::string query =
      "SELECT a, COUNT(*) AS n FROM t WHERE a BETWEEN 1 AND 5 AND b IN "
      "('x','y') GROUP BY a HAVING n > 0 ORDER BY a DESC LIMIT 3";
  for (size_t len = 0; len <= query.size(); ++len) {
    auto result = session->Sql(query.substr(0, len));
    if (len == query.size()) {
      EXPECT_TRUE(result.ok()) << result.status().ToString();
    }
    // Shorter prefixes may parse or fail; either way, no crash and a
    // Status-carrying result.
    if (!result.ok()) {
      EXPECT_FALSE(result.status().message().empty());
    }
  }
}

TEST(SqlFuzzTest, RandomTokenSoupNeverCrashes) {
  auto session = Session::Make().ValueOrDie();
  auto schema = Schema::Make({{"a", TypeId::kInt64, false}});
  auto df =
      session->CreateDataFrame(schema, {{Value(int64_t{1})}}, "t").ValueOrDie();
  ASSERT_TRUE(session->RegisterTable("t", df).ok());
  const char* fragments[] = {"SELECT", "FROM",  "WHERE", "t",     "a",
                             "*",      ",",     "(",     ")",     "=",
                             "1",      "'s'",   "AND",   "JOIN",  "ON",
                             "GROUP",  "BY",    "COUNT", "LIMIT", ".",
                             "LEFT",   "<",     "-",     "BETWEEN"};
  Random64 rng(2026);
  for (int trial = 0; trial < 3000; ++trial) {
    std::string q;
    size_t len = 1 + rng.Uniform(15);
    for (size_t i = 0; i < len; ++i) {
      q += fragments[rng.Uniform(sizeof(fragments) / sizeof(fragments[0]))];
      q += ' ';
    }
    auto result = session->Sql(q);  // must never crash
    if (result.ok()) {
      // A random accidental success must still collect without crashing.
      (void)result->Collect();
    }
  }
}

TEST(SqlFuzzTest, RandomBytesNeverCrashLexer) {
  auto session = Session::Make().ValueOrDie();
  Random64 rng(7);
  for (int trial = 0; trial < 2000; ++trial) {
    std::string q = "SELECT ";
    size_t len = rng.Uniform(40);
    for (size_t i = 0; i < len; ++i) {
      q.push_back(static_cast<char>(32 + rng.Uniform(95)));  // printable
    }
    (void)session->Sql(q);
  }
}

// ---------------------------------------------------------------------------
// Compiled predicates vs the interpreter: random schemas, rows (with
// nulls), and predicate trees. The compiled program must match Expr::Eval
// bit-for-bit (three-valued result, not just the filter decision), and
// SplitForCompilation must reproduce the original filter decision as
// compiled-part AND residual even when some conjuncts fall back.
// ---------------------------------------------------------------------------

// A type-disciplined random literal that lands near the row-value pools so
// comparisons hit equality, both zero signs, and type-widening boundaries.
Value RandomLiteral(Random64& rng, TypeId col_type) {
  switch (rng.Uniform(6)) {
    case 0:
      return Value(static_cast<int64_t>(rng.Uniform(7)) - 3);
    case 1:
      return Value(static_cast<int32_t>(rng.Uniform(7)) - 3);
    case 2: {
      const double pool[] = {-0.0, 0.0, 0.5, 1.0, 2.5, -1.0,
                             std::numeric_limits<double>::quiet_NaN()};
      return Value(pool[rng.Uniform(7)]);
    }
    case 3:
      return Value(rng.Uniform(2) == 0);
    case 4: {
      const char* pool[] = {"", "a", "ab", "abc", "b", "\x80z"};
      return Value(std::string(pool[rng.Uniform(6)]));
    }
    default:
      // Bias toward the column's own type for frequent equal/compare hits.
      switch (col_type) {
        case TypeId::kBool:
          return Value(rng.Uniform(2) == 0);
        case TypeId::kInt32:
          return Value(static_cast<int32_t>(rng.Uniform(7)) - 3);
        case TypeId::kInt64:
        case TypeId::kTimestamp:
          return Value(static_cast<int64_t>(rng.Uniform(7)) - 3);
        case TypeId::kFloat64:
          return Value(static_cast<double>(rng.Uniform(5)) - 1.5);
        case TypeId::kString: {
          const char* pool[] = {"", "a", "ab", "abc", "b", "\x80z"};
          return Value(std::string(pool[rng.Uniform(6)]));
        }
      }
      return Value::Null();
  }
}

Value RandomCell(Random64& rng, TypeId type) {
  if (rng.Uniform(5) == 0) return Value::Null();
  switch (type) {
    case TypeId::kBool:
      return Value(rng.Uniform(2) == 0);
    case TypeId::kInt32:
      return Value(static_cast<int32_t>(rng.Uniform(9)) - 4);
    case TypeId::kInt64:
    case TypeId::kTimestamp:
      return Value(static_cast<int64_t>(rng.Uniform(9)) - 4);
    case TypeId::kFloat64: {
      const double pool[] = {-0.0, 0.0, 0.5, 1.0, 2.5, -1.0, 3.0};
      return Value(pool[rng.Uniform(7)]);
    }
    case TypeId::kString: {
      const char* pool[] = {"", "a", "ab", "abc", "b", "\x80z"};
      return Value(std::string(pool[rng.Uniform(6)]));
    }
  }
  return Value::Null();
}

// A random predicate tree. Leaves mix compilable shapes (column-vs-literal
// comparisons, IS [NOT] NULL, bool columns, bool/null literals) with
// interpreter-only ones (LIKE on string columns, double arithmetic on
// numeric columns) so the split path is exercised, not just whole-tree
// compilation.
ExprPtr RandomPredicate(Random64& rng, const Schema& schema, int depth) {
  if (depth > 0 && rng.Uniform(3) != 0) {
    switch (rng.Uniform(3)) {
      case 0:
        return And(RandomPredicate(rng, schema, depth - 1),
                   RandomPredicate(rng, schema, depth - 1));
      case 1:
        return Or(RandomPredicate(rng, schema, depth - 1),
                  RandomPredicate(rng, schema, depth - 1));
      default:
        return Not(RandomPredicate(rng, schema, depth - 1));
    }
  }
  int col = static_cast<int>(rng.Uniform(static_cast<uint64_t>(schema.num_fields())));
  const Field& field = schema.field(col);
  switch (rng.Uniform(8)) {
    case 0:
      return IsNull(Col(field.name));
    case 1:
      return IsNotNull(Col(field.name));
    case 2:
      if (field.type == TypeId::kBool) return Col(field.name);
      break;
    case 3:
      if (rng.Uniform(4) == 0) return Lit(Value::Null());
      return Lit(Value(rng.Uniform(2) == 0));
    case 4:  // interpreter-only: LIKE
      if (field.type == TypeId::kString) {
        const char* pats[] = {"a%", "%b", "_b%", "", "%"};
        return Like(Col(field.name), pats[rng.Uniform(5)]);
      }
      break;
    case 5:  // interpreter-only: double arithmetic (no signed overflow)
      if (field.type == TypeId::kInt64 || field.type == TypeId::kInt32 ||
          field.type == TypeId::kFloat64) {
        return Gt(Add(Col(field.name), Lit(Value(0.5))), Lit(Value(1.0)));
      }
      break;
    default:
      break;
  }
  ExprPtr lhs = Col(field.name);
  ExprPtr rhs = Lit(RandomLiteral(rng, field.type));
  if (rng.Uniform(4) == 0) std::swap(lhs, rhs);  // mirrored literal-vs-column
  switch (rng.Uniform(6)) {
    case 0:
      return Eq(std::move(lhs), std::move(rhs));
    case 1:
      return Ne(std::move(lhs), std::move(rhs));
    case 2:
      return Lt(std::move(lhs), std::move(rhs));
    case 3:
      return Le(std::move(lhs), std::move(rhs));
    case 4:
      return Gt(std::move(lhs), std::move(rhs));
    default:
      return Ge(std::move(lhs), std::move(rhs));
  }
}

TriBool InterpreterTri(const ExprPtr& bound, const Row& row) {
  Result<Value> v = bound->Eval(row);
  EXPECT_TRUE(v.ok()) << v.status().ToString();
  if (v.ValueOrDie().is_null()) return TriBool::kNull;
  return v.ValueOrDie().bool_value() ? TriBool::kTrue : TriBool::kFalse;
}

class PredicateFuzzTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(PredicateFuzzTest, CompiledMatchesInterpreterBitForBit) {
  Random64 rng(GetParam());
  int compiled_trees = 0;
  for (int trial = 0; trial < 300; ++trial) {
    int num_fields = 1 + static_cast<int>(rng.Uniform(6));
    std::vector<Field> fields;
    for (int f = 0; f < num_fields; ++f) {
      fields.push_back(
          {"c" + std::to_string(f), static_cast<TypeId>(rng.Uniform(6)), true});
    }
    SchemaPtr schema = Schema::Make(std::move(fields));

    RowVec rows;
    for (int r = 0; r < 40; ++r) {
      Row row;
      for (int f = 0; f < num_fields; ++f) {
        row.push_back(RandomCell(rng, schema->field(f).type));
      }
      rows.push_back(std::move(row));
    }

    ExprPtr pred = RandomPredicate(rng, *schema, 3);
    ExprPtr bound = BindExpr(pred, *schema).ValueOrDie();

    // Whole-tree compilation (when the tree is fully compilable) must
    // match the interpreter's three-valued result exactly.
    std::optional<CompiledPredicate> whole =
        CompiledPredicate::Compile(bound, *schema);
    if (whole.has_value()) ++compiled_trees;

    PredicateSplit split = SplitForCompilation(bound, *schema);
    for (const Row& row : rows) {
      std::vector<uint8_t> payload;
      ASSERT_TRUE(EncodeRow(*schema, row, &payload).ok());
      TriBool want = InterpreterTri(bound, row);
      if (whole.has_value()) {
        ASSERT_EQ(static_cast<int>(whole->EvalEncoded(payload.data())),
                  static_cast<int>(want))
            << "seed " << GetParam() << " trial " << trial << ": "
            << bound->ToString();
      }
      // Split semantics: compiled-part Matches AND residual TRUE must equal
      // the original filter decision.
      bool keeps = true;
      if (split.compiled.has_value() && !split.compiled->Matches(payload.data())) {
        keeps = false;
      }
      if (keeps && split.residual != nullptr) {
        keeps = InterpreterTri(split.residual, row) == TriBool::kTrue;
      }
      ASSERT_EQ(keeps, want == TriBool::kTrue)
          << "seed " << GetParam() << " trial " << trial << ": "
          << bound->ToString();
    }
  }
  // The generator must actually produce compilable trees, not fall back on
  // everything (which would turn this test into interpreter-vs-itself).
  EXPECT_GT(compiled_trees, 30);
}

INSTANTIATE_TEST_SUITE_P(Seeds, PredicateFuzzTest,
                         ::testing::Values(11, 22, 33, 44, 55));

// ---------------------------------------------------------------------------
// Vectorized batch evaluation vs the row-at-a-time compiled program: over
// the same random schemas/rows/predicates, EvalBatch must reproduce
// EvalEncoded bit-for-bit (full tri-state, including NULL), FilterBatch
// must select exactly the kTrue lanes in ascending order, and the split
// path (batch filter through the compiled conjunction, residual on the
// survivors) must keep the original filter decision. Runs under the
// ASan/UBSan and TSan CI jobs and in the SIMD-off matrix leg.
// ---------------------------------------------------------------------------

class VectorizedFuzzTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(VectorizedFuzzTest, BatchEvalMatchesEvalEncodedBitForBit) {
  Random64 rng(GetParam());
  int vectorized_trees = 0;
  for (int trial = 0; trial < 200; ++trial) {
    int num_fields = 1 + static_cast<int>(rng.Uniform(6));
    std::vector<Field> fields;
    for (int f = 0; f < num_fields; ++f) {
      fields.push_back(
          {"c" + std::to_string(f), static_cast<TypeId>(rng.Uniform(6)), true});
    }
    SchemaPtr schema = Schema::Make(std::move(fields));

    // Cross the internal batch boundary on some trials so the batching
    // loop is exercised, not just one partial batch.
    const size_t num_rows =
        trial % 29 == 0 ? VectorizedPredicate::kBatchRows + 37 : 64;
    RowVec rows;
    std::vector<std::vector<uint8_t>> payloads;
    for (size_t r = 0; r < num_rows; ++r) {
      Row row;
      for (int f = 0; f < num_fields; ++f) {
        row.push_back(RandomCell(rng, schema->field(f).type));
      }
      payloads.emplace_back();
      ASSERT_TRUE(EncodeRow(*schema, row, &payloads.back()).ok());
      rows.push_back(std::move(row));
    }
    std::vector<const uint8_t*> ptrs;
    ptrs.reserve(num_rows);
    for (const auto& buf : payloads) ptrs.push_back(buf.data());

    ExprPtr pred = RandomPredicate(rng, *schema, 3);
    ExprPtr bound = BindExpr(pred, *schema).ValueOrDie();

    VectorScratch scratch;
    std::vector<uint8_t> tri(num_rows);
    std::vector<uint32_t> sel(num_rows);

    std::optional<CompiledPredicate> whole =
        CompiledPredicate::Compile(bound, *schema);
    if (whole.has_value()) {
      ++vectorized_trees;
      VectorizedPredicate vec(*whole);
      vec.EvalBatch(ptrs.data(), num_rows, tri.data(), &scratch);
      const size_t kept =
          vec.FilterBatch(ptrs.data(), num_rows, sel.data(), &scratch);
      size_t expect_kept = 0;
      for (size_t r = 0; r < num_rows; ++r) {
        const TriBool want = whole->EvalEncoded(ptrs[r]);
        ASSERT_EQ(static_cast<int>(tri[r]), static_cast<int>(want))
            << "seed " << GetParam() << " trial " << trial << " row " << r
            << ": " << bound->ToString();
        if (want == TriBool::kTrue) {
          ASSERT_LT(expect_kept, kept);
          ASSERT_EQ(sel[expect_kept], r)
              << "seed " << GetParam() << " trial " << trial << ": "
              << bound->ToString();
          ++expect_kept;
        }
      }
      ASSERT_EQ(kept, expect_kept)
          << "seed " << GetParam() << " trial " << trial;
    }

    // Residual-conjunct split: vectorized filter over the compiled part,
    // interpreter residual over the survivors.
    PredicateSplit split = SplitForCompilation(bound, *schema);
    if (split.compiled.has_value()) {
      VectorizedPredicate vec(*split.compiled);
      const size_t kept =
          vec.FilterBatch(ptrs.data(), num_rows, sel.data(), &scratch);
      std::vector<bool> keeps(num_rows, false);
      for (size_t j = 0; j < kept; ++j) {
        const size_t r = sel[j];
        keeps[r] = split.residual == nullptr ||
                   InterpreterTri(split.residual, rows[r]) == TriBool::kTrue;
      }
      for (size_t r = 0; r < num_rows; ++r) {
        ASSERT_EQ(keeps[r], InterpreterTri(bound, rows[r]) == TriBool::kTrue)
            << "seed " << GetParam() << " trial " << trial << " row " << r
            << ": " << bound->ToString();
      }
    }
  }
  // The generator must produce vectorizable trees, not fall back on
  // everything.
  EXPECT_GT(vectorized_trees, 20);
}

INSTANTIATE_TEST_SUITE_P(Seeds, VectorizedFuzzTest,
                         ::testing::Values(66, 77, 88));

// ---------------------------------------------------------------------------
// Indexed chain-walk fast path vs a linear-scan model: the raw-slot key
// verification (EncodeFixedKeySlot) must agree with Value equality for
// every probe, including cross-type keys (double probing an int column,
// int probing a bool column) where the fast path must refuse or widen
// exactly like the interpreter.
// ---------------------------------------------------------------------------

class LookupFuzzTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(LookupFuzzTest, ChainWalkMatchesLinearScanModel) {
  Random64 rng(GetParam());
  EngineConfig cfg;
  cfg.row_batch_bytes = 4096;
  cfg.max_row_bytes = 512;
  cfg.num_partitions = 1;
  cfg.num_threads = 1;
  cfg = cfg.Resolved();

  const TypeId key_types[] = {TypeId::kBool,    TypeId::kInt32,
                              TypeId::kInt64,   TypeId::kTimestamp,
                              TypeId::kFloat64, TypeId::kString};
  // Probe pool: cross-type keys around the fast path's boundary cases.
  const std::vector<Value> probes = {
      Value(int64_t{-2}),  Value(int64_t{0}),  Value(int64_t{1}),
      Value(int64_t{2}),   Value(int32_t{1}),  Value(int32_t{-2}),
      Value(0.0),          Value(-0.0),        Value(1.0),
      Value(2.5),          Value(-2.0),        Value(true),
      Value(false),        Value("a"),         Value("ab"),
      Value(int64_t{1} << 40)};

  for (TypeId key_type : key_types) {
    SchemaPtr schema = Schema::Make(
        {{"k", key_type, true}, {"v", TypeId::kString, true}});
    IndexedPartition part(schema, 0, cfg);
    RowVec model;
    for (int i = 0; i < 200; ++i) {
      Row row = {RandomCell(rng, key_type),
                 Value("r" + std::to_string(i))};
      ASSERT_TRUE(part.Append(row).ok());
      model.push_back(std::move(row));
    }
    for (const Value& key : probes) {
      RowVec got = part.GetRows(key);
      RowVec want;  // chain order: newest first
      for (auto it = model.rbegin(); it != model.rend(); ++it) {
        if (!(*it)[0].is_null() && (*it)[0] == key) want.push_back(*it);
      }
      ASSERT_EQ(got, want) << "key " << key.ToString() << " over column type "
                           << static_cast<int>(key_type);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, LookupFuzzTest, ::testing::Values(7, 17, 27));

// ---------------------------------------------------------------------------
// CSV robustness: malformed files error, never crash
// ---------------------------------------------------------------------------

TEST(CsvFuzzTest, RandomPayloadsNeverCrash) {
  auto schema = Schema::Make({{"a", TypeId::kInt64, true},
                              {"b", TypeId::kString, true}});
  Random64 rng(99);
  const char chars[] = "ab1,\"\n'x;|\\ -.";
  for (int trial = 0; trial < 3000; ++trial) {
    std::string data = "a,b\n";
    size_t len = rng.Uniform(60);
    for (size_t i = 0; i < len; ++i) {
      data.push_back(chars[rng.Uniform(sizeof(chars) - 1)]);
    }
    auto result = io::FromCsvString(data, *schema);
    if (result.ok()) {
      for (const Row& row : *result) {
        EXPECT_EQ(row.size(), 2u);
      }
    }
  }
}

TEST(CsvFuzzTest, RoundTripRandomTables) {
  Random64 rng(4242);
  for (int trial = 0; trial < 50; ++trial) {
    auto schema = Schema::Make({{"i", TypeId::kInt64, true},
                                {"s", TypeId::kString, true},
                                {"d", TypeId::kFloat64, true}});
    RowVec rows;
    size_t n = rng.Uniform(40);
    for (size_t r = 0; r < n; ++r) {
      std::string s;
      size_t len = rng.Uniform(20);
      for (size_t i = 0; i < len; ++i) {
        s.push_back("a,\"\n'x"[rng.Uniform(6)]);
      }
      rows.push_back({rng.Uniform(3) == 0 ? Value::Null()
                                          : Value(static_cast<int64_t>(rng.Next())),
                      rng.Uniform(3) == 0 ? Value::Null() : Value(std::move(s)),
                      rng.Uniform(3) == 0 ? Value::Null()
                                          : Value(rng.NextDouble())});
    }
    std::string data = io::ToCsvString(*schema, rows);
    auto parsed = io::FromCsvString(data, *schema);
    ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
    ASSERT_EQ(*parsed, rows) << trial;
  }
}

}  // namespace
}  // namespace idf
