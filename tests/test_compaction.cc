// Tests for background chain compaction: logical equivalence (GetRows is
// byte-identical, newest-first, before and after a compaction pass),
// MVCC safety (pinned views keep reading the retired generation until
// they drain), and the fragmentation trigger. The concurrency test at the
// bottom runs readers, an appender, and a compactor loop together and is
// part of the TSan CI job.
#include "indexed/compactor.h"

#include <algorithm>
#include <atomic>
#include <random>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "common/logging.h"
#include "storage/row_batch.h"

namespace idf {
namespace {

ExecutorContextPtr MakeCtx(int partitions = 4, int threads = 2,
                           size_t batch_bytes = 4 * 1024) {
  EngineConfig cfg;
  cfg.num_partitions = partitions;
  cfg.num_threads = threads;
  cfg.row_batch_bytes = batch_bytes;
  return ExecutorContext::Make(cfg).ValueOrDie();
}

SchemaPtr KvSchema() {
  return Schema::Make({{"k", TypeId::kInt64, true}, {"v", TypeId::kString, true}});
}

// Appends `batches` batches of `per_batch` rows cycling over `keys` keys,
// so every key's chain spreads across many row batches (worst-case
// fragmentation for the chain walk).
void AppendFragmented(ExecutorContext& ctx, IndexedRelation& rel, int batches,
                      int per_batch, int keys, int tag = 0) {
  for (int b = 0; b < batches; ++b) {
    RowVec rows;
    rows.reserve(static_cast<size_t>(per_batch));
    for (int i = 0; i < per_batch; ++i) {
      int64_t k = (b * per_batch + i) % keys;
      rows.push_back({Value(k), Value("t" + std::to_string(tag) + "_b" +
                                      std::to_string(b) + "_r" +
                                      std::to_string(i))});
    }
    IDF_CHECK_OK(rel.AppendRows(ctx, rows));
  }
}

// The exact encoded bytes of every row on `key`'s chain, newest first.
std::vector<std::string> ChainBytes(const IndexedRelationSnapshot& snap,
                                    const Value& key) {
  int p = snap.partitioner().PartitionOf(key);
  const IndexedPartition::View& view = snap.view(p);
  const Schema& schema = *snap.schema();
  std::vector<std::string> out;
  view.ForEachRawRow(key, [&](const uint8_t* payload) {
    out.emplace_back(reinterpret_cast<const char*>(payload),
                     EncodedRowSize(payload, schema));
  });
  return out;
}

size_t CompactAll(Compactor& compactor, IndexedRelation& rel) {
  for (int p = 0; p < rel.num_partitions(); ++p) {
    IDF_CHECK_OK(compactor.CompactPartition(p));
  }
  return compactor.DrainRetired();
}

TEST(CompactionTest, GetRowsByteIdenticalAfterCompaction) {
  auto ctx = MakeCtx();
  auto rel = IndexedRelation::Build(*ctx, "t", KvSchema(), 0, {}).ValueOrDie();
  constexpr int kKeys = 37;
  AppendFragmented(*ctx, *rel, /*batches=*/40, /*per_batch=*/50, kKeys);

  IndexedRelationSnapshot before = rel->Snapshot();
  std::vector<std::vector<std::string>> expected;
  for (int64_t k = 0; k < kKeys; ++k) {
    expected.push_back(ChainBytes(before, Value(k)));
    ASSERT_FALSE(expected.back().empty()) << k;
  }

  Compactor compactor(rel);
  CompactAll(compactor, *rel);
  EXPECT_EQ(compactor.stats().compactions_run, 4u);

  IndexedRelationSnapshot after = rel->Snapshot();
  EXPECT_EQ(after.num_rows(), before.num_rows());
  for (int64_t k = 0; k < kKeys; ++k) {
    // Byte-identical payloads in the same newest-first order.
    EXPECT_EQ(ChainBytes(after, Value(k)), expected[static_cast<size_t>(k)])
        << "key " << k;
  }
}

TEST(CompactionTest, FuzzRandomizedAppendsSurviveRepeatedCompaction) {
  auto ctx = MakeCtx(2, 1);
  auto rel = IndexedRelation::Build(*ctx, "t", KvSchema(), 0, {}).ValueOrDie();
  Compactor compactor(rel);
  std::mt19937 rng(20260805);
  std::uniform_int_distribution<int64_t> key_dist(0, 24);
  std::uniform_int_distribution<int> len_dist(1, 60);
  std::vector<std::vector<std::string>> newest_first_values(25);

  for (int round = 0; round < 30; ++round) {
    RowVec rows;
    const int n = len_dist(rng);
    for (int i = 0; i < n; ++i) {
      int64_t k = key_dist(rng);
      std::string v = "r" + std::to_string(round) + "_" + std::to_string(i);
      rows.push_back({Value(k), Value(v)});
      auto& chain = newest_first_values[static_cast<size_t>(k)];
      chain.insert(chain.begin(), v);
    }
    ASSERT_TRUE(rel->AppendRows(*ctx, rows).ok());
    if (round % 7 == 3) CompactAll(compactor, *rel);
  }
  CompactAll(compactor, *rel);

  for (int64_t k = 0; k <= 24; ++k) {
    RowVec got = rel->GetRows(Value(k));
    const auto& want = newest_first_values[static_cast<size_t>(k)];
    ASSERT_EQ(got.size(), want.size()) << k;
    for (size_t i = 0; i < want.size(); ++i) {
      EXPECT_EQ(got[i][1], Value(want[i])) << "key " << k << " pos " << i;
    }
  }
}

TEST(CompactionTest, PinnedViewOutlivesCompactionAndBlocksReclamation) {
  auto ctx = MakeCtx();
  auto rel = IndexedRelation::Build(*ctx, "t", KvSchema(), 0, {}).ValueOrDie();
  AppendFragmented(*ctx, *rel, 20, 50, 10);

  PinnedSnapshotPtr pin = rel->Pin();
  std::vector<std::string> pinned_bytes = ChainBytes(pin->snapshot(), Value(int64_t{3}));

  Compactor compactor(rel);
  for (int p = 0; p < rel->num_partitions(); ++p) {
    ASSERT_TRUE(compactor.CompactPartition(p).ok());
  }
  // Append more AFTER the pin: the pinned view must not see it.
  AppendFragmented(*ctx, *rel, 5, 50, 10, /*tag=*/1);

  // The pin still reads the retired generations, byte-identical.
  EXPECT_EQ(ChainBytes(pin->snapshot(), Value(int64_t{3})), pinned_bytes);
  EXPECT_EQ(pin->num_rows(), 1000u);

  // Reclamation is held back while the pin lives...
  EXPECT_EQ(compactor.DrainRetired(), 0u);
  Compactor::Stats held = compactor.stats();
  EXPECT_EQ(held.retired_pending, 4u);
  EXPECT_EQ(held.bytes_reclaimed, 0u);

  // ...and completes once it drains.
  pin.reset();
  EXPECT_EQ(compactor.DrainRetired(), 4u);
  Compactor::Stats drained = compactor.stats();
  EXPECT_EQ(drained.retired_pending, 0u);
  EXPECT_GT(drained.bytes_reclaimed, 0u);
  EXPECT_EQ(drained.generations_retired, 4u);

  // The live relation kept both the original and the post-pin rows.
  EXPECT_EQ(rel->num_rows(), 1250u);
}

TEST(CompactionTest, NullKeyRowsSurviveCompaction) {
  auto ctx = MakeCtx(2, 1);
  auto rel = IndexedRelation::Build(*ctx, "t", KvSchema(), 0, {}).ValueOrDie();
  RowVec rows;
  for (int64_t i = 0; i < 300; ++i) {
    rows.push_back({i % 3 == 0 ? Value::Null() : Value(i % 7),
                    Value("r" + std::to_string(i))});
  }
  ASSERT_TRUE(rel->AppendRows(*ctx, rows).ok());

  Compactor compactor(rel);
  CompactAll(compactor, *rel);

  EXPECT_EQ(rel->num_rows(), 300u);
  size_t scanned = 0, nulls = 0;
  for (int p = 0; p < rel->num_partitions(); ++p) {
    rel->partition(p).Snapshot().Scan([&](const Row& row) {
      ++scanned;
      if (row[0].is_null()) ++nulls;
    });
  }
  EXPECT_EQ(scanned, 300u);
  EXPECT_EQ(nulls, 100u);
}

TEST(CompactionTest, CompactionBoundsChainBatchSpan) {
  auto ctx = MakeCtx(1, 1);
  auto rel = IndexedRelation::Build(*ctx, "t", KvSchema(), 0, {}).ValueOrDie();
  // Few keys, many batches: every chain crosses ~every row batch.
  AppendFragmented(*ctx, *rel, 50, 40, 8);
  ChainStatsSnapshot before = rel->ChainStats();
  ASSERT_GT(before.MeanBatchSpan(), 4.0);
  EXPECT_EQ(before.total_links, 2000u);

  CompactionConfig config;
  config.max_mean_batch_span = 4.0;
  config.min_partition_rows = 100;
  Compactor compactor(rel, config);
  size_t compacted = compactor.RunOnce().ValueOrDie();
  EXPECT_EQ(compacted, 1u);

  // Key-clustered rewrite: each chain now sits in consecutive batches, so
  // the mean span collapses to ~(chain bytes / batch bytes).
  ChainStatsSnapshot after = rel->ChainStats();
  EXPECT_EQ(after.total_links, 2000u);
  EXPECT_EQ(after.num_keys, before.num_keys);
  EXPECT_LT(after.MeanBatchSpan(), before.MeanBatchSpan() / 2);
  EXPECT_LE(after.max_chain_len, before.max_chain_len);

  // Below threshold now: another pass is a no-op.
  if (after.MeanBatchSpan() <= config.max_mean_batch_span) {
    EXPECT_EQ(compactor.RunOnce().ValueOrDie(), 0u);
  }
}

TEST(CompactionTest, RunOnceSkipsSmallAndDefragmentedPartitions) {
  auto ctx = MakeCtx(2, 1);
  auto rel = IndexedRelation::Build(*ctx, "t", KvSchema(), 0, {}).ValueOrDie();
  AppendFragmented(*ctx, *rel, 4, 25, 5);  // 100 rows, tiny

  CompactionConfig config;
  config.min_partition_rows = 4096;  // nothing qualifies
  Compactor compactor(rel, config);
  EXPECT_EQ(compactor.RunOnce().ValueOrDie(), 0u);
  EXPECT_EQ(compactor.stats().compactions_run, 0u);
}

TEST(CompactionTest, PassPartitionCapSpreadsWorkAcrossPasses) {
  auto ctx = MakeCtx(4, 1);
  auto rel = IndexedRelation::Build(*ctx, "t", KvSchema(), 0, {}).ValueOrDie();
  AppendFragmented(*ctx, *rel, 40, 50, 37);  // every partition fragmented

  CompactionConfig config;
  config.max_mean_batch_span = 4.0;
  config.min_partition_rows = 64;
  config.max_partitions_per_pass = 2;
  config.partition_pacing = std::chrono::microseconds(100);
  Compactor compactor(rel, config);

  // No pass may exceed the cap; compacted partitions defragment, so the
  // passes converge once every partition has had its turn.
  size_t passes = 0;
  size_t total_compactions = 0;
  while (true) {
    size_t n = compactor.RunOnce().ValueOrDie();
    if (n == 0) break;
    EXPECT_LE(n, config.max_partitions_per_pass);
    total_compactions += n;
    ASSERT_LE(++passes, 16u) << "capped passes failed to converge";
  }
  EXPECT_GT(passes, 1u);  // the cap actually deferred work to later passes
  EXPECT_EQ(compactor.stats().compactions_run, total_compactions);

  size_t total_rows = 0;
  for (int64_t k = 0; k < 37; ++k) total_rows += rel->GetRows(Value(k)).size();
  EXPECT_EQ(total_rows, rel->num_rows());
}

TEST(CompactionTest, StopCutsPacingWaitShort) {
  auto ctx = MakeCtx(4, 1);
  auto rel = IndexedRelation::Build(*ctx, "t", KvSchema(), 0, {}).ValueOrDie();
  AppendFragmented(*ctx, *rel, 40, 50, 37);

  CompactionConfig config;
  config.max_mean_batch_span = 4.0;
  config.min_partition_rows = 64;
  config.interval = std::chrono::milliseconds(1);
  // A pacing wait far beyond the test budget: with four fragmented
  // partitions the first background pass parks between rewrites, and only
  // a prompt Stop() can get the thread back.
  config.partition_pacing = std::chrono::duration_cast<std::chrono::microseconds>(
      std::chrono::seconds(60));
  Compactor compactor(rel, config);
  compactor.Start();
  for (int i = 0; i < 400 && compactor.stats().compactions_run == 0; ++i) {
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }
  const auto t0 = std::chrono::steady_clock::now();
  compactor.Stop();
  const auto elapsed = std::chrono::steady_clock::now() - t0;
  EXPECT_LT(elapsed, std::chrono::seconds(10));
  EXPECT_GE(compactor.stats().compactions_run, 1u);
}

TEST(CompactionTest, BackgroundThreadCompactsUnderAppendStream) {
  auto ctx = MakeCtx(2, 2);
  auto rel = IndexedRelation::Build(*ctx, "t", KvSchema(), 0, {}).ValueOrDie();
  CompactionConfig config;
  config.max_mean_batch_span = 2.0;
  config.min_partition_rows = 256;
  config.interval = std::chrono::milliseconds(5);
  Compactor compactor(rel, config);
  compactor.Start();
  compactor.Start();  // idempotent
  AppendFragmented(*ctx, *rel, 60, 40, 6);
  // Wait (bounded) for at least one background pass to trigger.
  for (int i = 0; i < 400 && compactor.stats().compactions_run == 0; ++i) {
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
    AppendFragmented(*ctx, *rel, 1, 40, 6);
  }
  compactor.Stop();
  EXPECT_GT(compactor.stats().compactions_run, 0u);
  size_t total = 0;
  for (int64_t k = 0; k < 6; ++k) total += rel->GetRows(Value(k)).size();
  EXPECT_EQ(total, rel->num_rows());
}

// The TSan target: concurrent pinned readers + append stream + forced
// compaction, all racing on the same partitions. Asserts only invariants
// that hold at any interleaving; TSan checks the memory model.
TEST(CompactionTest, ConcurrentReadersAppendersAndCompactorAreRaceFree) {
  auto ctx = MakeCtx(2, 4);
  auto rel = IndexedRelation::Build(*ctx, "t", KvSchema(), 0, {}).ValueOrDie();
  AppendFragmented(*ctx, *rel, 10, 40, 8);
  Compactor compactor(rel);

  std::atomic<bool> stop{false};
  std::atomic<uint64_t> reads{0};

  std::vector<std::thread> readers;
  for (int r = 0; r < 3; ++r) {
    readers.emplace_back([&] {
      std::mt19937 rng(std::hash<std::thread::id>{}(std::this_thread::get_id()));
      while (!stop.load(std::memory_order_acquire)) {
        PinnedSnapshotPtr pin = rel->Pin();
        const size_t pinned_rows = pin->num_rows();
        size_t seen = 0;
        for (int64_t k = 0; k < 8; ++k) {
          RowVec rows = pin->GetRows(Value(k));
          seen += rows.size();
          for (const Row& row : rows) IDF_CHECK(row[0] == Value(k));
        }
        // The trie snapshot is captured before the watermark, so every
        // chain row is covered by the watermark; rows of a batch whose
        // head was not yet published may pad the count on the right.
        IDF_CHECK(seen <= pinned_rows)
            << seen << " chain rows vs " << pinned_rows << " pinned";
        reads.fetch_add(1, std::memory_order_relaxed);
      }
    });
  }

  std::thread appender([&] {
    int round = 0;
    while (!stop.load(std::memory_order_acquire)) {
      AppendFragmented(*ctx, *rel, 1, 40, 8, /*tag=*/++round);
    }
  });

  std::thread compact_loop([&] {
    while (!stop.load(std::memory_order_acquire)) {
      for (int p = 0; p < rel->num_partitions(); ++p) {
        IDF_CHECK_OK(compactor.CompactPartition(p));
      }
      compactor.DrainRetired();
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
    }
  });

  std::this_thread::sleep_for(std::chrono::milliseconds(700));
  stop.store(true, std::memory_order_release);
  for (auto& t : readers) t.join();
  appender.join();
  compact_loop.join();

  EXPECT_GT(reads.load(), 0u);
  EXPECT_GT(compactor.stats().compactions_run, 0u);
  // Quiesced: everything retired during the run must now be reclaimable.
  compactor.DrainRetired();
  EXPECT_EQ(compactor.stats().retired_pending, 0u);
  size_t total = 0;
  for (int64_t k = 0; k < 8; ++k) total += rel->GetRows(Value(k)).size();
  EXPECT_EQ(total, rel->num_rows());
}

}  // namespace
}  // namespace idf
