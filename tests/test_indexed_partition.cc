// Unit tests for IndexedPartition: the cTrie + row batches + backward
// pointers triple, chain semantics, and snapshot (MVCC) views.
#include "indexed/indexed_partition.h"

#include <atomic>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

namespace idf {
namespace {

EngineConfig SmallConfig() {
  EngineConfig cfg;
  cfg.row_batch_bytes = 4096;
  cfg.max_row_bytes = 512;
  cfg.num_partitions = 1;
  cfg.num_threads = 1;
  return cfg.Resolved();
}

SchemaPtr KvSchema() {
  return Schema::Make({{"k", TypeId::kInt64, true}, {"v", TypeId::kString, true}});
}

Row KvRow(int64_t k, const std::string& v) { return {Value(k), Value(v)}; }

TEST(IndexedPartitionTest, AppendThenLookup) {
  IndexedPartition part(KvSchema(), 0, SmallConfig());
  ASSERT_TRUE(part.Append(KvRow(1, "a")).ok());
  RowVec rows = part.GetRows(Value(int64_t{1}));
  ASSERT_EQ(rows.size(), 1u);
  EXPECT_EQ(rows[0], KvRow(1, "a"));
  EXPECT_TRUE(part.GetRows(Value(int64_t{2})).empty());
}

TEST(IndexedPartitionTest, NonUniqueKeysChainNewestFirst) {
  IndexedPartition part(KvSchema(), 0, SmallConfig());
  for (int i = 0; i < 5; ++i) {
    ASSERT_TRUE(part.Append(KvRow(7, "v" + std::to_string(i))).ok());
  }
  RowVec rows = part.GetRows(Value(int64_t{7}));
  ASSERT_EQ(rows.size(), 5u);
  // The cTrie points at the latest row; the backward chain yields rows
  // newest-first.
  for (int i = 0; i < 5; ++i) {
    EXPECT_EQ(rows[static_cast<size_t>(i)][1],
              Value("v" + std::to_string(4 - i)));
  }
}

TEST(IndexedPartitionTest, InterleavedKeysKeepSeparateChains) {
  IndexedPartition part(KvSchema(), 0, SmallConfig());
  for (int i = 0; i < 30; ++i) {
    ASSERT_TRUE(part.Append(KvRow(i % 3, "r" + std::to_string(i))).ok());
  }
  for (int64_t k = 0; k < 3; ++k) {
    RowVec rows = part.GetRows(Value(k));
    ASSERT_EQ(rows.size(), 10u) << k;
    for (const Row& row : rows) {
      EXPECT_EQ(row[0], Value(k));
    }
  }
  EXPECT_EQ(part.distinct_keys(), 3u);
  EXPECT_EQ(part.num_rows(), 30u);
}

TEST(IndexedPartitionTest, ChainsSpanBatchBoundaries) {
  EngineConfig cfg = SmallConfig();
  cfg.row_batch_bytes = 256;  // tiny batches force rollover
  cfg.max_row_bytes = 128;
  IndexedPartition part(KvSchema(), 0, cfg);
  for (int i = 0; i < 200; ++i) {
    ASSERT_TRUE(part.Append(KvRow(i % 4, "value" + std::to_string(i))).ok());
  }
  EXPECT_GT(part.store().num_batches(), 1u);
  for (int64_t k = 0; k < 4; ++k) {
    EXPECT_EQ(part.GetRows(Value(k)).size(), 50u);
  }
}

TEST(IndexedPartitionTest, BackwardPointersCarryPrevSize) {
  IndexedPartition part(KvSchema(), 0, SmallConfig());
  ASSERT_TRUE(part.Append(KvRow(1, "first-row-payload")).ok());
  ASSERT_TRUE(part.Append(KvRow(1, "x")).ok());
  auto view = part.Snapshot();
  std::vector<PackedPointer> chain;
  view.ScanChain(Value(int64_t{1}),
                 [&chain](PackedPointer p) { chain.push_back(p); });
  ASSERT_EQ(chain.size(), 2u);
  // The head pointer records the size of the previous row on the chain.
  EXPECT_GT(chain[0].prev_size(), 0u);
  EXPECT_EQ(chain[1].prev_size(), 0u);  // first row has no predecessor
}

TEST(IndexedPartitionTest, NullKeysStoredButUnindexed) {
  IndexedPartition part(KvSchema(), 0, SmallConfig());
  ASSERT_TRUE(part.Append({Value::Null(), Value("ghost")}).ok());
  ASSERT_TRUE(part.Append(KvRow(1, "real")).ok());
  EXPECT_TRUE(part.GetRows(Value::Null()).empty());
  EXPECT_EQ(part.num_rows(), 2u);
  // Scans still see the unindexed row.
  size_t scanned = 0;
  part.Snapshot().Scan([&scanned](const Row&) { ++scanned; });
  EXPECT_EQ(scanned, 2u);
}

TEST(IndexedPartitionTest, ScanVisitsAppendOrder) {
  IndexedPartition part(KvSchema(), 0, SmallConfig());
  for (int i = 0; i < 20; ++i) {
    ASSERT_TRUE(part.Append(KvRow(i, "s" + std::to_string(i))).ok());
  }
  std::vector<int64_t> seen;
  part.Snapshot().Scan([&seen](const Row& row) { seen.push_back(row[0].AsInt64()); });
  ASSERT_EQ(seen.size(), 20u);
  for (int i = 0; i < 20; ++i) EXPECT_EQ(seen[static_cast<size_t>(i)], i);
}

TEST(IndexedPartitionTest, SnapshotIsolation) {
  IndexedPartition part(KvSchema(), 0, SmallConfig());
  for (int i = 0; i < 10; ++i) ASSERT_TRUE(part.Append(KvRow(5, "old")).ok());
  auto view = part.Snapshot();
  for (int i = 0; i < 10; ++i) ASSERT_TRUE(part.Append(KvRow(5, "new")).ok());
  // The view still sees exactly the old rows.
  EXPECT_EQ(view.GetRows(Value(int64_t{5})).size(), 10u);
  EXPECT_EQ(view.num_rows(), 10u);
  // The live partition sees all rows.
  EXPECT_EQ(part.GetRows(Value(int64_t{5})).size(), 20u);
  size_t scanned = 0;
  view.Scan([&scanned](const Row&) { ++scanned; });
  EXPECT_EQ(scanned, 10u);
}

TEST(IndexedPartitionTest, SnapshotSeesNewKeysOnlyAfterTaking) {
  IndexedPartition part(KvSchema(), 0, SmallConfig());
  ASSERT_TRUE(part.Append(KvRow(1, "a")).ok());
  auto v1 = part.Snapshot();
  ASSERT_TRUE(part.Append(KvRow(2, "b")).ok());
  auto v2 = part.Snapshot();
  EXPECT_TRUE(v1.GetRows(Value(int64_t{2})).empty());
  EXPECT_EQ(v2.GetRows(Value(int64_t{2})).size(), 1u);
}

TEST(IndexedPartitionTest, ConcurrentReadersDuringAppends) {
  EngineConfig cfg = SmallConfig();
  cfg.row_batch_bytes = 1024;
  IndexedPartition part(KvSchema(), 0, cfg);
  for (int i = 0; i < 100; ++i) ASSERT_TRUE(part.Append(KvRow(i % 10, "seed")).ok());

  std::atomic<bool> stop{false};
  std::atomic<uint64_t> errors{0};
  std::vector<std::thread> readers;
  for (int r = 0; r < 3; ++r) {
    readers.emplace_back([&] {
      while (!stop.load()) {
        auto view = part.Snapshot();
        for (int64_t k = 0; k < 10; ++k) {
          RowVec rows = view.GetRows(Value(k));
          // Seed guarantees at least 10 rows per key; every row must carry
          // the queried key.
          if (rows.size() < 10) errors.fetch_add(1);
          for (const Row& row : rows) {
            if (!(row[0] == Value(k))) errors.fetch_add(1);
          }
        }
      }
    });
  }
  for (int i = 0; i < 20000; ++i) {
    ASSERT_TRUE(part.Append(KvRow(i % 10, "live" + std::to_string(i))).ok());
  }
  stop.store(true);
  for (auto& t : readers) t.join();
  EXPECT_EQ(errors.load(), 0u);
  EXPECT_EQ(part.GetRows(Value(int64_t{0})).size(), 2010u);
}

TEST(IndexedPartitionTest, MemoryAccounting) {
  IndexedPartition part(KvSchema(), 0, SmallConfig());
  for (int i = 0; i < 500; ++i) {
    ASSERT_TRUE(part.Append(KvRow(i, "some payload string")).ok());
  }
  EXPECT_GT(part.data_bytes(), 500u * 24);
  EXPECT_GT(part.index_bytes(), 0u);
}

TEST(IndexedPartitionTest, RejectsOversizedRows) {
  IndexedPartition part(KvSchema(), 0, SmallConfig());
  Status st = part.Append(KvRow(1, std::string(4000, 'x')));
  EXPECT_EQ(st.code(), StatusCode::kCapacityError);
}

TEST(IndexedPartitionTest, HashCollisionsAcrossValuesAreFiltered) {
  // Two different int64 keys never collide under Mix64 (a bijection), but
  // the chain-verify logic must also hold for equal-hash values; emulate by
  // checking that lookups compare the actual column value.
  IndexedPartition part(KvSchema(), 0, SmallConfig());
  ASSERT_TRUE(part.Append(KvRow(1, "one")).ok());
  ASSERT_TRUE(part.Append(KvRow(2, "two")).ok());
  RowVec rows = part.GetRows(Value(int64_t{1}));
  ASSERT_EQ(rows.size(), 1u);
  EXPECT_EQ(rows[0][1], Value("one"));
}

TEST(IndexedPartitionTest, StringKeysWork) {
  IndexedPartition part(KvSchema(), 1, SmallConfig());  // index on v (string)
  ASSERT_TRUE(part.Append(KvRow(1, "alpha")).ok());
  ASSERT_TRUE(part.Append(KvRow(2, "beta")).ok());
  ASSERT_TRUE(part.Append(KvRow(3, "alpha")).ok());
  RowVec rows = part.GetRows(Value("alpha"));
  ASSERT_EQ(rows.size(), 2u);
  EXPECT_EQ(rows[0][0], Value(int64_t{3}));  // newest first
  EXPECT_EQ(rows[1][0], Value(int64_t{1}));
}

}  // namespace
}  // namespace idf
