// Tests for the CSV reader/writer and SNB dataset persistence.
#include "io/csv.h"

#include <cstdio>
#include <filesystem>

#include <gtest/gtest.h>

#include "snb/snb_io.h"

namespace idf {
namespace {

using io::CsvOptions;
using io::FromCsvString;
using io::ReadCsv;
using io::ToCsvString;
using io::WriteCsv;

SchemaPtr TestSchema() {
  return Schema::Make({{"id", TypeId::kInt64, false},
                       {"name", TypeId::kString, true},
                       {"score", TypeId::kFloat64, true},
                       {"ok", TypeId::kBool, true},
                       {"small", TypeId::kInt32, true},
                       {"ts", TypeId::kTimestamp, true}});
}

RowVec TestRows() {
  return {
      {Value(int64_t{1}), Value("alice"), Value(0.5), Value(true),
       Value(int32_t{7}), Value(int64_t{1600000000000000})},
      {Value(int64_t{2}), Value::Null(), Value::Null(), Value::Null(),
       Value::Null(), Value::Null()},
      {Value(int64_t{3}), Value("has,comma"), Value(1.25), Value(false),
       Value(int32_t{-9}), Value(int64_t{0})},
  };
}

TEST(CsvTest, StringRoundTrip) {
  SchemaPtr schema = TestSchema();
  std::string data = ToCsvString(*schema, TestRows());
  RowVec parsed = FromCsvString(data, *schema).ValueOrDie();
  EXPECT_EQ(parsed, TestRows());
}

TEST(CsvTest, HeaderWrittenAndValidated) {
  SchemaPtr schema = TestSchema();
  std::string data = ToCsvString(*schema, {});
  EXPECT_EQ(data, "id,name,score,ok,small,ts\n");
  EXPECT_TRUE(FromCsvString(data, *schema).ValueOrDie().empty());
  // Wrong header order fails.
  auto bad = FromCsvString("name,id,score,ok,small,ts\n", *schema);
  EXPECT_TRUE(bad.status().IsInvalidArgument());
}

TEST(CsvTest, NoHeaderMode) {
  SchemaPtr schema = TestSchema();
  CsvOptions options;
  options.header = false;
  std::string data = ToCsvString(*schema, TestRows(), options);
  EXPECT_EQ(data.find("id,name"), std::string::npos);
  EXPECT_EQ(FromCsvString(data, *schema, options).ValueOrDie(), TestRows());
}

TEST(CsvTest, QuotingCommasQuotesNewlines) {
  auto schema = Schema::Make({{"s", TypeId::kString, true}});
  RowVec rows = {{Value("a,b")}, {Value("say \"hi\"")}, {Value("two\nlines")}};
  std::string data = ToCsvString(*schema, rows);
  RowVec parsed = FromCsvString(data, *schema).ValueOrDie();
  EXPECT_EQ(parsed, rows);
}

TEST(CsvTest, EmptyUnquotedIsNullQuotedIsEmptyString) {
  auto schema = Schema::Make({{"s", TypeId::kString, true}});
  RowVec parsed = FromCsvString("s\n\"\"\n", *schema).ValueOrDie();
  ASSERT_EQ(parsed.size(), 1u);
  EXPECT_EQ(parsed[0][0], Value(""));
  // An unquoted empty field is NULL.
  auto schema2 = Schema::Make({{"a", TypeId::kInt64, true},
                               {"b", TypeId::kString, true}});
  RowVec parsed2 = FromCsvString("a,b\n1,\n", *schema2).ValueOrDie();
  ASSERT_EQ(parsed2.size(), 1u);
  EXPECT_TRUE(parsed2[0][1].is_null());
}

TEST(CsvTest, NullTokenOption) {
  auto schema = Schema::Make({{"a", TypeId::kInt64, true}});
  CsvOptions options;
  options.null_token = "NULL";
  std::string data = ToCsvString(*schema, {{Value::Null()}}, options);
  EXPECT_NE(data.find("NULL"), std::string::npos);
  RowVec parsed = FromCsvString(data, *schema, options).ValueOrDie();
  EXPECT_TRUE(parsed[0][0].is_null());
}

TEST(CsvTest, EmptyStringRoundTripsDistinctFromNull) {
  auto schema = Schema::Make({{"s", TypeId::kString, true}});
  RowVec rows = {{Value("")}, {Value::Null()}};
  std::string data = ToCsvString(*schema, rows);
  RowVec parsed = FromCsvString(data, *schema).ValueOrDie();
  ASSERT_EQ(parsed.size(), 2u);
  EXPECT_EQ(parsed[0][0], Value(""));
  EXPECT_TRUE(parsed[1][0].is_null());
}

TEST(CsvTest, StringEqualToNullTokenStaysString) {
  auto schema = Schema::Make({{"s", TypeId::kString, true}});
  CsvOptions options;
  options.null_token = "NULL";
  RowVec rows = {{Value("NULL")}, {Value::Null()}};
  std::string data = ToCsvString(*schema, rows, options);
  RowVec parsed = FromCsvString(data, *schema, options).ValueOrDie();
  EXPECT_EQ(parsed[0][0], Value("NULL"));
  EXPECT_TRUE(parsed[1][0].is_null());
}

TEST(CsvTest, CustomDelimiter) {
  SchemaPtr schema = TestSchema();
  CsvOptions options;
  options.delimiter = '|';
  std::string data = ToCsvString(*schema, TestRows(), options);
  EXPECT_EQ(FromCsvString(data, *schema, options).ValueOrDie(), TestRows());
}

TEST(CsvTest, DoubleRoundTripsExactly) {
  auto schema = Schema::Make({{"d", TypeId::kFloat64, true}});
  RowVec rows = {{Value(1.0 / 3.0)}, {Value(1e-300)}, {Value(12345.6789)}};
  std::string data = ToCsvString(*schema, rows);
  EXPECT_EQ(FromCsvString(data, *schema).ValueOrDie(), rows);
}

TEST(CsvTest, TypeErrorsAreDescriptive) {
  auto schema = Schema::Make({{"a", TypeId::kInt64, true}});
  auto r = FromCsvString("a\nnot_a_number\n", *schema);
  ASSERT_FALSE(r.ok());
  EXPECT_NE(r.status().message().find("record 2"), std::string::npos);
  EXPECT_NE(r.status().message().find("not_a_number"), std::string::npos);
}

TEST(CsvTest, ArityMismatchRejected) {
  auto schema = Schema::Make({{"a", TypeId::kInt64, true},
                              {"b", TypeId::kInt64, true}});
  EXPECT_FALSE(FromCsvString("a,b\n1,2,3\n", *schema).ok());
  EXPECT_FALSE(FromCsvString("a,b\n1\n", *schema).ok());
}

TEST(CsvTest, UnterminatedQuoteRejected) {
  auto schema = Schema::Make({{"s", TypeId::kString, true}});
  EXPECT_FALSE(FromCsvString("s\n\"open\n", *schema).ok());
}

TEST(CsvTest, Int32RangeChecked) {
  auto schema = Schema::Make({{"a", TypeId::kInt32, true}});
  EXPECT_FALSE(FromCsvString("a\n99999999999\n", *schema).ok());
}

TEST(CsvTest, CrLfLineEndings) {
  auto schema = Schema::Make({{"a", TypeId::kInt64, true}});
  RowVec parsed = FromCsvString("a\r\n1\r\n2\r\n", *schema).ValueOrDie();
  ASSERT_EQ(parsed.size(), 2u);
  EXPECT_EQ(parsed[1][0], Value(int64_t{2}));
}

TEST(CsvTest, FileRoundTrip) {
  SchemaPtr schema = TestSchema();
  std::string path =
      (std::filesystem::temp_directory_path() / "idf_csv_test.csv").string();
  ASSERT_TRUE(WriteCsv(path, *schema, TestRows()).ok());
  EXPECT_EQ(ReadCsv(path, *schema).ValueOrDie(), TestRows());
  std::remove(path.c_str());
}

TEST(CsvTest, MissingFileIsError) {
  auto r = ReadCsv("/nonexistent/dir/f.csv", *TestSchema());
  EXPECT_TRUE(r.status().IsInvalidArgument());
}

TEST(SnbIoTest, DatasetRoundTrip) {
  snb::SnbConfig cfg;
  cfg.scale_factor = 0.1;
  snb::SnbDataset ds = snb::GenerateSnb(cfg);
  auto dir = std::filesystem::temp_directory_path() / "idf_snb_io_test";
  std::filesystem::create_directories(dir);
  ASSERT_TRUE(snb::SaveDataset(dir.string(), ds).ok());
  snb::SnbDataset loaded = snb::LoadDataset(dir.string(), cfg).ValueOrDie();
  EXPECT_EQ(loaded.persons, ds.persons);
  EXPECT_EQ(loaded.knows, ds.knows);
  EXPECT_EQ(loaded.posts, ds.posts);
  EXPECT_EQ(loaded.comments, ds.comments);
  EXPECT_EQ(loaded.forums, ds.forums);
  EXPECT_EQ(loaded.forum_members, ds.forum_members);
  // Reconstructed metadata matches the generator's.
  EXPECT_EQ(loaded.first_person_id, ds.first_person_id);
  EXPECT_EQ(loaded.num_persons, ds.num_persons);
  EXPECT_EQ(loaded.first_post_id, ds.first_post_id);
  EXPECT_EQ(loaded.num_comments, ds.num_comments);
  std::filesystem::remove_all(dir);
}

}  // namespace
}  // namespace idf
