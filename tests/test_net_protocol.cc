// Network front end: wire framing (round trips, torn reads, oversized
// frames), value/schema serialization, loopback prepare/execute/query
// against a live server, concurrent clients under a live append stream,
// and CapacityError-to-BUSY backpressure mapping.
#include <atomic>
#include <chrono>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "indexed/indexed_dataframe.h"
#include "net/client.h"
#include "net/protocol.h"
#include "net/server.h"
#include "service/query_service.h"

namespace idf {
namespace net {
namespace {

SchemaPtr TestSchema() {
  return Schema::Make(
      {{"id", TypeId::kInt64, false}, {"name", TypeId::kString, false}});
}

RowVec MakeRows(int64_t begin, int64_t end) {
  RowVec rows;
  rows.reserve(static_cast<size_t>(end - begin));
  for (int64_t i = begin; i < end; ++i) {
    rows.push_back({Value(i), Value("n" + std::to_string(i))});
  }
  return rows;
}

QueryServicePtr MakeServiceWithTable(size_t n, ServiceConfig cfg = {}) {
  cfg.engine.num_threads = 2;
  cfg.engine.num_partitions = 4;
  auto service = QueryService::Make(cfg).ValueOrDie();
  auto session = Session::Make(cfg.engine).ValueOrDie();
  auto df =
      session
          ->CreateDataFrame(TestSchema(), MakeRows(0, static_cast<int64_t>(n)),
                            "people")
          .ValueOrDie();
  auto rel = IndexedDataFrame::CreateIndex(df, 0, "people_by_id")
                 .ValueOrDie()
                 .relation();
  EXPECT_TRUE(service->RegisterTable("people", rel).ok());
  return service;
}

TEST(NetProtocolTest, FrameRoundTripSingleChunk) {
  const std::string a = EncodeFrame(Op::kQuery, "hello");
  const std::string b = EncodeFrame(Op::kStats, "");
  FrameDecoder dec;
  ASSERT_TRUE(dec.Feed((a + b).data(), a.size() + b.size()).ok());
  Frame f;
  ASSERT_TRUE(dec.Next(&f));
  EXPECT_EQ(f.op, Op::kQuery);
  EXPECT_EQ(f.payload, "hello");
  ASSERT_TRUE(dec.Next(&f));
  EXPECT_EQ(f.op, Op::kStats);
  EXPECT_TRUE(f.payload.empty());
  EXPECT_FALSE(dec.Next(&f));
}

TEST(NetProtocolTest, TornReadsReassemble) {
  // Feed two frames one byte at a time: partial length prefixes, partial
  // payloads, and a frame boundary splitting a read must all reassemble.
  const std::string wire =
      EncodeFrame(Op::kPrepare, "SELECT 1") + EncodeFrame(Op::kClose, "XYZ");
  FrameDecoder dec;
  std::vector<Frame> frames;
  for (char c : wire) {
    ASSERT_TRUE(dec.Feed(&c, 1).ok());
    Frame f;
    while (dec.Next(&f)) frames.push_back(f);
  }
  ASSERT_EQ(frames.size(), 2u);
  EXPECT_EQ(frames[0].op, Op::kPrepare);
  EXPECT_EQ(frames[0].payload, "SELECT 1");
  EXPECT_EQ(frames[1].op, Op::kClose);
  EXPECT_EQ(frames[1].payload, "XYZ");
}

TEST(NetProtocolTest, OversizedFrameIsRejectedWithoutBuffering) {
  std::string header;
  WireWriter w(&header);
  w.PutU32(kMaxFrameBytes + 1);
  FrameDecoder dec;
  Status s = dec.Feed(header.data(), header.size());
  EXPECT_FALSE(s.ok());
  EXPECT_TRUE(s.IsInvalidArgument()) << s.ToString();
  // The decoder is poisoned: further bytes are refused instead of being
  // misinterpreted mid-stream.
  const char byte = 0;
  EXPECT_FALSE(dec.Feed(&byte, 1).ok());
}

TEST(NetProtocolTest, ZeroLengthFrameIsRejected) {
  const char header[4] = {0, 0, 0, 0};
  FrameDecoder dec;
  EXPECT_FALSE(dec.Feed(header, sizeof(header)).ok());
}

TEST(NetProtocolTest, ValueAndRowRoundTrip) {
  std::string buf;
  WireWriter w(&buf);
  const Row row = {Value::Null(), Value(true), Value(int32_t{-7}),
                   Value(int64_t{1} << 40), Value(3.25), Value("héllo")};
  w.PutRow(row);
  WireReader r(buf);
  Row back = r.ReadRow().ValueOrDie();
  ASSERT_TRUE(r.ExpectEnd().ok());
  EXPECT_EQ(back, row);
}

TEST(NetProtocolTest, SchemaRoundTrip) {
  std::string buf;
  WireWriter w(&buf);
  w.PutSchema(*TestSchema());
  WireReader r(buf);
  SchemaPtr back = r.ReadSchema().ValueOrDie();
  ASSERT_EQ(back->num_fields(), 2);
  EXPECT_EQ(back->field(0).name, "id");
  EXPECT_EQ(back->field(0).type, TypeId::kInt64);
  EXPECT_EQ(back->field(1).name, "name");
  EXPECT_EQ(back->field(1).type, TypeId::kString);
}

TEST(NetProtocolTest, TruncatedPayloadFailsCleanly) {
  std::string buf;
  WireWriter w(&buf);
  w.PutString("abcdef");
  // Drop the last two bytes: the reader must error, not over-read.
  WireReader r(buf.data(), buf.size() - 2);
  EXPECT_FALSE(r.String().ok());
  // A length prefix pointing past the end is equally harmless.
  std::string lying;
  WireWriter w2(&lying);
  w2.PutU32(1000);
  WireReader r2(lying);
  EXPECT_FALSE(r2.String().ok());
  // Trailing garbage after a well-formed payload is a protocol error.
  std::string padded;
  WireWriter w3(&padded);
  w3.PutString("x");
  w3.PutU8(0);
  WireReader r3(padded);
  ASSERT_TRUE(r3.String().ok());
  EXPECT_FALSE(r3.ExpectEnd().ok());
}

TEST(NetProtocolTest, ErrorPayloadCarriesStatusCode) {
  const Status in = Status::KeyError("no such table");
  Status out = DecodeError(EncodeError(in), Op::kError);
  EXPECT_TRUE(out.IsKeyError()) << out.ToString();
  EXPECT_EQ(out.message(), "no such table");
  // BUSY always decodes to CapacityError so clients can key retry logic
  // off the status code alone.
  Status busy =
      DecodeError(EncodeBusy(Status::CapacityError("full")), Op::kBusy);
  EXPECT_TRUE(busy.IsCapacityError()) << busy.ToString();
  // A malformed error payload still yields a failure, never OK.
  EXPECT_FALSE(DecodeError("", Op::kError).ok());
}

TEST(NetProtocolTest, LoopbackPrepareExecuteQueryCloseStats) {
  auto service = MakeServiceWithTable(500);
  auto server = Server::Start(service, ServerConfig{}).ValueOrDie();
  ASSERT_GT(server->port(), 0);

  auto client = Client::Connect("127.0.0.1", server->port()).ValueOrDie();
  PreparedReply prep =
      client->Prepare("SELECT name FROM people WHERE id = ?").ValueOrDie();
  ASSERT_EQ(prep.param_types.size(), 1u);
  EXPECT_EQ(prep.param_types[0], TypeId::kInt64);
  ASSERT_EQ(prep.schema->num_fields(), 1);
  EXPECT_EQ(prep.schema->field(0).name, "name");

  for (int64_t id : {int64_t{0}, int64_t{42}, int64_t{499}}) {
    RowsReply rows = client->Execute(prep.handle, {Value(id)}).ValueOrDie();
    ASSERT_EQ(rows.rows.size(), 1u);
    EXPECT_EQ(rows.rows[0][0].string_value(), "n" + std::to_string(id));
  }

  // Pipelined burst: one write for the whole batch, replies in order.
  std::vector<std::vector<Value>> burst;
  for (int64_t id = 100; id < 116; ++id) burst.push_back({Value(id)});
  std::vector<RowsReply> replies =
      client->ExecutePipelined(prep.handle, burst).ValueOrDie();
  ASSERT_EQ(replies.size(), 16u);
  for (size_t i = 0; i < replies.size(); ++i) {
    ASSERT_EQ(replies[i].rows.size(), 1u);
    EXPECT_EQ(replies[i].rows[0][0].string_value(),
              "n" + std::to_string(100 + i));
  }

  // Ad-hoc QUERY sees data appended after the statement was prepared.
  ASSERT_TRUE(service->Append("people", MakeRows(500, 510)).ok());
  RowsReply q = client->Query("SELECT COUNT(*) FROM people").ValueOrDie();
  ASSERT_EQ(q.rows.size(), 1u);
  EXPECT_EQ(q.rows[0][0].int64_value(), 510);
  EXPECT_GE(q.epoch, 1u);

  ASSERT_TRUE(client->Close(prep.handle).ok());
  EXPECT_FALSE(client->Execute(prep.handle, {Value(int64_t{1})}).ok());

  std::string json = client->Stats().ValueOrDie();
  EXPECT_NE(json.find("\"net_requests\""), std::string::npos);
  EXPECT_NE(json.find("\"plan_cache_misses\": 1"), std::string::npos);

  ServiceStats stats = service->Stats();
  EXPECT_EQ(stats.net_connections, 1u);
  EXPECT_GT(stats.net_requests, 20u);
  EXPECT_EQ(stats.statements_prepared, 1u);
  EXPECT_EQ(stats.prepared_executions, 19u);
}

TEST(NetProtocolTest, ErrorReplyLeavesConnectionUsable) {
  auto service = MakeServiceWithTable(10);
  auto server = Server::Start(service, ServerConfig{}).ValueOrDie();
  auto client = Client::Connect("127.0.0.1", server->port()).ValueOrDie();
  // A parse error draws an ERROR frame, and the same connection then
  // serves the next request normally.
  EXPECT_FALSE(client->Query("SELEKT nope").ok());
  EXPECT_FALSE(client->Prepare("SELECT id FROM nowhere").ok());
  EXPECT_FALSE(client->Execute(12345, {Value(int64_t{1})}).ok());
  RowsReply ok = client->Query("SELECT COUNT(*) FROM people").ValueOrDie();
  EXPECT_EQ(ok.rows[0][0].int64_value(), 10);
}

TEST(NetProtocolTest, ConcurrentClientsUnderAppendStream) {
  auto service = MakeServiceWithTable(1000);
  ServerConfig cfg;
  cfg.io_threads = 3;
  auto server = Server::Start(service, cfg).ValueOrDie();

  std::atomic<bool> stop{false};
  std::thread appender([&] {
    int64_t next = 1000;
    while (!stop.load(std::memory_order_acquire)) {
      EXPECT_TRUE(service->Append("people", MakeRows(next, next + 5)).ok());
      next += 5;
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
    }
  });

  std::vector<std::thread> clients;
  std::atomic<uint64_t> rows_checked{0};
  for (int t = 0; t < 4; ++t) {
    clients.emplace_back([&, t] {
      auto client = Client::Connect("127.0.0.1", server->port()).ValueOrDie();
      PreparedReply prep =
          client->Prepare("SELECT name FROM people WHERE id = ?").ValueOrDie();
      for (int i = 0; i < 30; ++i) {
        const int64_t id = (static_cast<int64_t>(t) * 31 + i) % 1000;
        Result<RowsReply> r = client->Execute(prep.handle, {Value(id)});
        ASSERT_TRUE(r.ok()) << r.status().ToString();
        ASSERT_EQ(r->rows.size(), 1u);
        ASSERT_EQ(r->rows[0][0].string_value(), "n" + std::to_string(id));
        rows_checked.fetch_add(1, std::memory_order_relaxed);
      }
    });
  }
  for (auto& c : clients) c.join();
  stop.store(true, std::memory_order_release);
  appender.join();
  EXPECT_EQ(rows_checked.load(), 120u);
  ServiceStats stats = service->Stats();
  EXPECT_EQ(stats.net_connections, 4u);
  EXPECT_EQ(stats.prepared_executions, 120u);
}

TEST(NetProtocolTest, AdmissionOverloadMapsToBusyNotError) {
  ServiceConfig cfg;
  cfg.max_inflight = 1;
  cfg.max_queue = 0;  // no parking: concurrent admissions reject outright
  auto service = MakeServiceWithTable(20000, cfg);
  ServerConfig net_cfg;
  net_cfg.io_threads = 4;
  auto server = Server::Start(service, net_cfg).ValueOrDie();

  std::atomic<uint64_t> ok_count{0};
  std::atomic<uint64_t> busy_count{0};
  std::vector<std::thread> clients;
  for (int t = 0; t < 6; ++t) {
    clients.emplace_back([&] {
      auto client = Client::Connect("127.0.0.1", server->port()).ValueOrDie();
      for (int i = 0; i < 30; ++i) {
        Result<RowsReply> r =
            client->Query("SELECT COUNT(*) FROM people WHERE id >= 0");
        if (r.ok()) {
          ok_count.fetch_add(1, std::memory_order_relaxed);
        } else {
          // Overload must surface as BUSY (CapacityError), never as a
          // dropped connection or an opaque failure.
          ASSERT_TRUE(r.status().IsCapacityError()) << r.status().ToString();
          busy_count.fetch_add(1, std::memory_order_relaxed);
        }
      }
    });
  }
  for (auto& c : clients) c.join();
  EXPECT_EQ(ok_count.load() + busy_count.load(), 180u);
  EXPECT_GT(ok_count.load(), 0u);
  EXPECT_GT(busy_count.load(), 0u);  // 6 clients vs 1 slot: collisions
  EXPECT_EQ(service->Stats().net_busy_rejections, busy_count.load());
}

TEST(NetProtocolTest, PipelinedBusyRetriesRecover) {
  ServiceConfig cfg;
  cfg.max_inflight = 1;
  cfg.max_queue = 0;
  auto service = MakeServiceWithTable(5000, cfg);
  ServerConfig net_cfg;
  net_cfg.io_threads = 4;
  auto server = Server::Start(service, net_cfg).ValueOrDie();

  std::vector<std::thread> clients;
  std::atomic<uint64_t> verified{0};
  for (int t = 0; t < 3; ++t) {
    clients.emplace_back([&, t] {
      auto client = Client::Connect("127.0.0.1", server->port()).ValueOrDie();
      PreparedReply prep =
          client->Prepare("SELECT name FROM people WHERE id = ?").ValueOrDie();
      std::vector<std::vector<Value>> burst;
      for (int64_t i = 0; i < 40; ++i) {
        burst.push_back({Value(int64_t{t} * 100 + i)});
      }
      // Generous retry budget: under 1-slot admission every request
      // eventually lands, and replies stay aligned with param sets.
      Result<std::vector<RowsReply>> replies =
          client->ExecutePipelined(prep.handle, burst, /*busy_retries=*/200);
      ASSERT_TRUE(replies.ok()) << replies.status().ToString();
      ASSERT_EQ(replies->size(), burst.size());
      for (size_t i = 0; i < replies->size(); ++i) {
        ASSERT_EQ((*replies)[i].rows.size(), 1u);
        ASSERT_EQ((*replies)[i].rows[0][0].string_value(),
                  "n" + std::to_string(t * 100 + static_cast<int64_t>(i)));
        verified.fetch_add(1, std::memory_order_relaxed);
      }
    });
  }
  for (auto& c : clients) c.join();
  EXPECT_EQ(verified.load(), 120u);
}

}  // namespace
}  // namespace net
}  // namespace idf
