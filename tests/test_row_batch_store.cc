// Unit tests for RowBatchStore: pointer addressing, batch rollover,
// watermarks, capacity limits.
#include "storage/row_batch_store.h"

#include <gtest/gtest.h>

namespace idf {
namespace {

SchemaPtr KvSchema() {
  return Schema::Make({{"k", TypeId::kInt64, false}, {"v", TypeId::kString, true}});
}

Row KvRow(int64_t k, const std::string& v) { return {Value(k), Value(v)}; }

TEST(RowBatchStoreTest, AppendReturnsDereferenceablePointer) {
  RowBatchStore store(4096, 1024);
  SchemaPtr schema = KvSchema();
  auto ptr = store.AppendRow(*schema, KvRow(7, "seven"), PackedPointer::Null(), 0);
  ASSERT_TRUE(ptr.ok());
  EXPECT_EQ(DecodeRow(store.PayloadAt(*ptr), *schema), KvRow(7, "seven"));
  EXPECT_TRUE(store.BackPointerAt(*ptr).is_null());
  EXPECT_EQ(store.num_rows(), 1u);
}

TEST(RowBatchStoreTest, BackPointerAndPrevSizeArePreserved) {
  RowBatchStore store(4096, 1024);
  SchemaPtr schema = KvSchema();
  auto first = store.AppendRow(*schema, KvRow(1, "a"), PackedPointer::Null(), 0);
  ASSERT_TRUE(first.ok());
  uint32_t first_size = EncodedRowSize(store.PayloadAt(*first), *schema);
  auto second = store.AppendRow(*schema, KvRow(1, "bb"), *first, first_size);
  ASSERT_TRUE(second.ok());
  EXPECT_EQ(store.BackPointerAt(*second), *first);
  EXPECT_EQ(second->prev_size(), first_size);
}

TEST(RowBatchStoreTest, RollsOverToNewBatches) {
  RowBatchStore store(256, 128);
  SchemaPtr schema = KvSchema();
  for (int i = 0; i < 100; ++i) {
    ASSERT_TRUE(
        store.AppendRow(*schema, KvRow(i, "value"), PackedPointer::Null(), 0).ok());
  }
  EXPECT_GT(store.num_batches(), 1u);
  EXPECT_EQ(store.num_rows(), 100u);
}

TEST(RowBatchStoreTest, PointersValidAcrossBatches) {
  RowBatchStore store(256, 128);
  SchemaPtr schema = KvSchema();
  std::vector<PackedPointer> ptrs;
  for (int i = 0; i < 100; ++i) {
    auto p = store.AppendRow(*schema, KvRow(i, "v" + std::to_string(i)),
                             PackedPointer::Null(), 0);
    ASSERT_TRUE(p.ok());
    ptrs.push_back(*p);
  }
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(DecodeRow(store.PayloadAt(ptrs[static_cast<size_t>(i)]), *schema),
              KvRow(i, "v" + std::to_string(i)));
  }
}

TEST(RowBatchStoreTest, RejectsOversizedRow) {
  RowBatchStore store(4096, 64);
  SchemaPtr schema = KvSchema();
  auto r = store.AppendRow(*schema, KvRow(1, std::string(200, 'x')),
                           PackedPointer::Null(), 0);
  EXPECT_EQ(r.status().code(), StatusCode::kCapacityError);
}

TEST(RowBatchStoreTest, DirectoryCapacityError) {
  RowBatchStore store(64, 48, /*max_batches=*/2);
  SchemaPtr schema = KvSchema();
  Status last = Status::OK();
  int appended = 0;
  for (int i = 0; i < 100; ++i) {
    Status st =
        store.AppendRow(*schema, KvRow(i, "x"), PackedPointer::Null(), 0).status();
    if (!st.ok()) {
      last = st;
      break;
    }
    ++appended;
  }
  EXPECT_EQ(last.code(), StatusCode::kCapacityError);
  EXPECT_GT(appended, 0);
  EXPECT_LE(store.num_batches(), 2u);
}

TEST(RowBatchStoreTest, WatermarkTracksAppends) {
  RowBatchStore store(4096, 1024);
  SchemaPtr schema = KvSchema();
  StoreWatermark w0 = store.Watermark();
  EXPECT_EQ(w0.num_batches, 0u);
  EXPECT_EQ(w0.num_rows, 0u);
  ASSERT_TRUE(
      store.AppendRow(*schema, KvRow(1, "a"), PackedPointer::Null(), 0).ok());
  StoreWatermark w1 = store.Watermark();
  EXPECT_EQ(w1.num_batches, 1u);
  EXPECT_EQ(w1.num_rows, 1u);
  EXPECT_GT(w1.last_batch_bytes, 0u);
  ASSERT_TRUE(
      store.AppendRow(*schema, KvRow(2, "b"), PackedPointer::Null(), 0).ok());
  StoreWatermark w2 = store.Watermark();
  EXPECT_GT(w2.last_batch_bytes, w1.last_batch_bytes);
}

TEST(RowBatchStoreTest, UsedAndAllocatedBytes) {
  RowBatchStore store(1024, 512);
  SchemaPtr schema = KvSchema();
  EXPECT_EQ(store.allocated_bytes(), 0u);
  ASSERT_TRUE(
      store.AppendRow(*schema, KvRow(1, "a"), PackedPointer::Null(), 0).ok());
  EXPECT_EQ(store.allocated_bytes(), 1024u);
  EXPECT_GT(store.used_bytes(), 0u);
  EXPECT_LE(store.used_bytes(), store.allocated_bytes());
}

}  // namespace
}  // namespace idf
