// Tests for LEFT OUTER JOIN semantics across all physical join strategies
// and the SQL front-end.
#include <gtest/gtest.h>

#include "indexed/indexed_dataframe.h"
#include "sql/physical_operators.h"
#include "sql/session.h"

namespace idf {
namespace {

class OuterJoinTest : public ::testing::Test {
 protected:
  void SetUp() override {
    EngineConfig cfg;
    cfg.num_partitions = 4;
    cfg.num_threads = 2;
    session_ = Session::Make(cfg).ValueOrDie();
    auto order_schema = Schema::Make({{"oid", TypeId::kInt64, false},
                                      {"customer", TypeId::kInt64, true}});
    RowVec orders = {
        {Value(int64_t{1}), Value(int64_t{10})},
        {Value(int64_t{2}), Value(int64_t{20})},
        {Value(int64_t{3}), Value(int64_t{99})},  // no matching customer
        {Value(int64_t{4}), Value::Null()},       // null key
        {Value(int64_t{5}), Value(int64_t{10})},
    };
    orders_ = session_->CreateDataFrame(order_schema, orders, "orders")
                  .ValueOrDie();
    auto customer_schema = Schema::Make({{"cid", TypeId::kInt64, false},
                                         {"cname", TypeId::kString, false}});
    RowVec customers = {
        {Value(int64_t{10}), Value("alice")},
        {Value(int64_t{20}), Value("bob")},
        {Value(int64_t{30}), Value("carol")},  // never referenced
    };
    customers_ = session_->CreateDataFrame(customer_schema, customers,
                                           "customers")
                     .ValueOrDie();
    ASSERT_TRUE(session_->RegisterTable("orders", orders_).ok());
    ASSERT_TRUE(session_->RegisterTable("customers", customers_).ok());
  }

  /// Expected left-outer result over the fixture, canonically sorted.
  RowVec Expected() {
    RowVec out = {
        {Value(int64_t{1}), Value(int64_t{10}), Value(int64_t{10}),
         Value("alice")},
        {Value(int64_t{2}), Value(int64_t{20}), Value(int64_t{20}), Value("bob")},
        {Value(int64_t{3}), Value(int64_t{99}), Value::Null(), Value::Null()},
        {Value(int64_t{4}), Value::Null(), Value::Null(), Value::Null()},
        {Value(int64_t{5}), Value(int64_t{10}), Value(int64_t{10}),
         Value("alice")},
    };
    SortRows(&out);
    return out;
  }

  SessionPtr session_;
  DataFrame orders_;
  DataFrame customers_;
};

TEST_F(OuterJoinTest, ApiLeftOuterJoin) {
  auto joined = orders_.Join(customers_, "customer", "cid",
                             JoinType::kLeftOuter)
                    .ValueOrDie();
  RowVec rows = joined.Collect().ValueOrDie();
  SortRows(&rows);
  EXPECT_EQ(rows, Expected());
}

TEST_F(OuterJoinTest, RightColumnsBecomeNullable) {
  auto joined =
      orders_.Join(customers_, "customer", "cid", JoinType::kLeftOuter)
          .ValueOrDie();
  auto schema = joined.schema().ValueOrDie();
  EXPECT_TRUE(schema->field(2).nullable);  // cid was non-nullable
  EXPECT_TRUE(schema->field(3).nullable);
}

TEST_F(OuterJoinTest, AllThreeStrategiesAgree) {
  auto run = [&](PhysicalOpPtr op) {
    RowVec rows = CollectRows(op->Execute(session_->exec()).ValueOrDie());
    SortRows(&rows);
    return rows;
  };
  auto plan = orders_.Join(customers_, "customer", "cid", JoinType::kLeftOuter)
                  .ValueOrDie()
                  .plan();
  auto analyzed = session_->OptimizeOnly(plan).ValueOrDie();
  const auto* join = static_cast<const JoinNode*>(analyzed.get());
  ASSERT_EQ(analyzed->kind(), PlanKind::kJoin);
  auto left_op = session_->PlanQuery(join->left()).ValueOrDie();
  auto right_op = session_->PlanQuery(join->right()).ValueOrDie();

  auto shj = std::make_shared<ShuffledHashJoinOp>(
      left_op, right_op, join->left_key(), join->right_key(),
      analyzed->output_schema(), JoinType::kLeftOuter);
  auto smj = std::make_shared<SortMergeJoinOp>(
      left_op, right_op, join->left_key(), join->right_key(),
      analyzed->output_schema(), JoinType::kLeftOuter);
  auto bhj = std::make_shared<BroadcastHashJoinOp>(
      left_op, right_op, join->left_key(), join->right_key(),
      /*broadcast_left=*/false, analyzed->output_schema(),
      JoinType::kLeftOuter);
  EXPECT_EQ(run(shj), Expected());
  EXPECT_EQ(run(smj), Expected());
  EXPECT_EQ(run(bhj), Expected());
}

TEST_F(OuterJoinTest, BroadcastLeftOuterRejectsBroadcastingLeft) {
  auto plan = orders_.Join(customers_, "customer", "cid", JoinType::kLeftOuter)
                  .ValueOrDie()
                  .plan();
  auto analyzed = session_->OptimizeOnly(plan).ValueOrDie();
  const auto* join = static_cast<const JoinNode*>(analyzed.get());
  auto left_op = session_->PlanQuery(join->left()).ValueOrDie();
  auto right_op = session_->PlanQuery(join->right()).ValueOrDie();
  auto bad = std::make_shared<BroadcastHashJoinOp>(
      left_op, right_op, join->left_key(), join->right_key(),
      /*broadcast_left=*/true, analyzed->output_schema(), JoinType::kLeftOuter);
  EXPECT_TRUE(bad->Execute(session_->exec()).status().IsInternal());
}

TEST_F(OuterJoinTest, SqlLeftJoin) {
  auto df = session_
                ->Sql("SELECT o.oid, o.customer, c.cid, c.cname FROM orders o "
                      "LEFT JOIN customers c ON o.customer = c.cid")
                .ValueOrDie();
  RowVec rows = df.Collect().ValueOrDie();
  SortRows(&rows);
  EXPECT_EQ(rows, Expected());
}

TEST_F(OuterJoinTest, SqlLeftOuterJoinKeywordVariant) {
  auto a = session_
               ->Sql("SELECT * FROM orders o LEFT OUTER JOIN customers c ON "
                     "o.customer = c.cid")
               .ValueOrDie()
               .Collect()
               .ValueOrDie();
  auto b = session_
               ->Sql("SELECT * FROM orders o LEFT JOIN customers c ON "
                     "o.customer = c.cid")
               .ValueOrDie()
               .Collect()
               .ValueOrDie();
  SortRows(&a);
  SortRows(&b);
  EXPECT_EQ(a, b);
}

TEST_F(OuterJoinTest, SqlInnerJoinKeyword) {
  auto rows = session_
                  ->Sql("SELECT o.oid FROM orders o INNER JOIN customers c ON "
                        "o.customer = c.cid")
                  .ValueOrDie()
                  .Collect()
                  .ValueOrDie();
  EXPECT_EQ(rows.size(), 3u);  // orders 1, 2, 5
}

TEST_F(OuterJoinTest, LeftPredicatePushedRightPredicateKept) {
  // WHERE o.oid < 4 (left side) is pushable; WHERE c.cname = 'alice'
  // (right side) must NOT be pushed below a left-outer join.
  auto df = session_
                ->Sql("SELECT o.oid, c.cname FROM orders o LEFT JOIN "
                      "customers c ON o.customer = c.cid WHERE o.oid < 4")
                .ValueOrDie();
  RowVec rows = df.Collect().ValueOrDie();
  EXPECT_EQ(rows.size(), 3u);

  auto filtered = session_
                      ->Sql("SELECT o.oid, c.cname FROM orders o LEFT JOIN "
                            "customers c ON o.customer = c.cid WHERE c.cname "
                            "= 'alice'")
                      .ValueOrDie();
  RowVec alice_rows = filtered.Collect().ValueOrDie();
  // Filtering after the outer join keeps only real alice matches.
  EXPECT_EQ(alice_rows.size(), 2u);
  for (const Row& row : alice_rows) {
    EXPECT_EQ(row[1], Value("alice"));
  }
}

TEST_F(OuterJoinTest, IndexedJoinRuleSkipsOuterJoins) {
  auto indexed =
      IndexedDataFrame::CreateIndex(customers_, "cid", "cust_idx").ValueOrDie();
  auto joined = orders_.Join(indexed.ToDataFrame(), "customer", "cid",
                             JoinType::kLeftOuter)
                    .ValueOrDie();
  std::string plan = joined.Explain().ValueOrDie();
  EXPECT_EQ(plan.find("IndexedJoin"), std::string::npos);
  RowVec rows = joined.Collect().ValueOrDie();
  SortRows(&rows);
  EXPECT_EQ(rows, Expected());
}

TEST_F(OuterJoinTest, EveryLeftRowAppearsAtLeastOnce) {
  // Property: the left side's keys all survive a left-outer join.
  auto joined = orders_.Join(customers_, "customer", "cid",
                             JoinType::kLeftOuter)
                    .ValueOrDie();
  RowVec rows = joined.Collect().ValueOrDie();
  std::set<int64_t> oids;
  for (const Row& row : rows) oids.insert(row[0].AsInt64());
  EXPECT_EQ(oids.size(), 5u);
}

}  // namespace
}  // namespace idf
