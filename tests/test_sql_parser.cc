// Tests for the SQL front-end: parsing, binding, execution equivalence
// with the DataFrame API, and transparent indexed execution of SQL over
// registered Indexed DataFrames.
#include "sql/sql_parser.h"

#include <gtest/gtest.h>

#include "indexed/indexed_dataframe.h"
#include "sql/session.h"

namespace idf {
namespace {

class SqlParserTest : public ::testing::Test {
 protected:
  void SetUp() override {
    EngineConfig cfg;
    cfg.num_partitions = 4;
    cfg.num_threads = 2;
    session_ = Session::Make(cfg).ValueOrDie();

    auto people_schema = Schema::Make({{"id", TypeId::kInt64, false},
                                       {"name", TypeId::kString, false},
                                       {"age", TypeId::kInt64, true},
                                       {"city_id", TypeId::kInt64, true}});
    RowVec people;
    for (int64_t i = 0; i < 100; ++i) {
      people.push_back({Value(i), Value("p" + std::to_string(i)),
                        Value(20 + i % 50), Value(i % 10)});
    }
    auto people_df =
        session_->CreateDataFrame(people_schema, people, "people").ValueOrDie();
    ASSERT_TRUE(session_->RegisterTable("people", people_df).ok());

    auto city_schema = Schema::Make({{"cid", TypeId::kInt64, false},
                                     {"city", TypeId::kString, false}});
    RowVec cities;
    for (int64_t c = 0; c < 10; ++c) {
      cities.push_back({Value(c), Value("city" + std::to_string(c))});
    }
    auto city_df =
        session_->CreateDataFrame(city_schema, cities, "cities").ValueOrDie();
    ASSERT_TRUE(session_->RegisterTable("cities", city_df).ok());
  }

  RowVec Run(const std::string& sql) {
    auto df = session_->Sql(sql);
    EXPECT_TRUE(df.ok()) << sql << " -> " << df.status().ToString();
    auto rows = df->Collect();
    EXPECT_TRUE(rows.ok()) << sql << " -> " << rows.status().ToString();
    return std::move(rows).ValueOrDie();
  }

  Status Fails(const std::string& sql) {
    auto df = session_->Sql(sql);
    if (!df.ok()) return df.status();
    auto rows = df->Collect();
    return rows.status();
  }

  SessionPtr session_;
};

TEST_F(SqlParserTest, SelectStar) {
  RowVec rows = Run("SELECT * FROM people");
  EXPECT_EQ(rows.size(), 100u);
  ASSERT_EQ(rows[0].size(), 4u);
}

TEST_F(SqlParserTest, SelectColumns) {
  RowVec rows = Run("SELECT name, age FROM people");
  ASSERT_EQ(rows.size(), 100u);
  ASSERT_EQ(rows[0].size(), 2u);
  EXPECT_TRUE(rows[0][0].is_string());
}

TEST_F(SqlParserTest, SchemaNamesFromAliases) {
  auto df = session_->Sql("SELECT age * 2 AS doubled, name FROM people")
                .ValueOrDie();
  auto schema = df.schema().ValueOrDie();
  EXPECT_EQ(schema->field(0).name, "doubled");
  EXPECT_EQ(schema->field(1).name, "name");
}

TEST_F(SqlParserTest, WhereEquality) {
  RowVec rows = Run("SELECT id FROM people WHERE id = 42");
  ASSERT_EQ(rows.size(), 1u);
  EXPECT_EQ(rows[0][0], Value(int64_t{42}));
}

TEST_F(SqlParserTest, WhereComparisonsAndLogic) {
  EXPECT_EQ(Run("SELECT id FROM people WHERE id < 10").size(), 10u);
  EXPECT_EQ(Run("SELECT id FROM people WHERE id <= 10").size(), 11u);
  EXPECT_EQ(Run("SELECT id FROM people WHERE id >= 90 AND id != 95").size(), 9u);
  EXPECT_EQ(Run("SELECT id FROM people WHERE id < 2 OR id > 97").size(), 4u);
  EXPECT_EQ(Run("SELECT id FROM people WHERE NOT id < 50").size(), 50u);
  EXPECT_EQ(Run("SELECT id FROM people WHERE id <> 0").size(), 99u);
}

TEST_F(SqlParserTest, WhereStringLiteral) {
  RowVec rows = Run("SELECT id FROM people WHERE name = 'p7'");
  ASSERT_EQ(rows.size(), 1u);
  EXPECT_EQ(rows[0][0], Value(int64_t{7}));
}

TEST_F(SqlParserTest, StringEscapedQuote) {
  auto schema = Schema::Make({{"s", TypeId::kString, false}});
  auto df = session_->CreateDataFrame(schema, {{Value("it's")}}, "q").ValueOrDie();
  ASSERT_TRUE(session_->RegisterTable("q", df).ok());
  RowVec rows = Run("SELECT s FROM q WHERE s = 'it''s'");
  EXPECT_EQ(rows.size(), 1u);
}

TEST_F(SqlParserTest, BetweenDesugars) {
  EXPECT_EQ(Run("SELECT id FROM people WHERE id BETWEEN 10 AND 19").size(), 10u);
}

TEST_F(SqlParserTest, InList) {
  EXPECT_EQ(Run("SELECT id FROM people WHERE id IN (1, 5, 9, 500)").size(), 3u);
  EXPECT_EQ(Run("SELECT id FROM people WHERE id NOT IN (1, 5)").size(), 98u);
}

TEST_F(SqlParserTest, UnionAllConcatenates) {
  RowVec rows = Run(
      "SELECT id FROM people WHERE id < 3 UNION ALL SELECT id FROM people "
      "WHERE id >= 97");
  EXPECT_EQ(rows.size(), 6u);
}

TEST_F(SqlParserTest, UnionAllWithOrderByAndLimitAppliesToWhole) {
  RowVec rows = Run(
      "SELECT id FROM people WHERE id < 3 UNION ALL SELECT id FROM people "
      "WHERE id >= 97 ORDER BY id DESC LIMIT 4");
  ASSERT_EQ(rows.size(), 4u);
  EXPECT_EQ(rows[0][0], Value(int64_t{99}));
  EXPECT_EQ(rows[3][0], Value(int64_t{2}));
}

TEST_F(SqlParserTest, UnionAllKeepsDuplicates) {
  RowVec rows = Run(
      "SELECT id FROM people WHERE id = 5 UNION ALL SELECT id FROM people "
      "WHERE id = 5");
  EXPECT_EQ(rows.size(), 2u);
}

TEST_F(SqlParserTest, UnionAllTypeMismatchRejected) {
  EXPECT_FALSE(
      Fails("SELECT id FROM people UNION ALL SELECT name FROM people").ok());
  EXPECT_FALSE(
      Fails("SELECT id FROM people UNION ALL SELECT id, age FROM people").ok());
  // Plain UNION (distinct) is unsupported; the error should say so.
  EXPECT_FALSE(
      Fails("SELECT id FROM people UNION SELECT id FROM people").ok());
}

TEST_F(SqlParserTest, DataFrameUnionAllApi) {
  auto people = session_->Table("people").ValueOrDie();
  auto low = people.Filter(Lt(Col("id"), Lit(Value(int64_t{10})))).ValueOrDie();
  auto high = people.Filter(Ge(Col("id"), Lit(Value(int64_t{95})))).ValueOrDie();
  auto u = low.UnionAll(high).ValueOrDie();
  EXPECT_EQ(u.Count().ValueOrDie(), 15u);
  // Unions compose with aggregation.
  auto agg = u.Aggregate({}, {CountStar("n")}).ValueOrDie();
  EXPECT_EQ(agg.Collect().ValueOrDie()[0][0], Value(int64_t{15}));
}

TEST_F(SqlParserTest, LikePatterns) {
  EXPECT_EQ(Run("SELECT id FROM people WHERE name LIKE 'p1%'").size(),
            11u);  // p1, p10..p19
  EXPECT_EQ(Run("SELECT id FROM people WHERE name LIKE 'p_'").size(), 10u);
  EXPECT_EQ(Run("SELECT id FROM people WHERE name NOT LIKE 'p%'").size(), 0u);
  EXPECT_FALSE(Fails("SELECT id FROM people WHERE name LIKE 5").ok());
}

TEST_F(SqlParserTest, IsNullAndIsNotNull) {
  auto schema = Schema::Make({{"v", TypeId::kInt64, true}});
  auto df = session_
                ->CreateDataFrame(schema, {{Value(int64_t{1})}, {Value::Null()}},
                                  "nullable")
                .ValueOrDie();
  ASSERT_TRUE(session_->RegisterTable("nullable", df).ok());
  EXPECT_EQ(Run("SELECT v FROM nullable WHERE v IS NULL").size(), 1u);
  EXPECT_EQ(Run("SELECT v FROM nullable WHERE v IS NOT NULL").size(), 1u);
}

TEST_F(SqlParserTest, ArithmeticInSelectAndWhere) {
  RowVec rows = Run("SELECT id + 1000 AS shifted FROM people WHERE id * 2 = 10");
  ASSERT_EQ(rows.size(), 1u);
  EXPECT_EQ(rows[0][0], Value(int64_t{1005}));
}

TEST_F(SqlParserTest, NegativeLiterals) {
  EXPECT_EQ(Run("SELECT id FROM people WHERE id > -5").size(), 100u);
  RowVec rows = Run("SELECT -3 AS neg FROM people LIMIT 1");
  EXPECT_EQ(rows[0][0], Value(int64_t{-3}));
}

TEST_F(SqlParserTest, OrderByAndLimit) {
  RowVec rows = Run("SELECT id FROM people ORDER BY id DESC LIMIT 3");
  ASSERT_EQ(rows.size(), 3u);
  EXPECT_EQ(rows[0][0], Value(int64_t{99}));
  EXPECT_EQ(rows[2][0], Value(int64_t{97}));
}

TEST_F(SqlParserTest, OrderByColumnNotInProjection) {
  RowVec rows = Run("SELECT name FROM people ORDER BY id ASC LIMIT 2");
  ASSERT_EQ(rows.size(), 2u);
  EXPECT_EQ(rows[0][0], Value("p0"));
  EXPECT_EQ(rows[1][0], Value("p1"));
}

TEST_F(SqlParserTest, GlobalAggregates) {
  RowVec rows = Run("SELECT COUNT(*), SUM(age), MIN(id), MAX(id), AVG(age) "
                    "FROM people");
  ASSERT_EQ(rows.size(), 1u);
  EXPECT_EQ(rows[0][0], Value(int64_t{100}));
  EXPECT_EQ(rows[0][2], Value(int64_t{0}));
  EXPECT_EQ(rows[0][3], Value(int64_t{99}));
}

TEST_F(SqlParserTest, GroupByWithAggregates) {
  RowVec rows = Run(
      "SELECT city_id, COUNT(*) AS n FROM people GROUP BY city_id ORDER BY "
      "city_id");
  ASSERT_EQ(rows.size(), 10u);
  for (int64_t c = 0; c < 10; ++c) {
    EXPECT_EQ(rows[static_cast<size_t>(c)][0], Value(c));
    EXPECT_EQ(rows[static_cast<size_t>(c)][1], Value(int64_t{10}));
  }
}

TEST_F(SqlParserTest, GroupBySelectItemMustBeGrouped) {
  Status st = Fails("SELECT name, COUNT(*) FROM people GROUP BY city_id");
  EXPECT_FALSE(st.ok());
  EXPECT_NE(st.message().find("GROUP BY"), std::string::npos);
}

TEST_F(SqlParserTest, Having) {
  // Only city 3 gets extra members via a second registered view.
  RowVec rows = Run(
      "SELECT city_id, COUNT(*) AS n FROM people WHERE id < 31 GROUP BY "
      "city_id HAVING COUNT(*) > 3 ORDER BY city_id");
  // ids 0..30: city 0 has 4 (0,10,20,30); cities 1..9 have 3 each.
  ASSERT_EQ(rows.size(), 1u);
  EXPECT_EQ(rows[0][0], Value(int64_t{0}));
  EXPECT_EQ(rows[0][1], Value(int64_t{4}));
}

TEST_F(SqlParserTest, HavingReusesSelectAggregate) {
  RowVec rows = Run(
      "SELECT city_id, COUNT(*) AS n FROM people GROUP BY city_id HAVING n "
      "= 10 ORDER BY city_id");
  EXPECT_EQ(rows.size(), 10u);
  ASSERT_EQ(rows[0].size(), 2u);  // hidden aggregates are projected away
}

TEST_F(SqlParserTest, Distinct) {
  RowVec rows = Run("SELECT DISTINCT city_id FROM people ORDER BY city_id");
  ASSERT_EQ(rows.size(), 10u);
  EXPECT_EQ(rows[0][0], Value(int64_t{0}));
  EXPECT_EQ(rows[9][0], Value(int64_t{9}));
}

TEST_F(SqlParserTest, JoinWithQualifiedKeys) {
  RowVec rows = Run(
      "SELECT p.name, c.city FROM people p JOIN cities c ON p.city_id = "
      "c.cid WHERE p.id = 17");
  ASSERT_EQ(rows.size(), 1u);
  EXPECT_EQ(rows[0][0], Value("p17"));
  EXPECT_EQ(rows[0][1], Value("city7"));
}

TEST_F(SqlParserTest, JoinConditionOrderIrrelevant) {
  RowVec a = Run(
      "SELECT p.id FROM people p JOIN cities c ON p.city_id = c.cid");
  RowVec b = Run(
      "SELECT p.id FROM people p JOIN cities c ON c.cid = p.city_id");
  SortRows(&a);
  SortRows(&b);
  EXPECT_EQ(a, b);
  EXPECT_EQ(a.size(), 100u);
}

TEST_F(SqlParserTest, ThreeWayJoin) {
  auto extra_schema = Schema::Make({{"city_ref", TypeId::kInt64, false},
                                    {"population", TypeId::kInt64, false}});
  RowVec extra;
  for (int64_t c = 0; c < 10; ++c) extra.push_back({Value(c), Value(c * 1000)});
  auto df = session_->CreateDataFrame(extra_schema, extra, "stats").ValueOrDie();
  ASSERT_TRUE(session_->RegisterTable("stats", df).ok());
  RowVec rows = Run(
      "SELECT p.name, c.city, s.population FROM people p "
      "JOIN cities c ON p.city_id = c.cid "
      "JOIN stats s ON c.cid = s.city_ref WHERE p.id = 5");
  ASSERT_EQ(rows.size(), 1u);
  EXPECT_EQ(rows[0][2], Value(int64_t{5000}));
}

TEST_F(SqlParserTest, QualifiedRefsDisambiguateDuplicateNames) {
  // Self-join: both sides expose "id"; qualification picks the right one.
  RowVec rows = Run(
      "SELECT a.id, b.id FROM people a JOIN people b ON a.city_id = b.id "
      "WHERE a.id = 12");
  ASSERT_EQ(rows.size(), 1u);
  EXPECT_EQ(rows[0][0], Value(int64_t{12}));
  EXPECT_EQ(rows[0][1], Value(int64_t{2}));  // city_id of 12 is 2
}

TEST_F(SqlParserTest, MatchesDataFrameApiResults) {
  RowVec via_sql = Run(
      "SELECT city_id, COUNT(*) AS n, SUM(age) AS total FROM people WHERE id "
      ">= 20 GROUP BY city_id");
  auto people = session_->Table("people").ValueOrDie();
  RowVec via_api = people.Filter(Ge(Col("id"), Lit(Value(int64_t{20}))))
                       .ValueOrDie()
                       .GroupByAgg({"city_id"}, {CountStar("n"),
                                                 SumOf(Col("age"), "total")})
                       .ValueOrDie()
                       .Collect()
                       .ValueOrDie();
  SortRows(&via_sql);
  SortRows(&via_api);
  EXPECT_EQ(via_sql, via_api);
}

TEST_F(SqlParserTest, SqlOverIndexedDataFrameUsesIndex) {
  auto people = session_->Table("people").ValueOrDie();
  auto indexed =
      IndexedDataFrame::CreateIndex(people, "id", "people_idx").ValueOrDie();
  ASSERT_TRUE(
      session_->RegisterTable("people_indexed", indexed.ToDataFrame()).ok());
  auto df =
      session_->Sql("SELECT name FROM people_indexed WHERE id = 33").ValueOrDie();
  std::string plan = df.Explain().ValueOrDie();
  EXPECT_NE(plan.find("IndexedLookup"), std::string::npos);
  RowVec rows = df.Collect().ValueOrDie();
  ASSERT_EQ(rows.size(), 1u);
  EXPECT_EQ(rows[0][0], Value("p33"));
}

TEST_F(SqlParserTest, SqlFilterReachesIndexThroughJoin) {
  // WHERE p.id = 33 sits above the join in the parsed plan; predicate
  // pushdown moves it onto the IndexedScan, where the indexed filter rule
  // turns it into a point lookup — SQL-to-index, end to end.
  auto people = session_->Table("people").ValueOrDie();
  auto indexed =
      IndexedDataFrame::CreateIndex(people, "id", "people_idx2").ValueOrDie();
  ASSERT_TRUE(
      session_->RegisterTable("ipeople", indexed.ToDataFrame()).ok());
  auto df = session_
                ->Sql("SELECT p.name, c.city FROM ipeople p JOIN cities c ON "
                      "p.city_id = c.cid WHERE p.id = 33")
                .ValueOrDie();
  std::string plan = df.Explain().ValueOrDie();
  EXPECT_NE(plan.find("IndexedLookup"), std::string::npos) << plan;
  RowVec rows = df.Collect().ValueOrDie();
  ASSERT_EQ(rows.size(), 1u);
  EXPECT_EQ(rows[0][0], Value("p33"));
  EXPECT_EQ(rows[0][1], Value("city3"));
}

TEST_F(SqlParserTest, SqlInListOverIndexBecomesMultiKeyLookup) {
  auto people = session_->Table("people").ValueOrDie();
  auto indexed =
      IndexedDataFrame::CreateIndex(people, "id", "people_in_idx").ValueOrDie();
  ASSERT_TRUE(session_->RegisterTable("ip", indexed.ToDataFrame()).ok());
  auto df = session_->Sql("SELECT name FROM ip WHERE id IN (3, 7, 11, 500)")
                .ValueOrDie();
  std::string plan = df.Explain().ValueOrDie();
  EXPECT_NE(plan.find("IndexedLookup"), std::string::npos) << plan;
  EXPECT_EQ(df.Count().ValueOrDie(), 3u);  // 500 misses
}

TEST_F(SqlParserTest, BatchOrderingLetsPushdownPrecedeIndexedRewrites) {
  // Two indexed tables joined on one index with a filter on the other: the
  // generic pushdown batch must run before the extension batch so the plan
  // becomes IndexedJoin over IndexedLookup (not a post-join filter).
  auto people = session_->Table("people").ValueOrDie();
  auto by_id =
      IndexedDataFrame::CreateIndex(people, "id", "p_by_id").ValueOrDie();
  auto by_city =
      IndexedDataFrame::CreateIndex(people, "city_id", "p_by_city").ValueOrDie();
  ASSERT_TRUE(session_->RegisterTable("p_by_id", by_id.ToDataFrame()).ok());
  ASSERT_TRUE(
      session_->RegisterTable("p_by_city", by_city.ToDataFrame()).ok());
  auto df = session_
                ->Sql("SELECT a.name, b.name FROM p_by_city a JOIN p_by_id b "
                      "ON a.id = b.id WHERE a.city_id = 4")
                .ValueOrDie();
  std::string plan = df.Explain().ValueOrDie();
  EXPECT_NE(plan.find("IndexedLookup [p_by_city] key=4"), std::string::npos)
      << plan;
  EXPECT_NE(plan.find("IndexedJoin [p_by_id]"), std::string::npos) << plan;
  RowVec rows = df.Collect().ValueOrDie();
  EXPECT_EQ(rows.size(), 10u);  // city 4 has ids 4, 14, ..., 94
  for (const Row& row : rows) EXPECT_EQ(row[0], row[1]);
}

TEST_F(SqlParserTest, KeywordsAreCaseInsensitive) {
  EXPECT_EQ(Run("select id from people where id = 1 order by id limit 5").size(),
            1u);
}

TEST_F(SqlParserTest, ErrorsAreDescriptive) {
  EXPECT_NE(Fails("SELECT").message().find("FROM"), std::string::npos);
  EXPECT_NE(Fails("SELECT * FROM nope").message().find("not registered"),
            std::string::npos);
  EXPECT_NE(Fails("SELECT zz FROM people").message().find("zz"),
            std::string::npos);
  EXPECT_FALSE(Fails("SELECT * FROM people WHERE").ok());
  EXPECT_FALSE(Fails("SELECT * FROM people LIMIT x").ok());
  EXPECT_FALSE(Fails("SELECT * FROM people trailing garbage (").ok());
  EXPECT_FALSE(Fails("SELECT id FROM people p JOIN cities c ON p.id = p.id").ok());
  EXPECT_FALSE(Fails("SELECT * FROM people WHERE name = 'unterminated").ok());
  EXPECT_FALSE(Fails("SELECT COUNT(*) FROM people HAVING 1 = 1 GROUP").ok());
}

TEST_F(SqlParserTest, SemanticErrorsFailAtSqlTime) {
  // Eager analysis: type mismatch is reported by Sql(), not Collect().
  auto df = session_->Sql("SELECT * FROM people WHERE name = 5");
  EXPECT_TRUE(df.status().IsTypeError());
}

TEST_F(SqlParserTest, DuplicateAliasRejected) {
  EXPECT_FALSE(
      Fails("SELECT * FROM people p JOIN cities p ON p.cid = p.cid").ok());
}

TEST_F(SqlParserTest, AggregateInWhereRejected) {
  EXPECT_FALSE(Fails("SELECT id FROM people WHERE COUNT(*) > 1").ok());
}

TEST_F(SqlParserTest, RegisterTableReplaces) {
  auto schema = Schema::Make({{"x", TypeId::kInt64, false}});
  auto df1 = session_->CreateDataFrame(schema, {{Value(int64_t{1})}}, "v")
                 .ValueOrDie();
  auto df2 = session_
                 ->CreateDataFrame(schema, {{Value(int64_t{1})},
                                            {Value(int64_t{2})}},
                                   "v")
                 .ValueOrDie();
  ASSERT_TRUE(session_->RegisterTable("view", df1).ok());
  EXPECT_EQ(Run("SELECT * FROM view").size(), 1u);
  ASSERT_TRUE(session_->RegisterTable("view", df2).ok());
  EXPECT_EQ(Run("SELECT * FROM view").size(), 2u);
}

TEST_F(SqlParserTest, TableNamesLists) {
  auto names = session_->TableNames();
  EXPECT_NE(std::find(names.begin(), names.end(), "people"), names.end());
  EXPECT_NE(std::find(names.begin(), names.end(), "cities"), names.end());
}

}  // namespace
}  // namespace idf
