// Unit tests for the analysis layer: name resolution, schema computation,
// and type checking across all plan node kinds.
#include "sql/analyzer.h"

#include <gtest/gtest.h>

namespace idf {
namespace {

RawTablePtr MakeTable(const std::string& name, SchemaPtr schema, RowVec rows) {
  auto t = std::make_shared<RawTable>();
  t->name = name;
  t->schema = std::move(schema);
  t->partitions.push_back(std::move(rows));
  return t;
}

SchemaPtr LeftSchema() {
  return Schema::Make({{"id", TypeId::kInt64, false},
                       {"name", TypeId::kString, true},
                       {"score", TypeId::kFloat64, true}});
}

SchemaPtr RightSchema() {
  return Schema::Make({{"ref", TypeId::kInt64, false},
                       {"tag", TypeId::kString, true}});
}

LogicalPlanPtr LeftScan() {
  return std::make_shared<ScanNode>(MakeTable("left", LeftSchema(), {}));
}

LogicalPlanPtr RightScan() {
  return std::make_shared<ScanNode>(MakeTable("right", RightSchema(), {}));
}

TEST(AnalyzerTest, ScanIsBornAnalyzed) {
  auto scan = LeftScan();
  EXPECT_TRUE(scan->analyzed());
  auto analyzed = Analyze(scan).ValueOrDie();
  EXPECT_EQ(analyzed.get(), scan.get());
}

TEST(AnalyzerTest, FilterBindsPredicateAndKeepsSchema) {
  auto plan = std::make_shared<FilterNode>(LeftScan(),
                                           Eq(Col("id"), Lit(Value(int64_t{1}))));
  EXPECT_FALSE(plan->analyzed());
  auto analyzed = Analyze(plan).ValueOrDie();
  EXPECT_TRUE(analyzed->analyzed());
  EXPECT_TRUE(analyzed->output_schema()->Equals(*LeftSchema()));
  const auto* filter = static_cast<const FilterNode*>(analyzed.get());
  EXPECT_FALSE(HasUnboundRefs(filter->predicate()));
}

TEST(AnalyzerTest, FilterUnknownColumnIsKeyError) {
  auto plan = std::make_shared<FilterNode>(LeftScan(),
                                           Eq(Col("zz"), Lit(Value(int64_t{1}))));
  EXPECT_TRUE(Analyze(plan).status().IsKeyError());
}

TEST(AnalyzerTest, FilterNonBooleanPredicateIsTypeError) {
  auto plan = std::make_shared<FilterNode>(LeftScan(), Add(Col("id"), Col("id")));
  EXPECT_TRUE(Analyze(plan).status().IsTypeError());
}

TEST(AnalyzerTest, ProjectComputesSchemaAndNames) {
  auto plan = std::make_shared<ProjectNode>(
      LeftScan(), std::vector<ExprPtr>{Col("name"), Add(Col("id"), Col("id"))},
      std::vector<std::string>{});
  auto analyzed = Analyze(plan).ValueOrDie();
  const Schema& s = *analyzed->output_schema();
  ASSERT_EQ(s.num_fields(), 2);
  EXPECT_EQ(s.field(0).name, "name");
  EXPECT_EQ(s.field(0).type, TypeId::kString);
  EXPECT_EQ(s.field(1).type, TypeId::kInt64);
  EXPECT_NE(s.field(1).name.find("+"), std::string::npos);  // derived name
}

TEST(AnalyzerTest, ProjectExplicitNames) {
  auto plan = std::make_shared<ProjectNode>(
      LeftScan(), std::vector<ExprPtr>{Col("id")},
      std::vector<std::string>{"renamed"});
  auto analyzed = Analyze(plan).ValueOrDie();
  EXPECT_EQ(analyzed->output_schema()->field(0).name, "renamed");
}

TEST(AnalyzerTest, ProjectNameArityMismatchFails) {
  auto plan = std::make_shared<ProjectNode>(
      LeftScan(), std::vector<ExprPtr>{Col("id"), Col("name")},
      std::vector<std::string>{"only_one"});
  EXPECT_TRUE(Analyze(plan).status().IsInvalidArgument());
}

TEST(AnalyzerTest, JoinConcatenatesSchemas) {
  auto plan = std::make_shared<JoinNode>(LeftScan(), RightScan(), Col("id"),
                                         Col("ref"));
  auto analyzed = Analyze(plan).ValueOrDie();
  const Schema& s = *analyzed->output_schema();
  ASSERT_EQ(s.num_fields(), 5);
  EXPECT_EQ(s.field(0).name, "id");
  EXPECT_EQ(s.field(3).name, "ref");
  const auto* join = static_cast<const JoinNode*>(analyzed.get());
  EXPECT_FALSE(HasUnboundRefs(join->left_key()));
  EXPECT_FALSE(HasUnboundRefs(join->right_key()));
}

TEST(AnalyzerTest, JoinKeysBindToTheirOwnSides) {
  // "ref" exists only on the right; binding it as the left key must fail.
  auto plan = std::make_shared<JoinNode>(LeftScan(), RightScan(), Col("ref"),
                                         Col("id"));
  EXPECT_TRUE(Analyze(plan).status().IsKeyError());
}

TEST(AnalyzerTest, JoinIncomparableKeyTypesFail) {
  auto plan = std::make_shared<JoinNode>(LeftScan(), RightScan(), Col("name"),
                                         Col("ref"));
  EXPECT_TRUE(Analyze(plan).status().IsTypeError());
}

TEST(AnalyzerTest, AggregateSchema) {
  std::vector<AggSpec> aggs;
  aggs.push_back(AggSpec{AggFn::kCountStar, nullptr, "cnt"});
  aggs.push_back(AggSpec{AggFn::kSum, Col("score"), "total"});
  aggs.push_back(AggSpec{AggFn::kAvg, Col("id"), ""});
  auto plan = std::make_shared<AggregateNode>(
      LeftScan(), std::vector<ExprPtr>{Col("name")},
      std::vector<std::string>{}, aggs);
  auto analyzed = Analyze(plan).ValueOrDie();
  const Schema& s = *analyzed->output_schema();
  ASSERT_EQ(s.num_fields(), 4);
  EXPECT_EQ(s.field(0).name, "name");
  EXPECT_EQ(s.field(1).name, "cnt");
  EXPECT_EQ(s.field(1).type, TypeId::kInt64);
  EXPECT_EQ(s.field(2).type, TypeId::kFloat64);  // sum over float64
  EXPECT_EQ(s.field(3).type, TypeId::kFloat64);  // avg
  EXPECT_FALSE(s.field(3).name.empty());          // derived name
}

TEST(AnalyzerTest, AggregateSumOverStringFails) {
  std::vector<AggSpec> aggs = {AggSpec{AggFn::kSum, Col("name"), "x"}};
  auto plan = std::make_shared<AggregateNode>(LeftScan(), std::vector<ExprPtr>{},
                                              std::vector<std::string>{}, aggs);
  EXPECT_TRUE(Analyze(plan).status().IsTypeError());
}

TEST(AnalyzerTest, AggregateMissingArgFails) {
  std::vector<AggSpec> aggs = {AggSpec{AggFn::kSum, nullptr, "x"}};
  auto plan = std::make_shared<AggregateNode>(LeftScan(), std::vector<ExprPtr>{},
                                              std::vector<std::string>{}, aggs);
  EXPECT_TRUE(Analyze(plan).status().IsInvalidArgument());
}

TEST(AnalyzerTest, SortAndLimitKeepChildSchema) {
  auto sort = std::make_shared<SortNode>(
      LeftScan(), std::vector<SortKey>{SortKey{Col("score"), false}});
  auto analyzed_sort = Analyze(sort).ValueOrDie();
  EXPECT_TRUE(analyzed_sort->output_schema()->Equals(*LeftSchema()));

  auto limit = std::make_shared<LimitNode>(LeftScan(), 5);
  auto analyzed_limit = Analyze(limit).ValueOrDie();
  EXPECT_TRUE(analyzed_limit->output_schema()->Equals(*LeftSchema()));
  EXPECT_EQ(static_cast<const LimitNode*>(analyzed_limit.get())->n(), 5u);
}

TEST(AnalyzerTest, SortUnknownKeyFails) {
  auto sort = std::make_shared<SortNode>(
      LeftScan(), std::vector<SortKey>{SortKey{Col("nope"), true}});
  EXPECT_TRUE(Analyze(sort).status().IsKeyError());
}

TEST(AnalyzerTest, NestedPlanAnalyzesBottomUp) {
  auto plan = std::make_shared<LimitNode>(
      std::make_shared<SortNode>(
          std::make_shared<FilterNode>(LeftScan(),
                                       Gt(Col("score"), Lit(Value(0.0)))),
          std::vector<SortKey>{SortKey{Col("id"), true}}),
      3);
  auto analyzed = Analyze(plan).ValueOrDie();
  EXPECT_TRUE(analyzed->analyzed());
  EXPECT_TRUE(analyzed->children()[0]->analyzed());
  EXPECT_TRUE(analyzed->children()[0]->children()[0]->analyzed());
}

TEST(AnalyzerTest, TreeStringRendersHierarchy) {
  auto plan = std::make_shared<FilterNode>(LeftScan(),
                                           Eq(Col("id"), Lit(Value(int64_t{1}))));
  auto analyzed = Analyze(LogicalPlanPtr(plan)).ValueOrDie();
  std::string s = analyzed->TreeString();
  EXPECT_NE(s.find("Filter"), std::string::npos);
  EXPECT_NE(s.find("  Scan"), std::string::npos);  // indented child
}

TEST(AnalyzerTest, DeriveColumnName) {
  EXPECT_EQ(DeriveColumnName(Col("abc")), "abc");
  EXPECT_NE(DeriveColumnName(Add(Col("a"), Col("b"))).find("+"),
            std::string::npos);
}

}  // namespace
}  // namespace idf
