// Interactive SQL shell over a generated SNB social graph — the "Users
// write SQL queries" entry point of the paper's Figure 1, with the Indexed
// DataFrame rewrites applied transparently.
//
//   Usage: ./sql_shell [scale_factor=0.5]
//
// Registered tables:
//   person, knows, post, comment, forum, forum_member     (cached, vanilla)
//   iperson, iknows, ipost_by_creator, ipost, icomment    (indexed)
//
// Commands:
//   <sql>;            run a SELECT (may span lines; terminated by ';')
//   explain <sql>;    show the optimized logical and physical plans
//   analyze <sql>;    run and show plans + wall time + engine metrics
//   tables            list registered tables
//   quit              exit
//
// Try, e.g.:
//   SELECT firstName, lastName FROM iperson WHERE id = 10012;
//   EXPLAIN SELECT p.firstName, k.person2Id FROM iknows k
//       JOIN iperson p ON k.person2Id = p.id WHERE k.person1Id = 10012;
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <iostream>
#include <string>

#include "snb/short_queries.h"

using namespace idf;  // NOLINT — example brevity

namespace {

void PrintResult(const SchemaPtr& schema, const RowVec& rows, double ms) {
  for (int i = 0; i < schema->num_fields(); ++i) {
    std::printf("%s%s", i > 0 ? " | " : "", schema->field(i).name.c_str());
  }
  std::printf("\n");
  const size_t shown = std::min<size_t>(rows.size(), 25);
  for (size_t r = 0; r < shown; ++r) {
    for (size_t c = 0; c < rows[r].size(); ++c) {
      std::printf("%s%s", c > 0 ? " | " : "", rows[r][c].ToString().c_str());
    }
    std::printf("\n");
  }
  if (rows.size() > shown) {
    std::printf("... (%zu more rows)\n", rows.size() - shown);
  }
  std::printf("-- %zu row(s) in %.2f ms\n", rows.size(), ms);
}

bool EqualsIgnoreCase(const std::string& a, const char* b) {
  if (a.size() != std::string(b).size()) return false;
  for (size_t i = 0; i < a.size(); ++i) {
    if (std::toupper(static_cast<unsigned char>(a[i])) !=
        std::toupper(static_cast<unsigned char>(b[i]))) {
      return false;
    }
  }
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  double sf = argc > 1 ? std::atof(argv[1]) : 0.5;
  std::printf("loading SNB-like graph at scale factor %.2f ...\n", sf);
  snb::SnbConfig cfg;
  cfg.scale_factor = sf;
  EngineConfig engine_cfg;
  engine_cfg.num_partitions = 8;
  SessionPtr session = Session::Make(engine_cfg).ValueOrDie();
  snb::SnbContext ctx =
      snb::MakeSnbContext(session, snb::GenerateSnb(cfg)).ValueOrDie();

  auto reg = [&](const char* name, DataFrame df) {
    session->RegisterTable(name, std::move(df)).AbortIfNotOK();
  };
  reg("person", ctx.person);
  reg("knows", ctx.knows);
  reg("post", ctx.post);
  reg("comment", ctx.comment);
  reg("forum", ctx.forum);
  reg("forum_member", ctx.forum_member);
  reg("iperson", ctx.person_by_id->ToDataFrame());
  reg("iknows", ctx.knows_by_person1->ToDataFrame());
  reg("ipost_by_creator", ctx.post_by_creator->ToDataFrame());
  reg("ipost", ctx.post_by_id->ToDataFrame());
  reg("icomment", ctx.comment_by_reply->ToDataFrame());

  std::printf(
      "ready: %zu persons, %zu knows edges. Example person id: %ld\n"
      "type SQL terminated by ';', 'tables', or 'quit'.\n\n",
      ctx.dataset.persons.size(), ctx.dataset.knows.size(),
      static_cast<long>(ctx.dataset.MidPersonId()));

  std::string buffer;
  std::string line;
  std::printf("idf> ");
  std::fflush(stdout);
  while (std::getline(std::cin, line)) {
    if (buffer.empty()) {
      if (EqualsIgnoreCase(line, "quit") || EqualsIgnoreCase(line, "exit")) {
        break;
      }
      if (EqualsIgnoreCase(line, "tables")) {
        for (const std::string& name : session->TableNames()) {
          std::printf("  %s\n", name.c_str());
        }
        std::printf("idf> ");
        std::fflush(stdout);
        continue;
      }
    }
    buffer += line;
    buffer += ' ';
    size_t semi = buffer.find(';');
    if (semi == std::string::npos) {
      std::printf("  -> ");
      std::fflush(stdout);
      continue;
    }
    std::string stmt = buffer.substr(0, semi);
    buffer.clear();

    bool explain = false;
    bool analyze = false;
    size_t start = stmt.find_first_not_of(" \t");
    if (start != std::string::npos) {
      if (EqualsIgnoreCase(stmt.substr(start, 7), "EXPLAIN")) {
        explain = true;
        stmt = stmt.substr(start + 7);
      } else if (EqualsIgnoreCase(stmt.substr(start, 7), "ANALYZE")) {
        analyze = true;
        stmt = stmt.substr(start + 7);
      }
    }

    auto t0 = std::chrono::steady_clock::now();
    auto df = session->Sql(stmt);
    if (!df.ok()) {
      std::printf("error: %s\n", df.status().ToString().c_str());
    } else if (explain || analyze) {
      auto plan = analyze ? df->ExplainAnalyze() : df->Explain();
      std::printf("%s", plan.ok() ? plan->c_str()
                                  : plan.status().ToString().c_str());
    } else {
      auto rows = df->Collect();
      double ms = std::chrono::duration<double, std::milli>(
                      std::chrono::steady_clock::now() - t0)
                      .count();
      if (!rows.ok()) {
        std::printf("error: %s\n", rows.status().ToString().c_str());
      } else {
        PrintResult(df->schema().ValueOrDie(), *rows, ms);
      }
    }
    std::printf("idf> ");
    std::fflush(stdout);
  }
  std::printf("\nbye\n");
  return 0;
}
