// SNB explorer: run any of the seven short-read queries on a generated
// social graph, on either engine, and compare plans and timings — the
// command-line version of the paper's demo dashboard.
//
//   Usage: ./snb_explorer [query=all|1..7] [scale_factor=1.0] [param]
//
//   ./snb_explorer           # all seven queries, SF 1, default params
//   ./snb_explorer 3 2.0     # SQ3 at SF 2
//   ./snb_explorer 1 1.0 10042   # SQ1 for person 10042
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <string>

#include "snb/short_queries.h"

using namespace idf;  // NOLINT — example brevity

namespace {

double TimeQuery(const snb::SnbContext& ctx, int q, bool indexed, int64_t param,
                 size_t* rows_out) {
  auto t0 = std::chrono::steady_clock::now();
  auto rows = snb::RunShortQuery(ctx, q, indexed, param).ValueOrDie();
  double ms = std::chrono::duration<double, std::milli>(
                  std::chrono::steady_clock::now() - t0)
                  .count();
  *rows_out = rows.size();
  return ms;
}

void RunOne(const snb::SnbContext& ctx, int q, int64_t param) {
  size_t vanilla_rows = 0;
  size_t indexed_rows = 0;
  // Warm both paths once, then measure.
  (void)snb::RunShortQuery(ctx, q, false, param).ValueOrDie();
  (void)snb::RunShortQuery(ctx, q, true, param).ValueOrDie();
  double vanilla_ms = TimeQuery(ctx, q, false, param, &vanilla_rows);
  double indexed_ms = TimeQuery(ctx, q, true, param, &indexed_rows);
  std::printf("%-64s param=%-10ld\n", snb::ShortQueryDescription(q),
              static_cast<long>(param));
  std::printf("    vanilla : %9.3f ms (%zu rows)\n", vanilla_ms, vanilla_rows);
  std::printf("    indexed : %9.3f ms (%zu rows)   speedup %.2fx\n\n",
              indexed_ms, indexed_rows,
              indexed_ms > 0 ? vanilla_ms / indexed_ms : 0.0);
}

}  // namespace

int main(int argc, char** argv) {
  std::string which = argc > 1 ? argv[1] : "all";
  double sf = argc > 2 ? std::atof(argv[2]) : 1.0;

  std::printf("generating SNB-like dataset at scale factor %.2f ...\n", sf);
  snb::SnbConfig cfg;
  cfg.scale_factor = sf;
  EngineConfig engine_cfg;
  engine_cfg.num_partitions = 8;
  SessionPtr session = Session::Make(engine_cfg).ValueOrDie();
  snb::SnbContext ctx =
      snb::MakeSnbContext(session, snb::GenerateSnb(cfg)).ValueOrDie();
  std::printf("loaded: %zu persons, %zu knows, %zu posts, %zu comments\n\n",
              ctx.dataset.persons.size(), ctx.dataset.knows.size(),
              ctx.dataset.posts.size(), ctx.dataset.comments.size());

  if (which == "all") {
    for (int q = 1; q <= 7; ++q) RunOne(ctx, q, snb::DefaultParam(ctx, q));
  } else {
    int q = std::atoi(which.c_str());
    if (q < 1 || q > 7) {
      std::fprintf(stderr, "query must be 1..7 or 'all'\n");
      return 1;
    }
    int64_t param = argc > 3 ? std::atoll(argv[3]) : snb::DefaultParam(ctx, q);
    RunOne(ctx, q, param);
  }
  return 0;
}
