// Network server demo: the paper's scenario behind the binary wire
// protocol. A QueryService fronts an indexed "posts" table; the epoll
// server (src/net) listens on a TCP port while one appender thread
// streams new batches in. Point clients at it with net_client.
//
//   Usage: ./net_server [port] [seconds]
//
// Port 0 (the default) picks an ephemeral port and prints it. The server
// runs for `seconds` (default 30), then prints the service stats.
#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <thread>

#include "common/logging.h"
#include "indexed/indexed_dataframe.h"
#include "net/server.h"
#include "service/query_service.h"

using namespace idf;  // NOLINT — example brevity

namespace {

constexpr int64_t kSeedRows = 50000;
constexpr int64_t kBatchRows = 128;

RowVec MakeRows(int64_t begin, int64_t end) {
  RowVec rows;
  rows.reserve(static_cast<size_t>(end - begin));
  for (int64_t i = begin; i < end; ++i) {
    rows.push_back({Value(i), Value(i % 1000),
                    Value("post-content-" + std::to_string(i))});
  }
  return rows;
}

}  // namespace

int main(int argc, char** argv) {
  const int port = argc > 1 ? std::atoi(argv[1]) : 0;
  const int seconds = argc > 2 ? std::atoi(argv[2]) : 30;

  // 1. The service bounds concurrency with admission control; overload
  //    surfaces to clients as BUSY frames they can retry.
  ServiceConfig cfg;
  cfg.max_inflight = 4;
  cfg.max_queue = 16;
  cfg.default_timeout = std::chrono::milliseconds(500);
  QueryServicePtr service = QueryService::Make(cfg).ValueOrDie();

  // 2. Register an updatable indexed table.
  SessionPtr session = Session::Make(cfg.engine).ValueOrDie();
  auto schema = Schema::Make({{"id", TypeId::kInt64, false},
                              {"creator", TypeId::kInt64, false},
                              {"content", TypeId::kString, false}});
  DataFrame df =
      session->CreateDataFrame(schema, MakeRows(0, kSeedRows), "posts")
          .ValueOrDie();
  IndexedRelationPtr rel =
      IndexedDataFrame::CreateIndex(df, /*col_no=*/0, "posts_by_id")
          .ValueOrDie()
          .relation();
  IDF_CHECK(service->RegisterTable("posts", rel).ok());

  // 3. Start the epoll front end.
  net::ServerConfig net_cfg;
  net_cfg.port = static_cast<uint16_t>(port);
  auto server = net::Server::Start(service, net_cfg).ValueOrDie();
  std::printf("serving 'posts' (%zu rows) on 127.0.0.1:%u for %ds\n",
              rel->num_rows(), server->port(), seconds);
  std::printf("try: ./net_client %u\n", server->port());

  // 4. One appender streams batches the whole time. Each batch commits
  //    as one epoch: clients never see a torn batch.
  std::atomic<bool> stop{false};
  std::thread appender([&] {
    int64_t next = kSeedRows;
    while (!stop.load(std::memory_order_acquire)) {
      IDF_CHECK(
          service->Append("posts", MakeRows(next, next + kBatchRows)).ok());
      next += kBatchRows;
      std::this_thread::sleep_for(std::chrono::milliseconds(2));
    }
  });

  std::this_thread::sleep_for(std::chrono::seconds(seconds));
  stop.store(true, std::memory_order_release);
  appender.join();
  server->Stop();

  std::printf("\n%s\n", service->Stats().ToString().c_str());
  return 0;
}
