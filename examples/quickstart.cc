// Quickstart: the paper's Listing 1, line by line, in this library's C++
// API. Demonstrates create index -> cache -> point lookup -> append ->
// indexed join, and shows the optimizer rewriting plans transparently.
//
//   Usage: ./quickstart
#include <cstdio>

#include "indexed/indexed_dataframe.h"
#include "sql/session.h"

using namespace idf;  // NOLINT — example brevity

int main() {
  // A session is the SparkSession analogue.
  SessionPtr session = Session::Make().ValueOrDie();

  // A regular DataFrame: a small two-column table.
  auto schema = Schema::Make({{"c1", TypeId::kInt64, false},
                              {"name", TypeId::kString, false}});
  RowVec rows;
  for (int64_t i = 0; i < 10000; ++i) {
    rows.push_back({Value(i % 1000), Value("row" + std::to_string(i))});
  }
  DataFrame regular_df =
      session->CreateDataFrame(schema, rows, "events").ValueOrDie();

  // Listing 1, line 2: creating an index (column ordinal 0 == "c1").
  IndexedDataFrame indexed_df =
      IndexedDataFrame::CreateIndex(regular_df, /*col_no=*/0, "events_by_c1")
          .ValueOrDie();

  // Listing 1, line 4: caching the indexed data frame.
  indexed_df = indexed_df.Cache();

  // Listing 1, lines 6-7: looking up a key returns a DataFrame containing
  // all rows with that key.
  const int64_t lookup_key = 234;
  DataFrame result = indexed_df.GetRows(Value(lookup_key));
  RowVec result_rows = result.Collect().ValueOrDie();
  std::printf("getRows(%ld) -> %zu rows\n", static_cast<long>(lookup_key),
              result_rows.size());
  for (size_t i = 0; i < std::min<size_t>(3, result_rows.size()); ++i) {
    std::printf("  %s\n", RowToString(result_rows[i]).c_str());
  }

  // Listing 1, line 9: appending all the rows of a regular dataframe.
  RowVec fresh = {{Value(lookup_key), Value(std::string("freshly-appended"))}};
  DataFrame append_df =
      session->CreateDataFrame(schema, fresh, "updates").ValueOrDie();
  IndexedDataFrame new_indexed_df =
      indexed_df.AppendRows(append_df).ValueOrDie();
  std::printf("after appendRows: getRows(%ld) -> %zu rows\n",
              static_cast<long>(lookup_key),
              new_indexed_df.GetRows(Value(lookup_key)).Count().ValueOrDie());

  // Listing 1, line 11: index-powered, efficient join. The indexed side is
  // the build side; the regular DataFrame is the probe side.
  auto probe_schema = Schema::Make({{"c2", TypeId::kInt64, false}});
  RowVec probe_rows = {{Value(int64_t{234})}, {Value(int64_t{777})}};
  DataFrame probe =
      session->CreateDataFrame(probe_schema, probe_rows, "probe").ValueOrDie();
  DataFrame joined = new_indexed_df.Join(probe, "c1", "c2").ValueOrDie();
  std::printf("indexed join produced %zu rows\n",
              joined.Count().ValueOrDie());

  // Peek at the plans: filters and joins over the indexed relation are
  // rewritten by the Catalyst-style rules into indexed operators.
  DataFrame filtered = new_indexed_df.ToDataFrame()
                           .Filter(Eq(Col("c1"), Lit(Value(int64_t{42}))))
                           .ValueOrDie();
  std::printf("\n-- explain: equality filter over the indexed frame --\n%s",
              filtered.Explain().ValueOrDie().c_str());
  std::printf("\n-- explain: indexed join --\n%s",
              joined.Explain().ValueOrDie().c_str());

  // A non-indexed predicate falls back to a regular scan, transparently.
  DataFrame fallback = new_indexed_df.ToDataFrame()
                           .Filter(Eq(Col("name"), Lit(Value("row77"))))
                           .ValueOrDie();
  std::printf("\n-- explain: non-indexed filter falls back to a scan --\n%s",
              fallback.Explain().ValueOrDie().c_str());
  std::printf("\nfallback scan matched %zu row(s)\n",
              fallback.Count().ValueOrDie());
  return 0;
}
