// Standing queries demo: subscribe once, read maintained results forever.
// A QueryService fronts an indexed "posts" table; dashboards Subscribe()
// to SQL once and thereafter read incrementally maintained snapshots
// lock-free, while an appender streams commits in. Identical queries
// share ONE maintained arrangement no matter how many dashboards watch,
// and a callback subscriber is notified on every publish.
//
//   Usage: ./standing_queries [seconds]
#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <thread>
#include <vector>

#include "common/logging.h"
#include "indexed/indexed_dataframe.h"
#include "service/query_service.h"

using namespace idf;  // NOLINT — example brevity

namespace {

constexpr int64_t kSeedRows = 20000;
constexpr int64_t kBatchRows = 128;
constexpr int kDashboards = 8;

RowVec MakeRows(int64_t begin, int64_t end) {
  RowVec rows;
  rows.reserve(static_cast<size_t>(end - begin));
  for (int64_t i = begin; i < end; ++i) {
    rows.push_back({Value(i), Value(i % 100), Value((i * 7919) % 1000)});
  }
  return rows;
}

}  // namespace

int main(int argc, char** argv) {
  const int seconds = argc > 1 ? std::atoi(argv[1]) : 3;

  // 1. Service with one updatable indexed table.
  ServiceConfig cfg;
  QueryServicePtr service = QueryService::Make(cfg).ValueOrDie();
  SessionPtr session = Session::Make(cfg.engine).ValueOrDie();
  auto schema = Schema::Make({{"id", TypeId::kInt64, false},
                              {"creator", TypeId::kInt64, false},
                              {"score", TypeId::kInt64, false}});
  DataFrame df =
      session->CreateDataFrame(schema, MakeRows(0, kSeedRows), "posts")
          .ValueOrDie();
  IndexedRelationPtr rel =
      IndexedDataFrame::CreateIndex(df, /*col_no=*/1, "posts_by_creator")
          .ValueOrDie()
          .relation();
  IDF_CHECK(service->RegisterTable("posts", rel).ok());

  // 2. Subscribe once. The aggregate's group state lives resident inside
  //    the service; every commit folds only the delta in. One subscription
  //    carries a callback — it fires after each publish, outside any lock.
  std::atomic<uint64_t> publishes{0};
  ViewSubscriptionPtr notified =
      service
          ->Subscribe(
              "SELECT creator, COUNT(*), SUM(score) FROM posts "
              "GROUP BY creator",
              [&](const ViewSnapshot& snap) {
                publishes.fetch_add(1);
                if (snap.version % 256 == 0) {
                  std::printf("  [callback] version %llu @ epoch %llu: "
                              "%zu groups\n",
                              static_cast<unsigned long long>(snap.version),
                              static_cast<unsigned long long>(snap.epoch),
                              snap.rows->size());
                }
              })
          .ValueOrDie();

  // 3. Seven more dashboards ask the same question: the plan fingerprint
  //    matches, so they all attach to the SAME maintained arrangement —
  //    one delta propagation per commit, not eight.
  std::vector<ViewSubscriptionPtr> dashboards{notified};
  for (int d = 1; d < kDashboards; ++d) {
    dashboards.push_back(
        service
            ->Subscribe(
                "SELECT creator, COUNT(*), SUM(score) FROM posts "
                "GROUP BY creator")
            .ValueOrDie());
  }
  std::printf("%d dashboards -> %zu maintained arrangement(s), kind=%s\n",
              kDashboards, service->views().num_views(),
              ViewKindToString(notified->kind()).c_str());

  // 4. The append stream: every commit triggers one maintenance pass.
  const auto stop_at =
      std::chrono::steady_clock::now() + std::chrono::seconds(seconds);
  std::thread appender([&] {
    int64_t next = kSeedRows;
    while (std::chrono::steady_clock::now() < stop_at) {
      IDF_CHECK(
          service->Append("posts", MakeRows(next, next + kBatchRows)).ok());
      next += kBatchRows;
      std::this_thread::sleep_for(std::chrono::milliseconds(2));
    }
  });

  // 5. Dashboards poll lock-free: Snapshot() is one atomic load, never a
  //    query. Versions are monotone; epochs tag the exact commit each
  //    snapshot reflects.
  std::vector<std::thread> pollers;
  for (int d = 0; d < kDashboards; ++d) {
    pollers.emplace_back([&, d] {
      uint64_t last_version = 0;
      while (std::chrono::steady_clock::now() < stop_at) {
        ViewSnapshotPtr snap = dashboards[static_cast<size_t>(d)]->Snapshot();
        IDF_CHECK(snap->version >= last_version);
        last_version = snap->version;
        std::this_thread::sleep_for(std::chrono::milliseconds(5));
      }
    });
  }
  for (std::thread& t : pollers) t.join();
  appender.join();

  // 6. The maintained snapshot equals a from-scratch execution.
  ViewSnapshotPtr final_snap = notified->Snapshot();
  QueryResult check = service->Execute(notified->sql());
  IDF_CHECK(check.ok());
  std::printf("\nfinal: %zu groups @ epoch %llu (from-scratch agrees: %s), "
              "%llu publishes\n",
              final_snap->rows->size(),
              static_cast<unsigned long long>(final_snap->epoch),
              final_snap->rows->size() == check.rows.size() ? "yes" : "NO",
              static_cast<unsigned long long>(publishes.load()));

  for (const ViewSubscriptionPtr& sub : dashboards) {
    IDF_CHECK(service->Unsubscribe(sub).ok());
  }
  std::printf("\n%s\n", service->Stats().ToString().c_str());
  return 0;
}
