// Threat detection and response (paper §1, citing Brezinski & Armbrust,
// Spark Summit 2018): interactive point lookups over a continuously
// appended security event log. "Using indexes minimizes the amount of data
// that is materialized and processed."
//
// The scenario: a stream of connection events (src_ip, dst_ip, port,
// bytes, ts) is indexed by source IP; an analyst pivots from one indicator
// of compromise to the hosts it touched in sub-millisecond time while
// events keep arriving.
//
//   Usage: ./threat_detection [events=300000]
#include <chrono>
#include <cstdio>
#include <cstdlib>

#include "common/hash.h"
#include "common/logging.h"
#include "indexed/indexed_dataframe.h"
#include "sql/session.h"

using namespace idf;  // NOLINT — example brevity

namespace {

SchemaPtr EventSchema() {
  return Schema::Make({{"src_ip", TypeId::kString, false},
                       {"dst_ip", TypeId::kString, false},
                       {"port", TypeId::kInt32, false},
                       {"bytes", TypeId::kInt64, false},
                       {"ts", TypeId::kTimestamp, false}});
}

std::string IpFor(uint64_t host) {
  return "10." + std::to_string((host >> 16) & 0xFF) + "." +
         std::to_string((host >> 8) & 0xFF) + "." + std::to_string(host & 0xFF);
}

Row MakeEvent(Random64* rng, int64_t ts) {
  uint64_t src = rng->Skewed(5000, 1.3);
  uint64_t dst = rng->Uniform(5000);
  return {Value(IpFor(src)), Value(IpFor(dst)),
          Value(static_cast<int32_t>(rng->Uniform(2) ? 443 : 22)),
          Value(static_cast<int64_t>(rng->Uniform(1 << 20))), Value(ts)};
}

double MillisSince(std::chrono::steady_clock::time_point t0) {
  return std::chrono::duration<double, std::milli>(
             std::chrono::steady_clock::now() - t0)
      .count();
}

}  // namespace

int main(int argc, char** argv) {
  const int64_t num_events = argc > 1 ? std::atoll(argv[1]) : 300000;
  Random64 rng(2026);

  std::printf("ingesting %ld historical connection events ...\n",
              static_cast<long>(num_events));
  RowVec events;
  events.reserve(static_cast<size_t>(num_events));
  for (int64_t i = 0; i < num_events; ++i) {
    events.push_back(MakeEvent(&rng, 1700000000000000 + i));
  }

  SessionPtr session = Session::Make().ValueOrDie();
  DataFrame log_df =
      session->CreateDataFrame(EventSchema(), events, "conn_log").ValueOrDie();
  DataFrame cached_log = log_df.Cache("conn_log").ValueOrDie();

  auto t0 = std::chrono::steady_clock::now();
  IndexedDataFrame by_src =
      IndexedDataFrame::CreateIndex(log_df, "src_ip", "conn_by_src")
          .ValueOrDie()
          .Cache();
  std::printf("index on src_ip built in %.1f ms (overhead ratio %.2f)\n",
              MillisSince(t0), by_src.IndexOverheadRatio());

  // The indicator of compromise: a known-bad source address.
  const std::string ioc = IpFor(17);

  // Vanilla pivot: full scan of the cached log.
  t0 = std::chrono::steady_clock::now();
  RowVec scan_hits = cached_log.Filter(Eq(Col("src_ip"), Lit(Value(ioc))))
                         .ValueOrDie()
                         .Collect()
                         .ValueOrDie();
  double scan_ms = MillisSince(t0);

  // Indexed pivot: point lookup.
  t0 = std::chrono::steady_clock::now();
  RowVec index_hits = by_src.GetRows(Value(ioc)).Collect().ValueOrDie();
  double lookup_ms = MillisSince(t0);

  std::printf(
      "\npivot on IOC %s:\n"
      "  cached scan     : %8.2f ms (%zu events)\n"
      "  indexed lookup  : %8.2f ms (%zu events)  -> %.1fx speedup\n",
      ioc.c_str(), scan_ms, scan_hits.size(), lookup_ms, index_hits.size(),
      scan_ms / lookup_ms);

  // Which hosts did the IOC talk to, and how much data moved? The lookup
  // result is a DataFrame: aggregate it like any other.
  RowVec exfil = by_src.GetRows(Value(ioc))
                     .GroupByAgg({"dst_ip"}, {CountStar("connections"),
                                              SumOf(Col("bytes"), "bytes_out")})
                     .ValueOrDie()
                     .OrderBy("bytes_out", /*ascending=*/false)
                     .ValueOrDie()
                     .Limit(5)
                     .ValueOrDie()
                     .Collect()
                     .ValueOrDie();
  std::printf("\ntop targets of %s by bytes:\n", ioc.c_str());
  for (const Row& row : exfil) {
    std::printf("  %-16s connections=%-4ld bytes=%ld\n",
                row[0].string_value().c_str(),
                static_cast<long>(row[1].AsInt64()),
                static_cast<long>(row[2].AsInt64()));
  }

  // New events keep arriving; the index absorbs them without re-caching,
  // and the next pivot sees them immediately.
  RowVec live;
  for (int i = 0; i < 1000; ++i) {
    Row e = MakeEvent(&rng, 1800000000000000 + i);
    if (i % 100 == 0) e[0] = Value(ioc);  // the attacker is still active
    live.push_back(std::move(e));
  }
  t0 = std::chrono::steady_clock::now();
  IDF_CHECK_OK(by_src.AppendRowsDirect(live));
  double append_ms = MillisSince(t0);
  size_t after = by_src.GetRows(Value(ioc)).Count().ValueOrDie();
  std::printf(
      "\nappended 1000 live events in %.2f ms; IOC now matches %zu events "
      "(was %zu)\n",
      append_ms, after, index_hits.size());
  return 0;
}
