// Query server demo: the paper's scenario as a running service. A
// QueryService fronts an indexed "posts" table; several client threads
// fire point-lookup SQL while one appender streams new batches in. The
// service pins an MVCC snapshot per query (readers never see a torn
// batch), bounds concurrency with admission control, enforces a default
// deadline, and prints its latency histograms at the end.
//
//   Usage: ./query_server [seconds]
#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <thread>
#include <vector>

#include "common/logging.h"
#include "indexed/indexed_dataframe.h"
#include "service/query_service.h"

using namespace idf;  // NOLINT — example brevity

namespace {

constexpr int64_t kSeedRows = 50000;
constexpr int64_t kBatchRows = 128;
constexpr int kReaders = 4;

RowVec MakeRows(int64_t begin, int64_t end) {
  RowVec rows;
  rows.reserve(static_cast<size_t>(end - begin));
  for (int64_t i = begin; i < end; ++i) {
    rows.push_back({Value(i), Value(i % 1000),
                    Value("post-content-" + std::to_string(i))});
  }
  return rows;
}

}  // namespace

int main(int argc, char** argv) {
  const int seconds = argc > 1 ? std::atoi(argv[1]) : 3;

  // 1. Configure the service: at most 4 queries execute at once, 16 more
  //    may queue, the rest are rejected with CapacityError. Queries that
  //    bring no timeout of their own get 500ms.
  ServiceConfig cfg;
  cfg.max_inflight = 4;
  cfg.max_queue = 16;
  cfg.default_timeout = std::chrono::milliseconds(500);
  QueryServicePtr service = QueryService::Make(cfg).ValueOrDie();

  // 2. Register an updatable indexed table.
  SessionPtr session = Session::Make(cfg.engine).ValueOrDie();
  auto schema = Schema::Make({{"id", TypeId::kInt64, false},
                              {"creator", TypeId::kInt64, false},
                              {"content", TypeId::kString, false}});
  DataFrame df =
      session->CreateDataFrame(schema, MakeRows(0, kSeedRows), "posts")
          .ValueOrDie();
  IndexedRelationPtr rel =
      IndexedDataFrame::CreateIndex(df, /*col_no=*/0, "posts_by_id")
          .ValueOrDie()
          .relation();
  IDF_CHECK(service->RegisterTable("posts", rel).ok());
  std::printf("serving 'posts' (%zu rows) for %ds: %d readers + 1 appender\n",
              rel->num_rows(), seconds, kReaders);

  const auto stop_at =
      std::chrono::steady_clock::now() + std::chrono::seconds(seconds);
  std::atomic<bool> stop{false};

  // 3. One appender streams batches. Each batch commits as one epoch:
  //    concurrent readers see all of it or none of it.
  std::thread appender([&] {
    int64_t next = kSeedRows;
    while (!stop.load(std::memory_order_acquire)) {
      IDF_CHECK(service->Append("posts", MakeRows(next, next + kBatchRows)).ok());
      next += kBatchRows;
      std::this_thread::sleep_for(std::chrono::milliseconds(2));
    }
  });

  // 4. Reader threads issue point-lookup SQL. Each Execute() pins the
  //    latest committed epoch and runs at index speed against it.
  std::atomic<int64_t> queries{0};
  std::atomic<int64_t> rows_seen{0};
  std::vector<std::thread> readers;
  for (int r = 0; r < kReaders; ++r) {
    readers.emplace_back([&, r] {
      int64_t q = 0;
      while (std::chrono::steady_clock::now() < stop_at) {
        int64_t id = (q * 7919 + r * 13) % kSeedRows;
        QueryResult res = service->Execute(
            "SELECT content FROM posts WHERE id = " + std::to_string(id));
        IDF_CHECK(res.ok()) << res.status.ToString();
        rows_seen.fetch_add(static_cast<int64_t>(res.rows.size()));
        queries.fetch_add(1);
        ++q;
      }
    });
  }

  for (std::thread& t : readers) t.join();
  stop.store(true, std::memory_order_release);
  appender.join();

  // 5. A cross-table aggregate still sees one consistent epoch.
  QueryResult count = service->Execute("SELECT COUNT(*) FROM posts");
  IDF_CHECK(count.ok());
  std::printf("\n%lld queries answered (%lld rows); final count %lld at epoch %llu\n",
              static_cast<long long>(queries.load()),
              static_cast<long long>(rows_seen.load()),
              static_cast<long long>(count.rows[0][0].int64_value()),
              static_cast<unsigned long long>(count.epoch));

  // 6. The service kept latency histograms the whole time.
  std::printf("\n%s\n", service->Stats().ToString().c_str());
  return 0;
}
