// Graph monitoring: the paper's demonstration scenario (§4) — a social
// graph mutated by a continuous Kafka-style update stream while a
// "dashboard" concurrently runs the same query on the Indexed DataFrame
// and on vanilla Spark-style execution, printing live latencies.
//
//   Usage: ./graph_monitoring [scale_factor=0.5] [batches=200]
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <thread>

#include "snb/short_queries.h"
#include "snb/update_stream.h"
#include "stream/streaming_driver.h"
#include "stream/topic.h"

using namespace idf;  // NOLINT — example brevity

int main(int argc, char** argv) {
  double sf = argc > 1 ? std::atof(argv[1]) : 0.5;
  size_t batches = argc > 2 ? static_cast<size_t>(std::atoll(argv[2])) : 200;

  std::printf("generating SNB-like graph at scale factor %.2f ...\n", sf);
  snb::SnbConfig cfg;
  cfg.scale_factor = sf;
  snb::SnbDataset dataset = snb::GenerateSnb(cfg);
  std::printf("  %zu persons, %zu knows edges, %zu posts, %zu comments\n",
              dataset.persons.size(), dataset.knows.size(),
              dataset.posts.size(), dataset.comments.size());

  EngineConfig engine_cfg;
  engine_cfg.num_partitions = 8;
  SessionPtr session = Session::Make(engine_cfg).ValueOrDie();
  int64_t hot_person = dataset.first_person_id + 1;
  snb::UpdateStreamGenerator generator(dataset);
  snb::SnbContext ctx =
      snb::MakeSnbContext(session, std::move(dataset)).ValueOrDie();

  // Baseline latencies before the stream starts.
  auto time_query = [&](bool indexed) {
    auto t0 = std::chrono::steady_clock::now();
    auto rows = snb::RunShortQuery(ctx, 3, indexed, hot_person).ValueOrDie();
    auto t1 = std::chrono::steady_clock::now();
    return std::make_pair(
        std::chrono::duration<double, std::milli>(t1 - t0).count(),
        rows.size());
  };
  auto [vanilla_ms, vanilla_rows] = time_query(false);
  auto [indexed_ms, indexed_rows] = time_query(true);
  std::printf(
      "\nSQ3 (friends of person %ld), static graph:\n"
      "  vanilla Spark-style : %8.2f ms  (%zu friends)\n"
      "  Indexed DataFrame   : %8.2f ms  (%zu friends)  -> %.1fx speedup\n",
      static_cast<long>(hot_person), vanilla_ms, vanilla_rows, indexed_ms,
      indexed_rows, vanilla_ms / indexed_ms);

  // Live phase: stream friendship edges into the indexed graph while the
  // dashboard keeps asking "who are the friends of the hot person".
  std::printf("\nstreaming %zu edge batches while querying live ...\n",
              batches);
  StreamingConfig stream_cfg;
  stream_cfg.num_batches = batches;
  stream_cfg.rows_per_batch = 20;
  stream_cfg.num_query_threads = 1;
  auto report = RunStreamingWorkload(
      *ctx.knows_by_person1,
      [&generator](size_t) { return generator.NextKnowsBatch(10); },
      [&ctx, hot_person]() {
        return ctx.knows_by_person1->GetRows(Value(hot_person))
            .Collect()
            .status();
      },
      stream_cfg);
  if (!report.ok()) {
    std::fprintf(stderr, "streaming failed: %s\n",
                 report.status().ToString().c_str());
    return 1;
  }
  std::printf("  %s\n", report->ToString().c_str());

  // The dashboard view after growth: queries still answer from the index,
  // no re-caching needed (the paper's updatable-cache headline).
  auto [grown_indexed_ms, grown_rows] = time_query(true);
  std::printf(
      "\nafter growth (%zu rows in knows index):\n"
      "  Indexed DataFrame SQ3 : %8.2f ms (%zu friends, index never "
      "invalidated)\n",
      report->final_rows, grown_indexed_ms, grown_rows);

  // Kafka-faithful phase: edges flow through a partitioned, offset-
  // addressed Topic. The appender consumes live; afterwards a SECOND
  // consumer replays the retained log from offset zero to rebuild an
  // identical copy of the stream's contribution — Kafka's replayability.
  std::printf("\nstreaming %zu more batches through a partitioned topic ...\n",
              batches);
  Topic<Row> topic(4);
  std::thread producer([&] {
    for (size_t b = 0; b < batches; ++b) {
      for (Row& edge : generator.NextKnowsBatch(5)) {
        uint64_t key = edge[snb::knows::kPerson1].Hash();
        topic.AppendKeyed(key, std::move(edge));
      }
    }
    topic.Close();
  });
  size_t live_consumed = 0;
  {
    TopicConsumer<Row> consumer(&topic);
    while (!consumer.AtEnd()) {
      RowVec batch = consumer.Poll(64);
      if (batch.empty()) continue;
      live_consumed += batch.size();
      ctx.knows_by_person1->AppendRowsDirect(batch).AbortIfNotOK();
    }
  }
  producer.join();
  std::printf("  live consumer appended %zu edges (index now %zu rows)\n",
              live_consumed, ctx.knows_by_person1->NumRows());

  TopicConsumer<Row> replayer(&topic);
  size_t replayed = 0;
  while (!replayer.AtEnd()) replayed += replayer.Poll(128, false).size();
  std::printf(
      "  replay consumer re-read %zu edges from offset 0 (%s retained log)\n",
      replayed, replayed == topic.TotalRecords() ? "complete" : "INCOMPLETE");

  auto [final_ms, final_rows] = time_query(true);
  std::printf("  SQ3 after topic phase : %8.2f ms (%zu friends)\n", final_ms,
              final_rows);
  return 0;
}
