// Network client demo: connect to a running net_server, prepare a
// point-lookup statement once, then execute it in a loop with fresh
// parameters — the server parses, analyzes, and optimizes the SQL
// exactly once. Prints throughput and p50/p99 round-trip latency.
//
//   Usage: ./net_client <port> [queries] [host]
#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "common/logging.h"
#include "net/client.h"

using namespace idf;  // NOLINT — example brevity

namespace {

double Percentile(std::vector<double>* us, double p) {
  if (us->empty()) return 0.0;
  const size_t k = static_cast<size_t>(p * static_cast<double>(us->size() - 1));
  std::nth_element(us->begin(), us->begin() + static_cast<long>(k), us->end());
  return (*us)[k];
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) {
    std::fprintf(stderr, "usage: %s <port> [queries] [host]\n", argv[0]);
    return 1;
  }
  const uint16_t port = static_cast<uint16_t>(std::atoi(argv[1]));
  const int queries = argc > 2 ? std::atoi(argv[2]) : 10000;
  const std::string host = argc > 3 ? argv[3] : "127.0.0.1";

  auto client = net::Client::Connect(host, port).ValueOrDie();

  // Prepare once: the server caches the optimized plan under the
  // statement's fingerprint and hands back a handle.
  net::PreparedReply prep =
      client->Prepare("SELECT content FROM posts WHERE id = ?").ValueOrDie();
  std::printf("prepared handle %llu (%zu param)\n",
              static_cast<unsigned long long>(prep.handle),
              prep.param_types.size());

  // Execute in a loop: each round trip only binds parameters and runs
  // the cached plan against the latest committed epoch.
  std::vector<double> latencies_us;
  latencies_us.reserve(static_cast<size_t>(queries));
  int64_t rows_seen = 0;
  const auto begin = std::chrono::steady_clock::now();
  for (int q = 0; q < queries; ++q) {
    const int64_t id = (static_cast<int64_t>(q) * 7919 + 13) % 50000;
    const auto t0 = std::chrono::steady_clock::now();
    Result<net::RowsReply> reply = client->Execute(prep.handle, {Value(id)});
    const auto t1 = std::chrono::steady_clock::now();
    IDF_CHECK(reply.ok()) << reply.status().ToString();
    rows_seen += static_cast<int64_t>(reply->rows.size());
    latencies_us.push_back(
        std::chrono::duration<double, std::micro>(t1 - t0).count());
  }
  const double secs =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - begin)
          .count();

  IDF_CHECK(client->Close(prep.handle).ok());

  std::printf("%d queries (%lld rows) in %.2fs: %.0f qps\n", queries,
              static_cast<long long>(rows_seen), secs,
              static_cast<double>(queries) / secs);
  std::printf("round-trip p50 %.1fus  p99 %.1fus\n",
              Percentile(&latencies_us, 0.50), Percentile(&latencies_us, 0.99));
  return 0;
}
